//! The paper's experiments as a library: each table/figure campaign as a
//! function returning a structured, serializable result that *knows the
//! paper's claims* and can check itself against them.
//!
//! The `adc-bench` binaries print these results; the test suite asserts
//! [`Fig4Result::claims_hold`] &c., so "the reproduction reproduces" is
//! itself a tested property, not a by-eye judgement.

use adc_pipeline::config::AdcConfig;
use adc_pipeline::error::BuildAdcError;

use crate::datasheet::{Datasheet, DatasheetError};
use crate::policy::RunPolicy;
use crate::session::MeasurementSession;
use crate::survey::{fig8_survey, SurveyEntry};
use crate::sweep::{DynamicPoint, SweepRunner};

/// Fig. 4: power vs conversion rate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig4Result {
    /// (rate Hz, total power W) series.
    pub series: Vec<(f64, f64)>,
    /// Power at 110 MS/s, watts.
    pub p_110_w: f64,
    /// Power at 130 MS/s, watts.
    pub p_130_w: f64,
    /// Fitted slope, watts per hertz.
    pub slope_w_per_hz: f64,
}

impl Fig4Result {
    /// The paper's Fig. 4 claims: 97 mW @110, 110 mW @130, linear.
    pub fn claims_hold(&self) -> bool {
        (self.p_110_w - 97e-3).abs() < 6e-3
            && (self.p_130_w - 110e-3).abs() < 6e-3
            && (self.slope_w_per_hz - 6.5e-10).abs() < 0.5e-10
    }
}

/// Runs the Fig. 4 campaign on the golden die with the default
/// execution policy.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_fig4() -> Result<Fig4Result, BuildAdcError> {
    run_fig4_with(&RunPolicy::default())
}

/// [`run_fig4`] under an explicit campaign execution policy.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_fig4_with(policy: &RunPolicy) -> Result<Fig4Result, BuildAdcError> {
    let runner = SweepRunner {
        policy: policy.clone(),
        ..SweepRunner::nominal()
    };
    let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 10e6).collect();
    let readings = runner.power_sweep(&rates)?;
    let series: Vec<(f64, f64)> = readings.iter().map(|r| (r.f_cr_hz, r.total_w)).collect();
    let p_at = |f: f64| {
        readings
            .iter()
            .find(|r| (r.f_cr_hz - f).abs() < 1.0)
            .map(|r| r.total_w)
            .expect("rate in sweep")
    };
    let p_110_w = p_at(110e6);
    let p_130_w = p_at(130e6);
    Ok(Fig4Result {
        series,
        p_110_w,
        p_130_w,
        slope_w_per_hz: (p_130_w - p_110_w) / 20e6,
    })
}

/// Fig. 5: dynamics vs conversion rate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig5Result {
    /// The measured points.
    pub points: Vec<DynamicPoint>,
    /// Minimum SNDR over 20–120 MS/s, dB.
    pub min_sndr_20_120: f64,
    /// Minimum SNDR over 20–140 MS/s, dB.
    pub min_sndr_20_140: f64,
    /// SNDR at the highest swept rate, dB.
    pub sndr_at_max_rate: f64,
}

impl Fig5Result {
    /// Paper: SNDR > 64 dB (20–120), > 62 dB (to 140), collapsing beyond.
    /// Bands widened by 1 dB for die-to-die variation.
    pub fn claims_hold(&self) -> bool {
        self.min_sndr_20_120 > 63.0
            && self.min_sndr_20_140 > 61.0
            && self.sndr_at_max_rate < self.min_sndr_20_140 - 8.0
    }
}

/// Runs the Fig. 5 campaign (record length configurable for test speed)
/// with the default execution policy.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_fig5(record_len: usize) -> Result<Fig5Result, BuildAdcError> {
    run_fig5_with(record_len, &RunPolicy::default())
}

/// [`run_fig5`] under an explicit campaign execution policy.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_fig5_with(record_len: usize, policy: &RunPolicy) -> Result<Fig5Result, BuildAdcError> {
    let runner = SweepRunner {
        record_len,
        policy: policy.clone(),
        ..SweepRunner::nominal()
    };
    let rates: Vec<f64> = [20.0, 40.0, 60.0, 80.0, 100.0, 110.0, 120.0, 140.0, 200.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();
    let points = runner.rate_sweep(&rates, 10e6)?;
    let min_in = |lo: f64, hi: f64| {
        points
            .iter()
            .filter(|p| p.x_hz >= lo && p.x_hz <= hi)
            .map(|p| p.sndr_db)
            .fold(f64::INFINITY, f64::min)
    };
    Ok(Fig5Result {
        min_sndr_20_120: min_in(20e6, 120e6),
        min_sndr_20_140: min_in(20e6, 140e6),
        sndr_at_max_rate: points.last().expect("nonempty sweep").sndr_db,
        points,
    })
}

/// Fig. 6: dynamics vs input frequency.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig6Result {
    /// The measured points.
    pub points: Vec<DynamicPoint>,
    /// SNR at 100 MHz, dB.
    pub snr_at_100mhz: f64,
    /// SNDR at 40 MHz, dB.
    pub sndr_at_40mhz: f64,
    /// SFDR drop from 10 MHz to 150 MHz, dB.
    pub sfdr_drop_10_to_150: f64,
}

impl Fig6Result {
    /// Paper: SNR > 66 dB to 100 MHz; SNDR > 60 dB to 40 MHz; SFDR falls
    /// steeply beyond ~40 MHz.
    pub fn claims_hold(&self) -> bool {
        self.snr_at_100mhz > 65.0 && self.sndr_at_40mhz > 60.0 && self.sfdr_drop_10_to_150 > 15.0
    }
}

/// Runs the Fig. 6 campaign with the default execution policy.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_fig6(record_len: usize) -> Result<Fig6Result, BuildAdcError> {
    run_fig6_with(record_len, &RunPolicy::default())
}

/// [`run_fig6`] under an explicit campaign execution policy.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_fig6_with(record_len: usize, policy: &RunPolicy) -> Result<Fig6Result, BuildAdcError> {
    let runner = SweepRunner {
        record_len,
        policy: policy.clone(),
        ..SweepRunner::nominal()
    };
    let fins: Vec<f64> = [10.0, 40.0, 100.0, 150.0].iter().map(|m| m * 1e6).collect();
    let points = runner.frequency_sweep(&fins)?;
    let at = |f: f64| {
        points
            .iter()
            .find(|p| (p.x_hz - f).abs() < 1.0)
            .expect("fin in sweep")
    };
    Ok(Fig6Result {
        snr_at_100mhz: at(100e6).snr_db,
        sndr_at_40mhz: at(40e6).sndr_db,
        sfdr_drop_10_to_150: at(10e6).sfdr_db - at(150e6).sfdr_db,
        points,
    })
}

/// Table I: the datasheet with claim checking.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table1Result {
    /// The measured datasheet.
    pub sheet: Datasheet,
}

impl Table1Result {
    /// Paper Table I bands (±1.5 dB dynamics, ±6 mW power, same-order
    /// linearity).
    pub fn claims_hold(&self) -> bool {
        let s = &self.sheet;
        (s.snr_db - 67.1).abs() < 1.5
            && (s.sndr_db - 64.2).abs() < 1.5
            && (s.sfdr_db - 69.4).abs() < 2.0
            && (s.enob - 10.4).abs() < 0.25
            && (s.power_w - 97e-3).abs() < 6e-3
            && s.dnl_lsb.1 < 1.8
            && s.inl_lsb.0 > -2.5
    }
}

/// Runs the Table I measurement.
///
/// # Errors
///
/// Propagates datasheet errors.
pub fn run_table1(linearity_samples: usize) -> Result<Table1Result, DatasheetError> {
    let mut session = MeasurementSession::nominal()?;
    let sheet = Datasheet::measure(&mut session, 10e6, linearity_samples)?;
    Ok(Table1Result { sheet })
}

/// Fig. 8: the FoM survey with claim checking.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig8Result {
    /// Entries sorted by descending FoM.
    pub ranked: Vec<SurveyEntry>,
}

impl Fig8Result {
    /// Paper: highest FM and 2nd-lowest area of the 15-part survey.
    pub fn claims_hold(&self) -> bool {
        let first_is_this = self
            .ranked
            .first()
            .map(|e| e.name == "This design")
            .unwrap_or(false);
        let smaller = self
            .ranked
            .iter()
            .filter(|e| e.name != "This design" && e.area_mm2 < 0.86)
            .count();
        first_is_this && smaller == 1
    }
}

/// Builds the ranked Fig. 8 survey.
pub fn run_fig8() -> Fig8Result {
    let mut ranked = fig8_survey();
    ranked.sort_by(|a, b| b.figure_of_merit().total_cmp(&a.figure_of_merit()));
    Fig8Result { ranked }
}

/// Convenience: the nominal config the campaigns run on.
pub fn nominal_config() -> AdcConfig {
    AdcConfig::nominal_110ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_claims_hold() {
        let r = run_fig4().expect("campaign runs");
        assert!(r.claims_hold(), "{r:?}");
        assert_eq!(r.series.len(), 13);
    }

    #[test]
    fn fig5_claims_hold() {
        let r = run_fig5(2048).expect("campaign runs");
        assert!(
            r.claims_hold(),
            "min 20-120 {} / min 20-140 {} / max-rate {}",
            r.min_sndr_20_120,
            r.min_sndr_20_140,
            r.sndr_at_max_rate
        );
    }

    #[test]
    fn fig6_claims_hold() {
        let r = run_fig6(2048).expect("campaign runs");
        assert!(
            r.claims_hold(),
            "snr@100 {} / sndr@40 {} / drop {}",
            r.snr_at_100mhz,
            r.sndr_at_40mhz,
            r.sfdr_drop_10_to_150
        );
    }

    #[test]
    fn table1_claims_hold() {
        let r = run_table1(1 << 18).expect("measurement runs");
        assert!(r.claims_hold(), "{:?}", r.sheet);
    }

    #[test]
    fn fig8_claims_hold() {
        let r = run_fig8();
        assert!(r.claims_hold());
        assert_eq!(r.ranked.len(), 15);
    }

    #[test]
    fn results_serialize() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Fig4Result>();
        assert_serde::<Fig5Result>();
        assert_serde::<Fig6Result>();
        assert_serde::<Table1Result>();
        assert_serde::<Fig8Result>();
    }
}
