//! Monte-Carlo yield analysis across fabricated dies.
//!
//! The paper reports one measured die; an IP vendor ships thousands. This
//! module fabricates `n` dies (seeds 1..=n), measures each, and reports
//! the distribution and the yield against a datasheet specification — the
//! analysis behind "min/typ/max" columns.

use adc_pipeline::config::AdcConfig;
use adc_pipeline::error::BuildAdcError;
use adc_runtime::{canonical_key, derive_seed, CacheCodec};

use crate::policy::{campaign_id, ErrorFunnel, RunPolicy};
use crate::session::{LaneBench, MeasurementSession};

/// One die's Monte-Carlo measurement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DieResult {
    /// Fabrication seed.
    pub seed: u64,
    /// SNR at the test tone, dB.
    pub snr_db: f64,
    /// SNDR at the test tone, dB.
    pub sndr_db: f64,
    /// SFDR at the test tone, dB.
    pub sfdr_db: f64,
    /// ENOB, bits.
    pub enob: f64,
    /// Total power, watts.
    pub power_w: f64,
}

impl CacheCodec for DieResult {
    fn encode(&self) -> String {
        (
            self.seed,
            self.snr_db,
            self.sndr_db,
            self.sfdr_db,
            self.enob,
            self.power_w,
        )
            .encode()
    }
    fn decode(line: &str) -> Option<Self> {
        let (seed, snr_db, sndr_db, sfdr_db, enob, power_w) = CacheCodec::decode(line)?;
        Some(Self {
            seed,
            snr_db,
            sndr_db,
            sfdr_db,
            enob,
            power_w,
        })
    }
}

/// Summary statistics of one metric across the population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricStats {
    /// Minimum observed.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum observed.
    pub max: f64,
    /// Sample standard deviation.
    pub sigma: f64,
}

impl MetricStats {
    fn over<F: Fn(&DieResult) -> f64>(dies: &[DieResult], f: F) -> Self {
        assert!(!dies.is_empty(), "no dies measured");
        let values: Vec<f64> = dies.iter().map(f).collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            mean,
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            sigma: var.sqrt(),
        }
    }
}

/// A datasheet specification for yield screening.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct YieldSpec {
    /// Minimum acceptable SNDR, dB.
    pub min_sndr_db: f64,
    /// Minimum acceptable SFDR, dB.
    pub min_sfdr_db: f64,
    /// Maximum acceptable power, watts.
    pub max_power_w: f64,
}

impl YieldSpec {
    /// A screen derived from the paper's Table I with production margin:
    /// SNDR ≥ 62 dB (10 ENOB), SFDR ≥ 65 dB, power ≤ 115 mW.
    pub fn paper_with_margin() -> Self {
        Self {
            min_sndr_db: 62.0,
            min_sfdr_db: 65.0,
            max_power_w: 115e-3,
        }
    }

    /// Does a die pass?
    pub fn passes(&self, die: &DieResult) -> bool {
        die.sndr_db >= self.min_sndr_db
            && die.sfdr_db >= self.min_sfdr_db
            && die.power_w <= self.max_power_w
    }
}

/// The full Monte-Carlo campaign result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloResult {
    /// Per-die measurements.
    pub dies: Vec<DieResult>,
    /// SNR statistics.
    pub snr: MetricStats,
    /// SNDR statistics.
    pub sndr: MetricStats,
    /// SFDR statistics.
    pub sfdr: MetricStats,
    /// ENOB statistics.
    pub enob: MetricStats,
    /// Power statistics (watts).
    pub power: MetricStats,
}

impl MonteCarloResult {
    /// Yield against a spec, in [0, 1].
    pub fn yield_against(&self, spec: &YieldSpec) -> f64 {
        let passing = self.dies.iter().filter(|d| spec.passes(d)).count();
        passing as f64 / self.dies.len() as f64
    }

    /// Dies failing a spec (for failure analysis).
    pub fn failures<'a>(&'a self, spec: &'a YieldSpec) -> impl Iterator<Item = &'a DieResult> {
        self.dies.iter().filter(move |d| !spec.passes(d))
    }
}

/// The declarative form of a Monte-Carlo campaign: everything an
/// executor needs to run it *anywhere* — in-process, or farmed over an
/// `adc-cluster` peer set — while landing in the same shared cache
/// namespace as [`run_monte_carlo_with`].
///
/// The campaign name is the same collision-safe fingerprint the
/// in-process path uses, so a warm cache produced by a distributed run
/// satisfies a later local run (and vice versa) bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloPlan {
    /// Collision-safe campaign name (also the cache-file namespace).
    pub campaign: String,
    /// Campaign seed ([`crate::session::GOLDEN_SEED`]).
    pub seed: u64,
    /// Fabrication seeds, one per die (`1..=die_count`).
    pub die_seeds: Vec<u64>,
    /// Test-tone target frequency, Hz.
    pub f_in_target_hz: f64,
    /// Record length per die, samples.
    pub record_len: usize,
}

impl MonteCarloPlan {
    /// The canonical cache key of one die's result — identical to the
    /// key [`adc_runtime::Campaign::run_cached`] derives for the same
    /// die, so remote fills and local lookups meet in one namespace.
    pub fn cache_key(&self, die_seed: u64) -> u64 {
        canonical_key(&self.campaign, &die_seed)
    }

    /// The runtime-derived per-job seed for the die at `index` (dies
    /// are jobs `0..n` in seed order). Schedule-independent: it depends
    /// only on the campaign seed and the stable job id, never on which
    /// host or thread runs the job.
    pub fn job_seed(&self, index: usize) -> u64 {
        derive_seed(self.seed, index as u64)
    }
}

/// Lays out the Monte-Carlo campaign over `config`: die seeds
/// `1..=die_count`, each measured at `f_in_target_hz` with
/// `record_len`-point records.
///
/// # Panics
///
/// Panics when `die_count == 0`.
pub fn monte_carlo_plan(
    config: &AdcConfig,
    die_count: usize,
    f_in_target_hz: f64,
    record_len: usize,
) -> MonteCarloPlan {
    assert!(die_count > 0, "need at least one die");
    MonteCarloPlan {
        campaign: campaign_id(
            "monte_carlo",
            &(config, record_len, f_in_target_hz.to_bits()),
        ),
        seed: crate::session::GOLDEN_SEED,
        die_seeds: (1..=die_count as u64).collect(),
        f_in_target_hz,
        record_len,
    }
}

/// Fabricates and measures one die: the single per-die computation
/// every Monte-Carlo execution path funnels through. The in-process
/// campaign worker calls this, and so does the cluster job registry on
/// a remote host — bit-identity across schedules and hosts holds
/// because there is exactly one implementation to agree with.
///
/// # Errors
///
/// The die's [`BuildAdcError`] when the config cannot fabricate.
pub fn measure_die(
    config: &AdcConfig,
    die_seed: u64,
    f_in_target_hz: f64,
    record_len: usize,
) -> Result<DieResult, BuildAdcError> {
    let mut session = MeasurementSession::new(config.clone(), die_seed)?;
    session.record_len = record_len;
    let m = session.measure_tone(f_in_target_hz);
    Ok(DieResult {
        seed: die_seed,
        snr_db: m.analysis.snr_db,
        sndr_db: m.analysis.sndr_db,
        sfdr_db: m.analysis.sfdr_db,
        enob: m.analysis.enob,
        power_w: session.adc().power_w(),
    })
}

/// Fabricates and measures a whole group of dies through the
/// lane-parallel SoA kernel: one [`LaneBench`] carries every die
/// through the shared stimulus in lock-step. Per-lane bit-exactness
/// (the kernel's contract, re-asserted by the `determinism` suite)
/// makes this interchangeable with mapping [`measure_die`] over
/// `die_seeds` — same `DieResult`s, same cache entries — just faster.
///
/// # Errors
///
/// The lowest-seed [`BuildAdcError`] when a die cannot fabricate.
///
/// # Panics
///
/// Panics when `die_seeds` is empty.
pub fn measure_dies_laned(
    config: &AdcConfig,
    die_seeds: &[u64],
    f_in_target_hz: f64,
    record_len: usize,
) -> Result<Vec<DieResult>, BuildAdcError> {
    let mut bench = LaneBench::new(config.clone(), die_seeds)?;
    bench.record_len = record_len;
    let measurements = bench.measure_tone(f_in_target_hz);
    Ok(die_seeds
        .iter()
        .zip(bench.lanes())
        .zip(measurements)
        .map(|((&seed, adc), m)| DieResult {
            seed,
            snr_db: m.analysis.snr_db,
            sndr_db: m.analysis.sndr_db,
            sfdr_db: m.analysis.sfdr_db,
            enob: m.analysis.enob,
            power_w: adc.power_w(),
        })
        .collect())
}

/// Folds per-die measurements (in seed order) into the campaign
/// result. Pure assembly — no randomness, no reordering — so any
/// executor that produces the same dies produces the same result.
///
/// # Panics
///
/// Panics when `dies` is empty.
pub fn summarize_dies(dies: Vec<DieResult>) -> MonteCarloResult {
    MonteCarloResult {
        snr: MetricStats::over(&dies, |d| d.snr_db),
        sndr: MetricStats::over(&dies, |d| d.sndr_db),
        sfdr: MetricStats::over(&dies, |d| d.sfdr_db),
        enob: MetricStats::over(&dies, |d| d.enob),
        power: MetricStats::over(&dies, |d| d.power_w),
        dies,
    }
}

/// Runs the campaign with the default [`RunPolicy`] (all hardware
/// threads): fabricates dies with seeds `1..=die_count`, measures each
/// at `f_in_target_hz` with `record_len`-point records.
///
/// # Errors
///
/// Propagates the first build error (the config itself is invalid).
pub fn run_monte_carlo(
    config: &AdcConfig,
    die_count: usize,
    f_in_target_hz: f64,
    record_len: usize,
) -> Result<MonteCarloResult, BuildAdcError> {
    run_monte_carlo_with(
        config,
        die_count,
        f_in_target_hz,
        record_len,
        &RunPolicy::default(),
    )
}

/// [`run_monte_carlo`] with an explicit execution policy.
///
/// Dies are independent jobs — die `k` is fabricated from seed `k` and
/// measured on its own session — so the result is bit-identical whatever
/// `policy.threads` is; one diverging die fails its own job without
/// killing the yield run (its absence surfaces as the build error).
///
/// # Errors
///
/// Propagates the lowest-seed build error.
pub fn run_monte_carlo_with(
    config: &AdcConfig,
    die_count: usize,
    f_in_target_hz: f64,
    record_len: usize,
    policy: &RunPolicy,
) -> Result<MonteCarloResult, BuildAdcError> {
    let plan = monte_carlo_plan(config, die_count, f_in_target_hz, record_len);
    let funnel = ErrorFunnel::new();
    let dies = if policy.lanes > 1 {
        // Lane-batched: groups of dies advance through one LaneBench in
        // lock-step. Same per-die cache keys, same results (per-lane
        // bit-exactness), different wall time.
        let run = policy.run_campaign_grouped(
            &plan.campaign,
            plan.seed,
            plan.die_seeds,
            policy.lanes,
            |ctxs, seeds| {
                for ctx in ctxs {
                    ctx.record_samples(record_len as u64);
                }
                let seeds: Vec<u64> = seeds.iter().map(|&&s| s).collect();
                measure_dies_laned(config, &seeds, f_in_target_hz, record_len)
                    .map_err(|e| funnel.capture(ctxs[0].id, e))
            },
        );
        funnel.resolve(run)?
    } else {
        let run = policy.run_campaign(&plan.campaign, plan.seed, plan.die_seeds, |ctx, &seed| {
            ctx.record_samples(record_len as u64);
            measure_die(config, seed, f_in_target_hz, record_len)
                .map_err(|e| funnel.capture(ctx.id, e))
        });
        funnel.resolve(run)?
    };
    Ok(summarize_dies(dies))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign() -> MonteCarloResult {
        run_monte_carlo(&AdcConfig::nominal_110ms(), 8, 10e6, 2048).expect("campaign runs")
    }

    #[test]
    fn campaign_measures_every_die() {
        let mc = small_campaign();
        assert_eq!(mc.dies.len(), 8);
        let seeds: Vec<u64> = mc.dies.iter().map(|d| d.seed).collect();
        assert_eq!(seeds, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn statistics_are_internally_consistent() {
        let mc = small_campaign();
        assert!(mc.sndr.min <= mc.sndr.mean && mc.sndr.mean <= mc.sndr.max);
        assert!(mc.power.sigma > 0.0, "dies must spread in power");
        // All dies are real converters.
        assert!(mc.enob.min > 9.5, "worst die ENOB {}", mc.enob.min);
    }

    #[test]
    fn paper_margin_spec_yields_most_dies() {
        let mc = small_campaign();
        let y = mc.yield_against(&YieldSpec::paper_with_margin());
        assert!(y >= 0.75, "yield {y}");
    }

    #[test]
    fn impossible_spec_yields_zero() {
        let mc = small_campaign();
        let spec = YieldSpec {
            min_sndr_db: 90.0,
            min_sfdr_db: 90.0,
            max_power_w: 1e-3,
        };
        assert_eq!(mc.yield_against(&spec), 0.0);
        assert_eq!(mc.failures(&spec).count(), mc.dies.len());
    }

    #[test]
    fn campaign_is_reproducible() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a, b);
    }

    #[test]
    fn plan_and_per_die_path_reassemble_the_campaign() {
        use std::sync::Arc;
        let config = AdcConfig::nominal_110ms();
        let cache = Arc::new(adc_runtime::ResultCache::in_memory());
        let reference = run_monte_carlo_with(
            &config,
            4,
            10e6,
            1024,
            &RunPolicy::serial().cached(Arc::clone(&cache)),
        )
        .expect("runs");

        // The declarative plan + the shared per-die function reassemble
        // the exact campaign — this is the distributed path's identity.
        let plan = monte_carlo_plan(&config, 4, 10e6, 1024);
        assert_eq!(plan.die_seeds, vec![1, 2, 3, 4]);
        let dies: Vec<DieResult> = plan
            .die_seeds
            .iter()
            .map(|&s| measure_die(&config, s, plan.f_in_target_hz, plan.record_len).unwrap())
            .collect();
        assert_eq!(summarize_dies(dies), reference);

        // And the plan's keys land in run_cached's namespace: every die
        // the cached run computed is visible under plan.cache_key.
        for die in &reference.dies {
            assert_eq!(
                cache.get::<DieResult>(plan.cache_key(die.seed)).as_ref(),
                Some(die),
                "die {} missing from the shared namespace",
                die.seed
            );
        }
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_serial() {
        let config = AdcConfig::nominal_110ms();
        let serial =
            run_monte_carlo_with(&config, 6, 10e6, 1024, &RunPolicy::serial()).expect("runs");
        let parallel =
            run_monte_carlo_with(&config, 6, 10e6, 1024, &RunPolicy::parallel(4)).expect("runs");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn laned_campaign_is_bit_identical_to_serial() {
        let config = AdcConfig::nominal_110ms();
        let serial =
            run_monte_carlo_with(&config, 6, 10e6, 1024, &RunPolicy::serial()).expect("runs");
        // Both a full batch and a ragged tail (6 dies in lanes of 4).
        for lanes in [4, 8] {
            let laned =
                run_monte_carlo_with(&config, 6, 10e6, 1024, &RunPolicy::serial().laned(lanes))
                    .expect("runs");
            assert_eq!(serial, laned, "{lanes}-lane campaign diverged");
        }
    }

    #[test]
    fn laned_and_scalar_campaigns_share_one_cache_namespace() {
        use std::sync::Arc;
        let config = AdcConfig::nominal_110ms();
        let cache = Arc::new(adc_runtime::ResultCache::in_memory());
        let scalar = run_monte_carlo_with(
            &config,
            4,
            10e6,
            1024,
            &RunPolicy::serial().cached(Arc::clone(&cache)),
        )
        .expect("runs");
        // The laned rerun is all cache hits: the dies come back from the
        // scalar run's entries, bit-identically.
        let laned = run_monte_carlo_with(
            &config,
            4,
            10e6,
            1024,
            &RunPolicy::serial().cached(Arc::clone(&cache)).laned(4),
        )
        .expect("runs");
        assert_eq!(scalar, laned);
    }
}
