//! Monte-Carlo yield analysis across fabricated dies.
//!
//! The paper reports one measured die; an IP vendor ships thousands. This
//! module fabricates `n` dies (seeds 1..=n), measures each, and reports
//! the distribution and the yield against a datasheet specification — the
//! analysis behind "min/typ/max" columns.

use adc_pipeline::config::AdcConfig;
use adc_pipeline::error::BuildAdcError;
use adc_runtime::CacheCodec;

use crate::policy::{campaign_id, ErrorFunnel, RunPolicy};
use crate::session::MeasurementSession;

/// One die's Monte-Carlo measurement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DieResult {
    /// Fabrication seed.
    pub seed: u64,
    /// SNR at the test tone, dB.
    pub snr_db: f64,
    /// SNDR at the test tone, dB.
    pub sndr_db: f64,
    /// SFDR at the test tone, dB.
    pub sfdr_db: f64,
    /// ENOB, bits.
    pub enob: f64,
    /// Total power, watts.
    pub power_w: f64,
}

impl CacheCodec for DieResult {
    fn encode(&self) -> String {
        (
            self.seed,
            self.snr_db,
            self.sndr_db,
            self.sfdr_db,
            self.enob,
            self.power_w,
        )
            .encode()
    }
    fn decode(line: &str) -> Option<Self> {
        let (seed, snr_db, sndr_db, sfdr_db, enob, power_w) = CacheCodec::decode(line)?;
        Some(Self {
            seed,
            snr_db,
            sndr_db,
            sfdr_db,
            enob,
            power_w,
        })
    }
}

/// Summary statistics of one metric across the population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricStats {
    /// Minimum observed.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum observed.
    pub max: f64,
    /// Sample standard deviation.
    pub sigma: f64,
}

impl MetricStats {
    fn over<F: Fn(&DieResult) -> f64>(dies: &[DieResult], f: F) -> Self {
        assert!(!dies.is_empty(), "no dies measured");
        let values: Vec<f64> = dies.iter().map(f).collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            mean,
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            sigma: var.sqrt(),
        }
    }
}

/// A datasheet specification for yield screening.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct YieldSpec {
    /// Minimum acceptable SNDR, dB.
    pub min_sndr_db: f64,
    /// Minimum acceptable SFDR, dB.
    pub min_sfdr_db: f64,
    /// Maximum acceptable power, watts.
    pub max_power_w: f64,
}

impl YieldSpec {
    /// A screen derived from the paper's Table I with production margin:
    /// SNDR ≥ 62 dB (10 ENOB), SFDR ≥ 65 dB, power ≤ 115 mW.
    pub fn paper_with_margin() -> Self {
        Self {
            min_sndr_db: 62.0,
            min_sfdr_db: 65.0,
            max_power_w: 115e-3,
        }
    }

    /// Does a die pass?
    pub fn passes(&self, die: &DieResult) -> bool {
        die.sndr_db >= self.min_sndr_db
            && die.sfdr_db >= self.min_sfdr_db
            && die.power_w <= self.max_power_w
    }
}

/// The full Monte-Carlo campaign result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloResult {
    /// Per-die measurements.
    pub dies: Vec<DieResult>,
    /// SNR statistics.
    pub snr: MetricStats,
    /// SNDR statistics.
    pub sndr: MetricStats,
    /// SFDR statistics.
    pub sfdr: MetricStats,
    /// ENOB statistics.
    pub enob: MetricStats,
    /// Power statistics (watts).
    pub power: MetricStats,
}

impl MonteCarloResult {
    /// Yield against a spec, in [0, 1].
    pub fn yield_against(&self, spec: &YieldSpec) -> f64 {
        let passing = self.dies.iter().filter(|d| spec.passes(d)).count();
        passing as f64 / self.dies.len() as f64
    }

    /// Dies failing a spec (for failure analysis).
    pub fn failures<'a>(&'a self, spec: &'a YieldSpec) -> impl Iterator<Item = &'a DieResult> {
        self.dies.iter().filter(move |d| !spec.passes(d))
    }
}

/// Runs the campaign with the default [`RunPolicy`] (all hardware
/// threads): fabricates dies with seeds `1..=die_count`, measures each
/// at `f_in_target_hz` with `record_len`-point records.
///
/// # Errors
///
/// Propagates the first build error (the config itself is invalid).
pub fn run_monte_carlo(
    config: &AdcConfig,
    die_count: usize,
    f_in_target_hz: f64,
    record_len: usize,
) -> Result<MonteCarloResult, BuildAdcError> {
    run_monte_carlo_with(
        config,
        die_count,
        f_in_target_hz,
        record_len,
        &RunPolicy::default(),
    )
}

/// [`run_monte_carlo`] with an explicit execution policy.
///
/// Dies are independent jobs — die `k` is fabricated from seed `k` and
/// measured on its own session — so the result is bit-identical whatever
/// `policy.threads` is; one diverging die fails its own job without
/// killing the yield run (its absence surfaces as the build error).
///
/// # Errors
///
/// Propagates the lowest-seed build error.
pub fn run_monte_carlo_with(
    config: &AdcConfig,
    die_count: usize,
    f_in_target_hz: f64,
    record_len: usize,
    policy: &RunPolicy,
) -> Result<MonteCarloResult, BuildAdcError> {
    assert!(die_count > 0, "need at least one die");
    let funnel = ErrorFunnel::new();
    let name = campaign_id(
        "monte_carlo",
        &(config, record_len, f_in_target_hz.to_bits()),
    );
    let run = policy.run_campaign(
        &name,
        crate::session::GOLDEN_SEED,
        (1..=die_count as u64).collect(),
        |ctx, &seed| {
            let mut session = MeasurementSession::new(config.clone(), seed)
                .map_err(|e| funnel.capture(ctx.id, e))?;
            session.record_len = record_len;
            ctx.record_samples(record_len as u64);
            let m = session.measure_tone(f_in_target_hz);
            Ok(DieResult {
                seed,
                snr_db: m.analysis.snr_db,
                sndr_db: m.analysis.sndr_db,
                sfdr_db: m.analysis.sfdr_db,
                enob: m.analysis.enob,
                power_w: session.adc().power_w(),
            })
        },
    );
    let dies = funnel.resolve(run)?;
    Ok(MonteCarloResult {
        snr: MetricStats::over(&dies, |d| d.snr_db),
        sndr: MetricStats::over(&dies, |d| d.sndr_db),
        sfdr: MetricStats::over(&dies, |d| d.sfdr_db),
        enob: MetricStats::over(&dies, |d| d.enob),
        power: MetricStats::over(&dies, |d| d.power_w),
        dies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign() -> MonteCarloResult {
        run_monte_carlo(&AdcConfig::nominal_110ms(), 8, 10e6, 2048).expect("campaign runs")
    }

    #[test]
    fn campaign_measures_every_die() {
        let mc = small_campaign();
        assert_eq!(mc.dies.len(), 8);
        let seeds: Vec<u64> = mc.dies.iter().map(|d| d.seed).collect();
        assert_eq!(seeds, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn statistics_are_internally_consistent() {
        let mc = small_campaign();
        assert!(mc.sndr.min <= mc.sndr.mean && mc.sndr.mean <= mc.sndr.max);
        assert!(mc.power.sigma > 0.0, "dies must spread in power");
        // All dies are real converters.
        assert!(mc.enob.min > 9.5, "worst die ENOB {}", mc.enob.min);
    }

    #[test]
    fn paper_margin_spec_yields_most_dies() {
        let mc = small_campaign();
        let y = mc.yield_against(&YieldSpec::paper_with_margin());
        assert!(y >= 0.75, "yield {y}");
    }

    #[test]
    fn impossible_spec_yields_zero() {
        let mc = small_campaign();
        let spec = YieldSpec {
            min_sndr_db: 90.0,
            min_sfdr_db: 90.0,
            max_power_w: 1e-3,
        };
        assert_eq!(mc.yield_against(&spec), 0.0);
        assert_eq!(mc.failures(&spec).count(), mc.dies.len());
    }

    #[test]
    fn campaign_is_reproducible() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_serial() {
        let config = AdcConfig::nominal_110ms();
        let serial =
            run_monte_carlo_with(&config, 6, 10e6, 1024, &RunPolicy::serial()).expect("runs");
        let parallel =
            run_monte_carlo_with(&config, 6, 10e6, 1024, &RunPolicy::parallel(4)).expect("runs");
        assert_eq!(serial, parallel);
    }
}
