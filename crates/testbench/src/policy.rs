//! Execution policy for measurement campaigns.
//!
//! Every sweep and Monte-Carlo harness in this crate fans its points out
//! through `adc-runtime`; [`RunPolicy`] is the shared knob set (thread
//! count, observers) those harnesses accept. The engine's determinism
//! contract means the policy affects wall time only — results are
//! bit-identical from `serial()` to `parallel(64)`.

use std::sync::{Arc, Mutex};

use adc_pipeline::error::BuildAdcError;
use adc_runtime::{
    canonical_key, CacheCodec, Campaign, CampaignRun, JobError, JobId, ResultCache, RunObserver,
};

/// How a campaign executes: worker-thread count, attached observers, and
/// an optional content-hash result cache.
#[derive(Clone, Default)]
pub struct RunPolicy {
    /// Worker threads; `0` (default) uses all hardware parallelism.
    pub threads: usize,
    /// Observers attached to every campaign run under this policy.
    pub observers: Vec<Arc<dyn RunObserver>>,
    /// When set, campaign points are looked up here before computing —
    /// regenerating a figure after editing one sweep point recomputes
    /// only that point.
    pub cache: Option<Arc<ResultCache>>,
    /// Lane-batch width for lane-compatible campaigns (Monte-Carlo die
    /// measurement): groups of up to `lanes` jobs advance through the
    /// SoA lane kernel together instead of one session each. `0` or `1`
    /// (the default) runs scalar per-job sessions. Per-lane
    /// bit-exactness means the results are identical either way — only
    /// wall time changes.
    pub lanes: usize,
}

impl std::fmt::Debug for RunPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPolicy")
            .field("threads", &self.threads)
            .field("observers", &self.observers.len())
            .field("cached", &self.cache.is_some())
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl RunPolicy {
    /// One worker thread: the serial reference execution.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// A fixed worker-thread count.
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Attaches an observer (builder style).
    #[must_use]
    pub fn observe(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Attaches a result cache (builder style).
    #[must_use]
    pub fn cached(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the lane-batch width for lane-compatible campaigns (builder
    /// style); see [`RunPolicy::lanes`].
    #[must_use]
    pub fn laned(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Builds a campaign over `inputs` configured per this policy.
    pub(crate) fn campaign<I>(&self, name: &str, seed: u64, inputs: Vec<I>) -> Campaign<I> {
        let mut campaign = Campaign::new(name, seed).jobs(inputs).threads(self.threads);
        for obs in &self.observers {
            campaign = campaign.observe(Arc::clone(obs));
        }
        campaign
    }

    /// Runs `worker` over `inputs` as a named measurement campaign: the
    /// points fan out across the engine's worker pool, results return in
    /// input order, and an attached cache skips already-computed points.
    ///
    /// This is the public face of the machinery the built-in sweeps use:
    /// `kind` plus the `fingerprint` (everything that shapes results
    /// besides the per-point input — config, seed, record length)
    /// becomes a collision-safe campaign name, and typed build errors
    /// from any point resolve to the error of the lowest-index failed
    /// point, exactly as a serial loop would have returned first.
    ///
    /// ```
    /// use adc_testbench::RunPolicy;
    ///
    /// let doubled = RunPolicy::serial()
    ///     .measure_campaign("doc", &"fingerprint", 7, vec![1.0, 2.0], |_ctx, &x| Ok(x * 2.0))
    ///     .unwrap();
    /// assert_eq!(doubled, vec![2.0, 4.0]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the lowest-index point's [`BuildAdcError`] if any point
    /// fails.
    ///
    /// # Panics
    ///
    /// Re-raises worker panics, mirroring a serial loop.
    pub fn measure_campaign<I, T, P, F>(
        &self,
        kind: &str,
        fingerprint: &P,
        seed: u64,
        inputs: Vec<I>,
        worker: F,
    ) -> Result<Vec<T>, BuildAdcError>
    where
        I: Sync + std::fmt::Debug,
        T: Send + CacheCodec,
        P: std::fmt::Debug,
        F: Fn(&adc_runtime::JobCtx, &I) -> Result<T, BuildAdcError> + Sync,
    {
        let name = campaign_id(kind, fingerprint);
        let funnel = ErrorFunnel::new();
        let run = self.run_campaign(&name, seed, inputs, |ctx, input| {
            worker(ctx, input).map_err(|e| funnel.capture(ctx.id, e))
        });
        funnel.resolve(run)
    }

    /// Runs a campaign, through the cache when one is attached.
    pub(crate) fn run_campaign<I, T, F>(
        &self,
        name: &str,
        seed: u64,
        inputs: Vec<I>,
        worker: F,
    ) -> CampaignRun<T>
    where
        I: Sync + std::fmt::Debug,
        T: Send + CacheCodec,
        F: Fn(&adc_runtime::JobCtx, &I) -> Result<T, JobError> + Sync,
    {
        let campaign = self.campaign(name, seed, inputs);
        match &self.cache {
            Some(cache) => campaign.run_cached(cache, worker),
            None => campaign.run(worker),
        }
    }

    /// Runs a lane-grouped campaign (through the cache when one is
    /// attached): jobs fan out in batches of up to `group_size`, each
    /// batch's worker receiving every member's context and input. The
    /// cache namespace is per-member, shared with [`Self::run_campaign`].
    pub(crate) fn run_campaign_grouped<I, T, F>(
        &self,
        name: &str,
        seed: u64,
        inputs: Vec<I>,
        group_size: usize,
        worker: F,
    ) -> CampaignRun<T>
    where
        I: Sync + std::fmt::Debug,
        T: Send + CacheCodec,
        F: Fn(&[adc_runtime::JobCtx], &[&I]) -> Result<Vec<T>, JobError> + Sync,
    {
        let campaign = self.campaign(name, seed, inputs);
        match &self.cache {
            Some(cache) => campaign.run_grouped_cached(cache, group_size, worker),
            None => campaign.run_grouped(group_size, worker),
        }
    }
}

/// A collision-safe campaign name: `kind` plus a hash of everything that
/// shapes the results besides the per-point input (config, seed, record
/// length, ...). Cache entries from different setups can then never
/// alias, even under the same `kind`.
pub(crate) fn campaign_id<F: std::fmt::Debug>(kind: &str, fingerprint: &F) -> String {
    format!("{kind}-{:016x}", canonical_key(kind, fingerprint))
}

/// Carries typed [`BuildAdcError`]s out of campaign workers.
///
/// The runtime's [`JobError`] is stringly typed; the sweep APIs promise a
/// `BuildAdcError`. Workers route build failures through
/// [`ErrorFunnel::capture`], and [`ErrorFunnel::resolve`] returns the
/// typed error of the *lowest-id* failed job — exactly the error the old
/// serial loop would have returned first.
pub(crate) struct ErrorFunnel {
    errors: Mutex<Vec<(u64, BuildAdcError)>>,
}

impl ErrorFunnel {
    pub(crate) fn new() -> Self {
        Self {
            errors: Mutex::new(Vec::new()),
        }
    }

    /// Records a typed error for job `id` and returns its [`JobError`]
    /// rendering for the runtime.
    pub(crate) fn capture(&self, id: JobId, err: BuildAdcError) -> JobError {
        let rendered = JobError::Failed(err.to_string());
        self.errors.lock().expect("funnel lock").push((id.0, err));
        rendered
    }

    /// Unwraps a finished run into the public result type.
    ///
    /// Panics (re-raising the message) if the failure was a worker panic
    /// rather than a captured build error — mirroring the serial
    /// harnesses, where a panic propagated to the caller.
    pub(crate) fn resolve<T>(self, run: CampaignRun<T>) -> Result<Vec<T>, BuildAdcError> {
        match run.into_result() {
            Ok(values) => Ok(values),
            Err((id, job_err)) => {
                let errors = self.errors.into_inner().expect("funnel lock");
                match errors.into_iter().find(|(i, _)| *i == id.0) {
                    Some((_, err)) => Err(err),
                    None => panic!("campaign job {id} failed: {job_err}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_uses_hardware_threads() {
        let p = RunPolicy::default();
        assert_eq!(p.threads, 0);
        assert!(p.observers.is_empty());
        assert_eq!(RunPolicy::serial().threads, 1);
        assert_eq!(RunPolicy::parallel(4).threads, 4);
    }

    #[test]
    fn measure_campaign_orders_results_and_types_errors() {
        let policy = RunPolicy::parallel(4);
        let squares = policy
            .measure_campaign("sq", &"fp", 0, (0u64..16).collect(), |_, &x| Ok(x * x))
            .unwrap();
        assert_eq!(squares, (0u64..16).map(|x| x * x).collect::<Vec<_>>());

        let err = policy
            .measure_campaign("sq", &"fp", 0, (0u64..16).collect(), |_, &x| {
                if x >= 5 {
                    Err(BuildAdcError::InvalidRate(-(x as f64)))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(err, BuildAdcError::InvalidRate(-5.0), "lowest index wins");
    }

    #[test]
    fn measure_campaign_is_cacheable() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(ResultCache::in_memory());
        let policy = RunPolicy::serial().cached(Arc::clone(&cache));
        let computed = AtomicUsize::new(0);
        for _ in 0..2 {
            let out = policy
                .measure_campaign("cached", &"fp", 0, vec![1.0f64, 2.0], |_, &x| {
                    computed.fetch_add(1, Ordering::SeqCst);
                    Ok(x + 0.5)
                })
                .unwrap();
            assert_eq!(out, vec![1.5, 2.5]);
        }
        assert_eq!(
            computed.load(Ordering::SeqCst),
            2,
            "second pass is all hits"
        );
    }

    #[test]
    fn funnel_returns_the_lowest_id_typed_error() {
        let funnel = ErrorFunnel::new();
        let run = RunPolicy::parallel(4)
            .campaign("funnel", 0, (0u64..8).collect())
            .run(|ctx, &x| {
                if x >= 6 {
                    Err(funnel.capture(ctx.id, BuildAdcError::InvalidRate(-(x as f64))))
                } else {
                    Ok(x)
                }
            });
        assert_eq!(
            funnel.resolve(run),
            Err(BuildAdcError::InvalidRate(-6.0)),
            "job 6 fails first in id order"
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn funnel_reraises_worker_panics() {
        let funnel = ErrorFunnel::new();
        let run = RunPolicy::serial()
            .campaign("panic", 0, vec![0u64])
            .run(|_, _| -> Result<u64, JobError> { panic!("boom") });
        let _ = funnel.resolve(run);
    }
}
