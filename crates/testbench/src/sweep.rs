//! Sweep harnesses: the parameterised measurement campaigns behind the
//! paper's Figs. 4, 5 and 6.

use adc_bias::power::PowerReading;
use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_pipeline::error::BuildAdcError;

use crate::session::MeasurementSession;

/// One dynamic sweep point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DynamicPoint {
    /// The swept variable, hertz (conversion rate or input frequency,
    /// depending on the sweep).
    pub x_hz: f64,
    /// Measured SNR, dB.
    pub snr_db: f64,
    /// Measured SNDR, dB.
    pub sndr_db: f64,
    /// Measured SFDR, dB.
    pub sfdr_db: f64,
    /// Effective number of bits.
    pub enob: f64,
}

/// A configured sweep campaign over one die.
///
/// ```
/// use adc_testbench::SweepRunner;
/// # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
/// let runner = SweepRunner { record_len: 2048, ..SweepRunner::nominal() };
/// let points = runner.rate_sweep(&[40e6, 110e6], 10e6)?;
/// assert!(points[1].sndr_db > 62.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    /// Base configuration (the swept field is overridden per point).
    pub config: AdcConfig,
    /// Fabrication seed.
    pub seed: u64,
    /// FFT record length per point.
    pub record_len: usize,
    /// Stimulus amplitude, volts peak.
    pub amplitude_v: f64,
}

impl SweepRunner {
    /// A runner over the golden nominal die with the paper's record
    /// settings.
    pub fn nominal() -> Self {
        Self::for_config(AdcConfig::nominal_110ms())
    }

    /// A runner over any configuration (golden seed, near-full-scale
    /// stimulus).
    pub fn for_config(config: AdcConfig) -> Self {
        let amplitude_v = 0.995 * config.v_ref_v;
        Self {
            config,
            seed: crate::session::GOLDEN_SEED,
            record_len: 8192,
            amplitude_v,
        }
    }

    fn session_at_rate(&self, f_cr_hz: f64) -> Result<MeasurementSession, BuildAdcError> {
        let config = AdcConfig {
            f_cr_hz,
            ..self.config.clone()
        };
        let mut s = MeasurementSession::new(config, self.seed)?;
        s.record_len = self.record_len;
        s.amplitude_v = self.amplitude_v;
        Ok(s)
    }

    /// Fig. 5: dynamic metrics versus conversion rate at a fixed input
    /// frequency.
    ///
    /// # Errors
    ///
    /// Returns the first build error (e.g. a rate beyond the clocking
    /// scheme's capability).
    pub fn rate_sweep(
        &self,
        rates_hz: &[f64],
        f_in_target_hz: f64,
    ) -> Result<Vec<DynamicPoint>, BuildAdcError> {
        rates_hz
            .iter()
            .map(|&f_cr| {
                let mut s = self.session_at_rate(f_cr)?;
                let m = s.measure_tone(f_in_target_hz);
                Ok(DynamicPoint {
                    x_hz: f_cr,
                    snr_db: m.analysis.snr_db,
                    sndr_db: m.analysis.sndr_db,
                    sfdr_db: m.analysis.sfdr_db,
                    enob: m.analysis.enob,
                })
            })
            .collect()
    }

    /// Fig. 6: dynamic metrics versus input frequency at a fixed
    /// conversion rate.
    ///
    /// # Errors
    ///
    /// Returns a build error if the base configuration is unbuildable.
    pub fn frequency_sweep(&self, fins_hz: &[f64]) -> Result<Vec<DynamicPoint>, BuildAdcError> {
        let mut s = self.session_at_rate(self.config.f_cr_hz)?;
        Ok(fins_hz
            .iter()
            .map(|&fin| {
                let m = s.measure_tone(fin);
                DynamicPoint {
                    x_hz: fin,
                    snr_db: m.analysis.snr_db,
                    sndr_db: m.analysis.sndr_db,
                    sfdr_db: m.analysis.sfdr_db,
                    enob: m.analysis.enob,
                }
            })
            .collect())
    }

    /// Fig. 4: power versus conversion rate.
    ///
    /// # Errors
    ///
    /// Returns the first build error.
    pub fn power_sweep(&self, rates_hz: &[f64]) -> Result<Vec<PowerReading>, BuildAdcError> {
        rates_hz
            .iter()
            .map(|&f_cr| {
                let config = AdcConfig {
                    f_cr_hz: f_cr,
                    ..self.config.clone()
                };
                let adc = PipelineAdc::build(config, self.seed)?;
                Ok(adc.power_reading())
            })
            .collect()
    }

    /// Amplitude sweep at fixed rate and input frequency: SNDR versus
    /// input level (dBFS), the classic dynamic-range characterisation.
    ///
    /// # Errors
    ///
    /// Returns a build error if the base configuration is unbuildable.
    pub fn amplitude_sweep(
        &self,
        f_in_target_hz: f64,
        levels_dbfs: &[f64],
    ) -> Result<Vec<(f64, DynamicPoint)>, BuildAdcError> {
        let mut out = Vec::with_capacity(levels_dbfs.len());
        for &dbfs in levels_dbfs {
            let mut s = self.session_at_rate(self.config.f_cr_hz)?;
            s.amplitude_v = self.config.v_ref_v * 10f64.powf(dbfs / 20.0);
            let m = s.measure_tone(f_in_target_hz);
            out.push((
                dbfs,
                DynamicPoint {
                    x_hz: f_in_target_hz,
                    snr_db: m.analysis.snr_db,
                    sndr_db: m.analysis.sndr_db,
                    sfdr_db: m.analysis.sfdr_db,
                    enob: m.analysis.enob,
                },
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_runner() -> SweepRunner {
        SweepRunner {
            record_len: 2048,
            ..SweepRunner::nominal()
        }
    }

    #[test]
    fn rate_sweep_is_flat_in_the_paper_band() {
        let r = quick_runner();
        let pts = r.rate_sweep(&[40e6, 80e6, 120e6], 10e6).unwrap();
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.sndr_db > 62.0, "sndr {} at {} MS/s", p.sndr_db, p.x_hz / 1e6);
        }
    }

    #[test]
    fn rate_sweep_collapses_beyond_140ms() {
        let r = quick_runner();
        let pts = r.rate_sweep(&[110e6, 200e6], 10e6).unwrap();
        assert!(pts[1].sndr_db < pts[0].sndr_db - 8.0, "{pts:?}");
    }

    #[test]
    fn frequency_sweep_shows_sfdr_rolloff() {
        let r = quick_runner();
        let pts = r.frequency_sweep(&[10e6, 100e6]).unwrap();
        assert!(pts[1].sfdr_db < pts[0].sfdr_db - 10.0, "{pts:?}");
    }

    #[test]
    fn power_sweep_is_linear() {
        let r = SweepRunner::nominal();
        let pts = r.power_sweep(&[40e6, 80e6]).unwrap();
        let slope1 = pts[0].scaled_w / 40e6;
        let slope2 = pts[1].scaled_w / 80e6;
        assert!((slope1 / slope2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_sweep_tracks_level() {
        let r = quick_runner();
        let pts = r.amplitude_sweep(10e6, &[-20.0, -0.5]).unwrap();
        // SNDR improves roughly dB-for-dB with level in the noise-limited
        // region.
        let delta = pts[1].1.sndr_db - pts[0].1.sndr_db;
        assert!((delta - 19.5).abs() < 3.0, "delta {delta}");
    }

    #[test]
    fn sweep_propagates_build_errors() {
        let r = quick_runner();
        assert!(r.rate_sweep(&[600e6], 10e6).is_err());
    }
}
