//! Sweep harnesses: the parameterised measurement campaigns behind the
//! paper's Figs. 4, 5 and 6.
//!
//! Every sweep fans its points out through the `adc-runtime` campaign
//! engine: each point is an independent job (its own fabricated die /
//! measurement session), so results are bit-identical whatever the
//! [`RunPolicy`] thread count, and a slow point cannot serialise the
//! rest of the figure.

use adc_bias::power::PowerReading;
use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_pipeline::error::BuildAdcError;

use adc_runtime::CacheCodec;

use crate::policy::{campaign_id, ErrorFunnel, RunPolicy};
use crate::session::MeasurementSession;

/// One dynamic sweep point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DynamicPoint {
    /// The swept variable, hertz (conversion rate or input frequency,
    /// depending on the sweep).
    pub x_hz: f64,
    /// Measured SNR, dB.
    pub snr_db: f64,
    /// Measured SNDR, dB.
    pub sndr_db: f64,
    /// Measured SFDR, dB.
    pub sfdr_db: f64,
    /// Effective number of bits.
    pub enob: f64,
}

impl CacheCodec for DynamicPoint {
    fn encode(&self) -> String {
        (
            self.x_hz,
            self.snr_db,
            self.sndr_db,
            self.sfdr_db,
            self.enob,
        )
            .encode()
    }
    fn decode(line: &str) -> Option<Self> {
        let (x_hz, snr_db, sndr_db, sfdr_db, enob) = CacheCodec::decode(line)?;
        Some(Self {
            x_hz,
            snr_db,
            sndr_db,
            sfdr_db,
            enob,
        })
    }
}

/// A configured sweep campaign over one die.
///
/// ```
/// use adc_testbench::SweepRunner;
/// # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
/// let runner = SweepRunner { record_len: 2048, ..SweepRunner::nominal() };
/// let points = runner.rate_sweep(&[40e6, 110e6], 10e6)?;
/// assert!(points[1].sndr_db > 62.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    /// Base configuration (the swept field is overridden per point).
    pub config: AdcConfig,
    /// Fabrication seed.
    pub seed: u64,
    /// FFT record length per point.
    pub record_len: usize,
    /// Stimulus amplitude, volts peak.
    pub amplitude_v: f64,
    /// Execution policy (threads, observers) for the campaigns.
    pub policy: RunPolicy,
}

impl SweepRunner {
    /// A runner over the golden nominal die with the paper's record
    /// settings.
    pub fn nominal() -> Self {
        Self::for_config(AdcConfig::nominal_110ms())
    }

    /// A runner over any configuration (golden seed, near-full-scale
    /// stimulus).
    pub fn for_config(config: AdcConfig) -> Self {
        let amplitude_v = 0.995 * config.v_ref_v;
        Self {
            config,
            seed: crate::session::GOLDEN_SEED,
            record_len: 8192,
            amplitude_v,
            policy: RunPolicy::default(),
        }
    }

    fn session_at_rate(&self, f_cr_hz: f64) -> Result<MeasurementSession, BuildAdcError> {
        let config = AdcConfig {
            f_cr_hz,
            ..self.config.clone()
        };
        let mut s = MeasurementSession::new(config, self.seed)?;
        s.record_len = self.record_len;
        s.amplitude_v = self.amplitude_v;
        Ok(s)
    }

    /// Everything besides the swept variable that shapes a result point
    /// — hashed into the campaign name so cache entries from different
    /// setups can never alias.
    fn fingerprint(&self) -> (&AdcConfig, u64, usize, u64) {
        (
            &self.config,
            self.seed,
            self.record_len,
            self.amplitude_v.to_bits(),
        )
    }

    /// Measures one dynamic point on a fresh session (its own noise
    /// realisation — the per-point independence the campaign engine's
    /// determinism contract requires).
    fn measure_point(
        &self,
        f_cr_hz: f64,
        f_in_target_hz: f64,
        x_hz: f64,
    ) -> Result<DynamicPoint, BuildAdcError> {
        let mut s = self.session_at_rate(f_cr_hz)?;
        let m = s.measure_tone(f_in_target_hz);
        Ok(DynamicPoint {
            x_hz,
            snr_db: m.analysis.snr_db,
            sndr_db: m.analysis.sndr_db,
            sfdr_db: m.analysis.sfdr_db,
            enob: m.analysis.enob,
        })
    }

    /// Fig. 5: dynamic metrics versus conversion rate at a fixed input
    /// frequency.
    ///
    /// # Errors
    ///
    /// Returns the first build error (e.g. a rate beyond the clocking
    /// scheme's capability).
    pub fn rate_sweep(
        &self,
        rates_hz: &[f64],
        f_in_target_hz: f64,
    ) -> Result<Vec<DynamicPoint>, BuildAdcError> {
        let funnel = ErrorFunnel::new();
        let name = campaign_id("rate_sweep", &(self.fingerprint(), f_in_target_hz));
        let run = self
            .policy
            .run_campaign(&name, self.seed, rates_hz.to_vec(), |ctx, &f_cr| {
                ctx.record_samples(self.record_len as u64);
                self.measure_point(f_cr, f_in_target_hz, f_cr)
                    .map_err(|e| funnel.capture(ctx.id, e))
            });
        funnel.resolve(run)
    }

    /// Fig. 6: dynamic metrics versus input frequency at a fixed
    /// conversion rate.
    ///
    /// Each point runs on a fresh session (independent noise
    /// realisation), so points parallelise and the sweep is
    /// bit-identical at any thread count. (The pre-runtime harness
    /// reused one session serially, threading the noise RNG through the
    /// sweep; per-point metrics differ within the noise floor, and the
    /// figure's bands are unchanged.)
    ///
    /// # Errors
    ///
    /// Returns a build error if the base configuration is unbuildable.
    pub fn frequency_sweep(&self, fins_hz: &[f64]) -> Result<Vec<DynamicPoint>, BuildAdcError> {
        let funnel = ErrorFunnel::new();
        let name = campaign_id("frequency_sweep", &self.fingerprint());
        let run = self
            .policy
            .run_campaign(&name, self.seed, fins_hz.to_vec(), |ctx, &fin| {
                ctx.record_samples(self.record_len as u64);
                self.measure_point(self.config.f_cr_hz, fin, fin)
                    .map_err(|e| funnel.capture(ctx.id, e))
            });
        funnel.resolve(run)
    }

    /// Fig. 4: power versus conversion rate.
    ///
    /// # Errors
    ///
    /// Returns the first build error.
    pub fn power_sweep(&self, rates_hz: &[f64]) -> Result<Vec<PowerReading>, BuildAdcError> {
        let funnel = ErrorFunnel::new();
        let name = campaign_id("power_sweep", &self.fingerprint());
        // PowerReading is a foreign type, so it rides the cache as its
        // (f_cr, scaled, fixed, total) tuple.
        let run = self
            .policy
            .run_campaign(&name, self.seed, rates_hz.to_vec(), |ctx, &f_cr| {
                let config = AdcConfig {
                    f_cr_hz: f_cr,
                    ..self.config.clone()
                };
                PipelineAdc::build(config, self.seed)
                    .map(|adc| {
                        let r = adc.power_reading();
                        (r.f_cr_hz, r.scaled_w, r.fixed_w, r.total_w)
                    })
                    .map_err(|e| funnel.capture(ctx.id, e))
            });
        Ok(funnel
            .resolve(run)?
            .into_iter()
            .map(|(f_cr_hz, scaled_w, fixed_w, total_w)| PowerReading {
                f_cr_hz,
                scaled_w,
                fixed_w,
                total_w,
            })
            .collect())
    }

    /// Amplitude sweep at fixed rate and input frequency: SNDR versus
    /// input level (dBFS), the classic dynamic-range characterisation.
    ///
    /// # Errors
    ///
    /// Returns a build error if the base configuration is unbuildable.
    pub fn amplitude_sweep(
        &self,
        f_in_target_hz: f64,
        levels_dbfs: &[f64],
    ) -> Result<Vec<(f64, DynamicPoint)>, BuildAdcError> {
        let funnel = ErrorFunnel::new();
        let name = campaign_id("amplitude_sweep", &(self.fingerprint(), f_in_target_hz));
        let run = self
            .policy
            .run_campaign(&name, self.seed, levels_dbfs.to_vec(), |ctx, &dbfs| {
                ctx.record_samples(self.record_len as u64);
                let mut s = self
                    .session_at_rate(self.config.f_cr_hz)
                    .map_err(|e| funnel.capture(ctx.id, e))?;
                s.amplitude_v = self.config.v_ref_v * 10f64.powf(dbfs / 20.0);
                let m = s.measure_tone(f_in_target_hz);
                Ok((
                    dbfs,
                    DynamicPoint {
                        x_hz: f_in_target_hz,
                        snr_db: m.analysis.snr_db,
                        sndr_db: m.analysis.sndr_db,
                        sfdr_db: m.analysis.sfdr_db,
                        enob: m.analysis.enob,
                    },
                ))
            });
        funnel.resolve(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_runner() -> SweepRunner {
        SweepRunner {
            record_len: 2048,
            ..SweepRunner::nominal()
        }
    }

    #[test]
    fn rate_sweep_is_flat_in_the_paper_band() {
        let r = quick_runner();
        let pts = r.rate_sweep(&[40e6, 80e6, 120e6], 10e6).unwrap();
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(
                p.sndr_db > 62.0,
                "sndr {} at {} MS/s",
                p.sndr_db,
                p.x_hz / 1e6
            );
        }
    }

    #[test]
    fn rate_sweep_collapses_beyond_140ms() {
        let r = quick_runner();
        let pts = r.rate_sweep(&[110e6, 200e6], 10e6).unwrap();
        assert!(pts[1].sndr_db < pts[0].sndr_db - 8.0, "{pts:?}");
    }

    #[test]
    fn frequency_sweep_shows_sfdr_rolloff() {
        let r = quick_runner();
        let pts = r.frequency_sweep(&[10e6, 100e6]).unwrap();
        assert!(pts[1].sfdr_db < pts[0].sfdr_db - 10.0, "{pts:?}");
    }

    #[test]
    fn power_sweep_is_linear() {
        let r = SweepRunner::nominal();
        let pts = r.power_sweep(&[40e6, 80e6]).unwrap();
        let slope1 = pts[0].scaled_w / 40e6;
        let slope2 = pts[1].scaled_w / 80e6;
        assert!((slope1 / slope2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_sweep_tracks_level() {
        let r = quick_runner();
        let pts = r.amplitude_sweep(10e6, &[-20.0, -0.5]).unwrap();
        // SNDR improves roughly dB-for-dB with level in the noise-limited
        // region.
        let delta = pts[1].1.sndr_db - pts[0].1.sndr_db;
        assert!((delta - 19.5).abs() < 3.0, "delta {delta}");
    }

    #[test]
    fn sweep_propagates_build_errors() {
        let r = quick_runner();
        assert!(r.rate_sweep(&[600e6], 10e6).is_err());
    }

    #[test]
    fn cached_policy_reuses_points_bit_exactly() {
        use std::sync::Arc;
        let cache = Arc::new(adc_runtime::ResultCache::in_memory());
        let mut r = quick_runner();
        r.policy = RunPolicy::parallel(2).cached(Arc::clone(&cache));
        let first = r.rate_sweep(&[40e6, 80e6], 10e6).unwrap();
        assert_eq!(cache.len(), 2);
        // Growing the sweep recomputes only the new point; old points
        // come back from the cache bit-identical.
        let grown = r.rate_sweep(&[40e6, 80e6, 120e6], 10e6).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(&grown[..2], &first[..]);
        let uncached = quick_runner()
            .rate_sweep(&[40e6, 80e6, 120e6], 10e6)
            .unwrap();
        assert_eq!(grown, uncached, "cache must be invisible in results");
    }

    #[test]
    fn thread_count_is_invisible_in_sweep_results() {
        let mut serial = quick_runner();
        serial.policy = RunPolicy::serial();
        let mut parallel = quick_runner();
        parallel.policy = RunPolicy::parallel(8);
        let rates = [40e6, 80e6, 110e6];
        assert_eq!(
            serial.rate_sweep(&rates, 10e6).unwrap(),
            parallel.rate_sweep(&rates, 10e6).unwrap()
        );
        let fins = [10e6, 40e6, 100e6];
        assert_eq!(
            serial.frequency_sweep(&fins).unwrap(),
            parallel.frequency_sweep(&fins).unwrap()
        );
    }
}
