//! Band-pass filter models: the paper's measurement-hygiene step.
//!
//! "Both [the input signal and the clock] were filtered using high order
//! passive band-pass filters around the applied frequency to remove
//! harmonics and white noise produced by the sources" (§4).
//!
//! Two layers are provided:
//!
//! * [`BandpassFilter::clean`] — acts on a [`SineSource`] *specification*:
//!   each residual harmonic is attenuated by the filter's skirt at its
//!   frequency. This is how the bench wires a generator to the ADC.
//! * [`Biquad`] — a discrete-time RBJ band-pass section (cascadable) for
//!   filtering already-sampled data, used by tests and available to
//!   downstream users post-processing records.

use crate::signal::{Harmonic, SineSource};

/// An n-th order analog band-pass filter centred on a tone.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandpassFilter {
    /// Centre frequency, hertz.
    pub center_hz: f64,
    /// −3 dB bandwidth, hertz.
    pub bandwidth_hz: f64,
    /// Filter order (poles); the skirt falls at 20·order dB/decade.
    pub order: u32,
}

impl BandpassFilter {
    /// A high-order passive filter like the paper's: 5 % fractional
    /// bandwidth, 7th order.
    pub fn passive_high_order(center_hz: f64) -> Self {
        assert!(center_hz > 0.0);
        Self {
            center_hz,
            bandwidth_hz: center_hz * 0.05,
            order: 7,
        }
    }

    /// Magnitude response at a frequency (linear, ≤ 1).
    pub fn magnitude_at(&self, f_hz: f64) -> f64 {
        if f_hz <= 0.0 {
            return 0.0;
        }
        // Standard band-pass prototype: |H| = 1/sqrt(1 + Q^(2n)·(f/f0 − f0/f)^(2n))
        let q = self.center_hz / self.bandwidth_hz;
        let x = q * (f_hz / self.center_hz - self.center_hz / f_hz);
        1.0 / (1.0 + x.powi(2 * self.order as i32)).sqrt()
    }

    /// Applies the filter to a generator specification: harmonics are
    /// attenuated by the skirt, the fundamental by its (≈1) in-band
    /// response, and the phase wobble passes (it is close-in).
    pub fn clean(&self, source: &SineSource) -> SineSource {
        let fundamental_gain = self.magnitude_at(source.frequency_hz);
        let harmonics = source
            .harmonics
            .iter()
            .map(|h| {
                let f_h = f64::from(h.order) * source.frequency_hz;
                let gain = self.magnitude_at(f_h) / fundamental_gain.max(1e-12);
                Harmonic {
                    order: h.order,
                    relative_amplitude: h.relative_amplitude * gain,
                }
            })
            .filter(|h| h.relative_amplitude > 1e-12)
            .collect();
        SineSource {
            amplitude_v: source.amplitude_v * fundamental_gain,
            harmonics,
            ..source.clone()
        }
    }
}

/// One RBJ-cookbook biquad section for sampled data.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    z1: f64,
    z2: f64,
}

impl Biquad {
    /// Designs a constant-peak-gain band-pass section.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < center_hz < fs_hz/2` and `q > 0`.
    pub fn bandpass(fs_hz: f64, center_hz: f64, q: f64) -> Self {
        assert!(
            center_hz > 0.0 && center_hz < fs_hz / 2.0,
            "centre must be in (0, Nyquist)"
        );
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * std::f64::consts::PI * center_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        Self {
            b0: alpha / a0,
            b1: 0.0,
            b2: -alpha / a0,
            a1: -2.0 * w0.cos() / a0,
            a2: (1.0 - alpha) / a0,
            z1: 0.0,
            z2: 0.0,
        }
    }

    /// Processes one sample (transposed direct form II).
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.z1;
        self.z1 = self.b1 * x - self.a1 * y + self.z2;
        self.z2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Filters a whole record.
    pub fn process_record(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.process(x)).collect()
    }

    /// Resets the state.
    pub fn reset(&mut self) {
        self.z1 = 0.0;
        self.z2 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passband_is_unity_and_skirt_is_steep() {
        let f = BandpassFilter::passive_high_order(10e6);
        assert!((f.magnitude_at(10e6) - 1.0).abs() < 1e-9);
        // Second harmonic (20 MHz) attenuated enormously by a 7th-order
        // 5 %-BW filter.
        let hd2_gain = f.magnitude_at(20e6);
        assert!(hd2_gain < 1e-8, "gain {hd2_gain}");
    }

    #[test]
    fn clean_removes_generator_harmonics() {
        let raw = SineSource::rf_generator(1.0, 10e6);
        let filter = BandpassFilter::passive_high_order(10e6);
        let clean = filter.clean(&raw);
        assert!(clean.harmonics.is_empty(), "{:?}", clean.harmonics);
        assert!((clean.amplitude_v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn magnitude_is_symmetric_in_log_frequency() {
        let f = BandpassFilter::passive_high_order(10e6);
        let above = f.magnitude_at(20e6);
        let below = f.magnitude_at(5e6);
        assert!((above / below - 1.0).abs() < 1e-9);
    }

    #[test]
    fn biquad_passes_center_and_rejects_far_tones() {
        let fs = 110e6;
        let mut bq = Biquad::bandpass(fs, 10e6, 10.0);
        let n = 8192;
        let run_gain = |bq: &mut Biquad, f: f64| {
            bq.reset();
            let xs: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * f / fs * i as f64).sin())
                .collect();
            let ys = bq.process_record(&xs);
            // RMS gain over the settled tail.
            let tail = &ys[n / 2..];
            let rms_out = (tail.iter().map(|y| y * y).sum::<f64>() / tail.len() as f64).sqrt();
            rms_out / (1.0 / 2f64.sqrt())
        };
        let center = run_gain(&mut bq, 10e6);
        let far = run_gain(&mut bq, 40e6);
        assert!((center - 1.0).abs() < 0.05, "centre gain {center}");
        assert!(far < 0.1, "far gain {far}");
    }

    #[test]
    fn biquad_rejects_invalid_design() {
        let r = std::panic::catch_unwind(|| Biquad::bandpass(100e6, 60e6, 5.0));
        assert!(r.is_err());
    }
}
