//! Integration tests of the tracing subsystem: collector lifecycle,
//! Chrome trace-event export round-trip, and the deterministic span-id
//! contract.
//!
//! The collector is a process-global singleton, so every test takes
//! `COLLECTOR_LOCK` before installing one — tests in this binary run in
//! parallel by default and must not share a trace session.

use std::sync::Mutex;

use adc_trace::json;
use adc_trace::{chrome_json, Collector, EventKind, Summary, Trace};

static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COLLECTOR_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A small deterministic workload: two tasks, nested spans, counters.
fn workload() -> Trace {
    let session = Collector::install().expect("no collector active");
    for job in 0..2u64 {
        let _task = adc_trace::task(0xC0FFEE ^ job);
        let _job = adc_trace::span_with("job", job);
        for _ in 0..3 {
            let _stage = adc_trace::span("stage");
            adc_trace::counter("samples", 16);
        }
        adc_trace::instant("checkpoint");
    }
    session.finish()
}

#[test]
fn chrome_export_round_trips_through_the_json_parser() {
    let _guard = lock();
    let trace = workload();
    let doc = json::parse(&chrome_json(&trace)).expect("exporter emits valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.len(), "one JSON record per event");

    // Every record carries the Chrome required fields, and B/E phases
    // balance exactly (2 jobs + 6 stages = 8 spans).
    let mut begins = 0i64;
    let mut ends = 0i64;
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev}");
        }
        match ev.get("ph").and_then(|v| v.as_str()).expect("phase") {
            "B" => begins += 1,
            "E" => ends += 1,
            "i" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(begins, 8);
    assert_eq!(ends, 8);

    // Span ids survive the export: each B record names the same span in
    // `args.span` that the in-memory event carries.
    let in_memory: Vec<String> = trace
        .merged()
        .iter()
        .filter(|(_, e)| e.kind == EventKind::Begin)
        .map(|(_, e)| format!("{:016x}", e.span_id))
        .collect();
    let exported: Vec<String> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("B"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("span"))
                .and_then(|s| s.as_str())
                .expect("B event has args.span")
                .to_string()
        })
        .collect();
    assert_eq!(in_memory, exported);
}

#[test]
fn span_ids_are_identical_across_reruns_of_the_same_workload() {
    let _guard = lock();
    let ids = |trace: &Trace| -> Vec<(&'static str, u64)> {
        trace
            .merged()
            .iter()
            .filter(|(_, e)| e.kind == EventKind::Begin)
            .map(|(_, e)| (e.name, e.span_id))
            .collect()
    };
    let first = workload();
    let second = workload();
    let first_ids = ids(&first);
    assert_eq!(first_ids, ids(&second), "span identity must be replayable");
    // And ids are distinct within a run (SplitMix64 mixing, per-task seeds).
    let mut sorted: Vec<u64> = first_ids.iter().map(|(_, id)| *id).collect();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), first_ids.len());
}

#[test]
fn summary_accounts_every_span_call() {
    let _guard = lock();
    let summary = Summary::compute(&workload());
    assert_eq!(summary.span("job").expect("job stats").calls, 2);
    let stage = summary.span("stage").expect("stage stats");
    assert_eq!(stage.calls, 6);
    assert!(stage.total_ns >= stage.self_ns);
    let samples = summary.counter("samples").expect("samples counter");
    assert_eq!(samples.sum, 6 * 16);
}

#[test]
fn disabled_collector_records_nothing() {
    let _guard = lock();
    // No collector installed: the API is inert...
    assert!(!adc_trace::enabled());
    {
        let _task = adc_trace::task(1);
        let _span = adc_trace::span("ghost");
        adc_trace::counter("ghost", 1);
        adc_trace::instant("ghost");
    }
    // ...and nothing recorded while disabled leaks into a later session.
    let session = Collector::install().expect("no collector active");
    let trace = session.finish();
    assert!(trace.is_empty(), "found events: {:?}", trace.merged());
}

#[test]
fn second_collector_is_refused_while_one_is_active() {
    let _guard = lock();
    let session = Collector::install().expect("no collector active");
    assert!(Collector::install().is_none(), "double install must refuse");
    drop(session);
    // Dropping uninstalls: a new session may start.
    let again = Collector::install().expect("slot freed on drop");
    drop(again);
}
