//! Chrome trace-event JSON exporter.
//!
//! Emits the "JSON Object Format" understood by `chrome://tracing`
//! and Perfetto: a top-level object with a `traceEvents` array of
//! `B`/`E`/`i`/`C` phase records. Timestamps are microseconds
//! (fractional, from our nanosecond clock); `pid` is fixed at 1 and
//! `tid` is the collector lane index, so one lane renders as one
//! timeline row.

use std::fmt::Write as _;

use crate::collector::Trace;
use crate::event::EventKind;
use crate::json::escape;

/// Renders a drained [`Trace`] as a Chrome trace-event JSON document.
pub fn chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (lane, event) in trace.merged() {
        if !first {
            out.push(',');
        }
        first = false;
        let ts_us = event.ts_ns as f64 / 1000.0;
        let ph = match event.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        };
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"adc\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{lane}",
            escape(event.name)
        );
        match event.kind {
            EventKind::Begin => {
                let _ = write!(
                    out,
                    ",\"args\":{{\"span\":\"{:016x}\",\"value\":{}}}",
                    event.span_id, event.value
                );
            }
            EventKind::End => {
                let _ = write!(out, ",\"args\":{{\"span\":\"{:016x}\"}}", event.span_id);
            }
            EventKind::Instant => {
                out.push_str(",\"s\":\"t\"");
            }
            EventKind::Counter => {
                let _ = write!(
                    out,
                    ",\"args\":{{\"{}\":{}}}",
                    escape(event.name),
                    event.value
                );
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Trace;
    use crate::event::Event;
    use crate::json;

    #[test]
    fn emitted_document_parses_and_has_expected_shape() {
        let trace = Trace {
            lanes: vec![vec![
                Event {
                    ts_ns: 1_500,
                    kind: EventKind::Begin,
                    name: "job",
                    span_id: 0xabc,
                    value: 7,
                },
                Event {
                    ts_ns: 9_000,
                    kind: EventKind::End,
                    name: "job",
                    span_id: 0xabc,
                    value: 0,
                },
                Event {
                    ts_ns: 9_500,
                    kind: EventKind::Counter,
                    name: "samples",
                    span_id: 0,
                    value: 4096,
                },
            ]],
        };
        let doc = chrome_json(&trace);
        let parsed = json::parse(&doc).expect("chrome output must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("B"));
        assert_eq!(events[1].get("ph").and_then(|v| v.as_str()), Some("E"));
        assert_eq!(events[2].get("ph").and_then(|v| v.as_str()), Some("C"));
        let ts = events[0].get("ts").and_then(|v| v.as_f64()).unwrap();
        assert!((ts - 1.5).abs() < 1e-9);
    }
}
