//! # adc-trace — deterministic tracing & profiling
//!
//! A std-only structured tracing subsystem for the ADC workspace:
//! span guards with static names, per-thread event lanes drained by a
//! process-global collector, and two exporters — a Chrome trace-event
//! JSON document (open in `chrome://tracing` or Perfetto) and a human
//! per-span self/total-time summary table.
//!
//! ## Determinism contract
//!
//! The workspace's simulation crates promise results that are a pure
//! function of `(config, seed)`. Instrumentation must not weaken
//! that, so:
//!
//! - **Span IDs are deterministic**: derived with SplitMix64 from the
//!   current *task seed* (set by the runtime from the job's
//!   `derive_seed(campaign_seed, job_id)` value via [`task`]) and a
//!   per-task sequence number. Two runs of the same campaign produce
//!   the same span ids.
//! - **No thread identity**: lanes are numbered by registration
//!   order, not `std::thread::ThreadId`.
//! - **Wall-clock is confined**: `Instant` is read only inside
//!   [`collector`], behind an `adc-lint` pragma; timestamps flow into
//!   trace output, never into simulation results.
//! - **Zero-cost when disabled**: every recording call starts with a
//!   single relaxed atomic load of the collector generation; with no
//!   collector installed nothing else runs and guards are inert.
//!
//! `tests/determinism.rs` holds bit-identity of campaign results with
//! tracing enabled and disabled.
//!
//! ## Quick start
//!
//! ```
//! let session = adc_trace::Collector::install().expect("no other collector");
//! {
//!     let _task = adc_trace::task(0xDEADBEEF); // e.g. the job seed
//!     let _span = adc_trace::span("digitize");
//!     adc_trace::counter("samples", 4096);
//! }
//! let trace = session.finish();
//! let json = adc_trace::chrome_json(&trace);         // for Perfetto
//! let table = adc_trace::Summary::compute(&trace);   // for humans
//! assert!(json.contains("\"digitize\""));
//! assert_eq!(table.span("digitize").unwrap().calls, 1);
//! ```

pub mod chrome;
pub mod collector;
pub mod event;
pub mod json;
pub mod summary;

pub use chrome::chrome_json;
pub use collector::{enabled, ActiveTrace, Collector, Trace};
pub use event::{Event, EventKind, SpanGuard, TaskGuard};
pub use summary::{CounterStats, SpanStats, Summary};

/// Opens a span; the matching End event is recorded when the returned
/// guard drops. Inert (records nothing, allocates nothing) when
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, 0)
}

/// Like [`span`], with a caller-supplied argument (e.g. a job id)
/// attached to the Begin event and exported into Chrome `args`.
#[inline]
pub fn span_with(name: &'static str, value: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            span_id: None,
        };
    }
    let id = event::next_span_id();
    collector::record(EventKind::Begin, name, id, value);
    SpanGuard {
        name,
        span_id: Some(id),
    }
}

/// Records a point-in-time marker (e.g. a work-steal).
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        collector::record(EventKind::Instant, name, 0, 0);
    }
}

/// Records a named counter sample (e.g. samples processed, queue wait
/// in microseconds, in-flight request count).
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if enabled() {
        collector::record(EventKind::Counter, name, 0, value);
    }
}

/// Enters a task scope: span ids recorded on this thread derive from
/// `seed` until the guard drops (scopes nest and restore). The
/// runtime calls this with the job's derived seed so span identity is
/// reproducible run-to-run.
#[inline]
pub fn task(seed: u64) -> TaskGuard {
    TaskGuard::enter(seed)
}
