//! The global collector: per-thread lane buffers, a generation-counted
//! enable flag, and the drain path.
//!
//! This is the **only** module in the workspace's determinism scope
//! that touches wall-clock time, and it does so exactly once per
//! install (the epoch) plus once per recorded event (elapsed-ns). Both
//! sites are pragma-annotated for `adc-lint`: timestamps flow into the
//! trace output only, never into simulation results, so bit-identity
//! of campaign results holds with tracing on or off.
//!
//! Threads are identified by *lane index* — the order in which each
//! thread first recorded an event into the active collector — not by
//! `std::thread::ThreadId`, keeping OS thread identity out of the
//! deterministic crates entirely.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Generation of the active collector; `0` means tracing is disabled.
/// This single relaxed load is the entire disabled-path cost.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Monotonic generation source (never reuses a generation, so a stale
/// thread-local lane can never be confused with a newer collector).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// The active collector's shared state, if any.
static ACTIVE: Mutex<Option<Arc<Shared>>> = Mutex::new(None);

/// One thread's append-only event buffer. The mutex is uncontended in
/// steady state (only the owning thread pushes; the drain at
/// [`ActiveTrace::finish`] is the sole other locker).
#[derive(Debug, Default)]
struct Lane {
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

/// A thread's cached attachment to the active collector.
#[derive(Debug)]
struct LaneHandle {
    generation: u64,
    shared: Arc<Shared>,
    lane: Arc<Lane>,
}

thread_local! {
    /// Cached attachment so steady-state recording never touches the
    /// global registry.
    static LOCAL_LANE: RefCell<Option<LaneHandle>> = const { RefCell::new(None) };
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `true` when a collector is installed and recording.
#[inline]
pub fn enabled() -> bool {
    GENERATION.load(Ordering::Relaxed) != 0
}

/// Records one event into the current thread's lane. No-op (one
/// relaxed atomic load) when tracing is disabled.
pub(crate) fn record(kind: EventKind, name: &'static str, span_id: u64, value: u64) {
    let generation = GENERATION.load(Ordering::Relaxed);
    if generation == 0 {
        return;
    }
    LOCAL_LANE.with(|slot| {
        // A re-entrant borrow is impossible (no callbacks below), but
        // stay total rather than risk a panic inside instrumentation.
        let Ok(mut slot) = slot.try_borrow_mut() else {
            return;
        };
        let stale = match &*slot {
            Some(handle) => handle.generation != generation,
            None => true,
        };
        if stale {
            let shared = {
                let active = lock_ignore_poison(&ACTIVE);
                match &*active {
                    Some(shared) => Arc::clone(shared),
                    // Collector uninstalled between the generation
                    // load and here; drop the event.
                    None => return,
                }
            };
            let lane = Arc::new(Lane::default());
            lock_ignore_poison(&shared.lanes).push(Arc::clone(&lane));
            *slot = Some(LaneHandle {
                generation,
                shared,
                lane,
            });
        }
        let Some(handle) = slot.as_ref() else {
            return;
        };
        let ts_ns = u64::try_from(handle.shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        lock_ignore_poison(&handle.lane.events).push(Event {
            ts_ns,
            kind,
            name,
            span_id,
            value,
        });
    });
}

/// Entry point for enabling tracing; see [`Collector::install`].
#[derive(Debug)]
pub struct Collector;

impl Collector {
    /// Installs a process-global collector and starts recording.
    ///
    /// Returns `None` if another collector is already active (tracing
    /// is a process-wide singleton; nested installs would interleave
    /// two consumers' events).
    pub fn install() -> Option<ActiveTrace> {
        let mut active = lock_ignore_poison(&ACTIVE);
        if active.is_some() {
            return None;
        }
        let shared = Arc::new(Shared {
            // adc-lint: allow(no-wallclock) reason="trace epoch: timestamps feed the trace output only, never simulation results"
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
        });
        *active = Some(Arc::clone(&shared));
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        GENERATION.store(generation, Ordering::Release);
        Some(ActiveTrace { armed: true })
    }
}

/// Guard for an installed collector. Call [`ActiveTrace::finish`] to
/// stop recording and take the trace; dropping the guard without
/// finishing uninstalls the collector and discards the events.
#[derive(Debug)]
pub struct ActiveTrace {
    armed: bool,
}

impl ActiveTrace {
    /// Stops recording and returns everything captured so far.
    pub fn finish(mut self) -> Trace {
        self.armed = false;
        uninstall()
    }
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        if self.armed {
            let _ = uninstall();
        }
    }
}

fn uninstall() -> Trace {
    GENERATION.store(0, Ordering::Release);
    let shared = lock_ignore_poison(&ACTIVE).take();
    let Some(shared) = shared else {
        return Trace::default();
    };
    let lanes = std::mem::take(&mut *lock_ignore_poison(&shared.lanes));
    let lanes = lanes
        .iter()
        .map(|lane| std::mem::take(&mut *lock_ignore_poison(&lane.events)))
        .collect();
    Trace { lanes }
}

/// A drained trace: one event buffer per lane (thread), each in
/// record order. Lane indices are registration order, stable for the
/// lifetime of one collector install.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Per-lane event buffers.
    pub lanes: Vec<Vec<Event>>,
}

impl Trace {
    /// Total number of events across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Vec::is_empty)
    }

    /// All events as `(lane, event)`, sorted by timestamp (ties keep
    /// lane order, so the sort is total without comparing floats).
    pub fn merged(&self) -> Vec<(u32, Event)> {
        let mut out: Vec<(u32, Event)> = Vec::with_capacity(self.len());
        for (lane, events) in self.lanes.iter().enumerate() {
            let lane = u32::try_from(lane).unwrap_or(u32::MAX);
            out.extend(events.iter().map(|e| (lane, *e)));
        }
        out.sort_by_key(|(lane, e)| (e.ts_ns, *lane));
        out
    }
}
