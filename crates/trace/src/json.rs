//! A minimal JSON value model, parser, and emitter.
//!
//! The workspace is std-only (no `serde_json`), yet two features need
//! to *read* JSON: the Chrome-trace round-trip test (parse what we
//! emit) and the `bench_compare` perf gate (parse `BENCH_*.json`).
//! This module covers exactly the JSON subset those producers emit:
//! objects, arrays, strings with `\uXXXX`/standard escapes, f64
//! numbers, booleans, and null.
//!
//! Objects preserve insertion order via `Vec<(String, Json)>` — no
//! hash maps, so emission is deterministic and the determinism lint's
//! `no-hash-collections` rule holds here too.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source/insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // `{}` on f64 round-trips through parse exactly.
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; emit null like browsers do.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our
                            // producers; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "x\ny"}, "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"a":[1,2.5,-300],"b":{"s":"x\ny \"q\""},"t":true,"n":null}"#;
        let v = parse(doc).unwrap();
        let emitted = v.to_string();
        assert_eq!(parse(&emitted).unwrap(), v);
        // Emission is canonical: a second round trip is byte-stable.
        assert_eq!(parse(&emitted).unwrap().to_string(), emitted);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
