//! Human-readable profile summary.
//!
//! Replays each lane's Begin/End stream against a span stack to
//! compute, per span name: call count, total (inclusive) time, and
//! self time (total minus time attributed to child spans). Counter
//! events aggregate to count/sum/last. If a `samples` counter is
//! present, an overall samples/sec line is derived from the trace's
//! wall span.

use std::fmt::Write as _;

use crate::collector::Trace;
use crate::event::{Event, EventKind};

/// Aggregated statistics for one span name.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpanStats {
    /// Completed Begin/End pairs.
    pub calls: u64,
    /// Inclusive time across all calls, nanoseconds.
    pub total_ns: u64,
    /// Exclusive (self) time across all calls, nanoseconds.
    pub self_ns: u64,
}

/// Aggregated statistics for one counter name.
#[derive(Debug, Default, Clone, Copy)]
pub struct CounterStats {
    /// Number of samples recorded.
    pub samples: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Most recent sample value.
    pub last: u64,
}

/// The aggregate profile computed from a [`Trace`].
#[derive(Debug, Default)]
pub struct Summary {
    /// Per-span-name stats, sorted by descending total time.
    pub spans: Vec<(&'static str, SpanStats)>,
    /// Per-counter-name stats, sorted by name.
    pub counters: Vec<(&'static str, CounterStats)>,
    /// Per-instant-name occurrence counts, sorted by name.
    pub instants: Vec<(&'static str, u64)>,
    /// Wall span of the trace (first to last event timestamp), ns.
    pub wall_ns: u64,
}

impl Summary {
    /// Aggregates a drained trace.
    pub fn compute(trace: &Trace) -> Summary {
        let mut spans: Vec<(&'static str, SpanStats)> = Vec::new();
        let mut counters: Vec<(&'static str, CounterStats)> = Vec::new();
        let mut instants: Vec<(&'static str, u64)> = Vec::new();
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;

        for lane in &trace.lanes {
            // Stack of open spans: (name, span_id, begin_ts, child_ns).
            let mut stack: Vec<(&'static str, u64, u64, u64)> = Vec::new();
            for event in lane {
                min_ts = min_ts.min(event.ts_ns);
                max_ts = max_ts.max(event.ts_ns);
                match event.kind {
                    EventKind::Begin => {
                        stack.push((event.name, event.span_id, event.ts_ns, 0));
                    }
                    EventKind::End => close_span(&mut spans, &mut stack, event),
                    EventKind::Counter => {
                        let entry = sorted_entry(&mut counters, event.name);
                        entry.samples += 1;
                        entry.sum = entry.sum.saturating_add(event.value);
                        entry.last = event.value;
                    }
                    EventKind::Instant => {
                        *sorted_entry(&mut instants, event.name) += 1;
                    }
                }
            }
        }

        spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        Summary {
            spans,
            counters,
            instants,
            wall_ns: max_ts.saturating_sub(if min_ts == u64::MAX { 0 } else { min_ts }),
        }
    }

    /// Renders the summary as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>12} {:>12} {:>10}",
            "span", "calls", "total_ms", "self_ms", "mean_us"
        );
        for (name, s) in &self.spans {
            let mean_us = if s.calls == 0 {
                0.0
            } else {
                s.total_ns as f64 / s.calls as f64 / 1000.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>12.3} {:>12.3} {:>10.2}",
                name,
                s.calls,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6,
                mean_us
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>12} {:>12}",
                "counter", "samples", "sum", "last"
            );
            for (name, c) in &self.counters {
                let _ = writeln!(
                    out,
                    "{:<24} {:>9} {:>12} {:>12}",
                    name, c.samples, c.sum, c.last
                );
            }
        }
        if !self.instants.is_empty() {
            let _ = writeln!(out, "{:<24} {:>9}", "instant", "count");
            for (name, n) in &self.instants {
                let _ = writeln!(out, "{name:<24} {n:>9}");
            }
        }
        if let Some(rate) = self.samples_per_sec() {
            let _ = writeln!(
                out,
                "wall {:.3} ms, {:.0} samples/sec",
                self.wall_ns as f64 / 1e6,
                rate
            );
        } else {
            let _ = writeln!(out, "wall {:.3} ms", self.wall_ns as f64 / 1e6);
        }
        out
    }

    /// Overall samples/sec from the `samples` counter, if present.
    pub fn samples_per_sec(&self) -> Option<f64> {
        let samples = self
            .counters
            .iter()
            .find(|(name, _)| *name == "samples")
            .map(|(_, c)| c.sum)?;
        if self.wall_ns == 0 {
            return None;
        }
        Some(samples as f64 / (self.wall_ns as f64 / 1e9))
    }

    /// Stats for one span name, if it appeared in the trace.
    pub fn span(&self, name: &str) -> Option<SpanStats> {
        self.spans.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
    }

    /// Stats for one counter name, if it appeared in the trace.
    pub fn counter(&self, name: &str) -> Option<CounterStats> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
    }
}

/// Pops the matching open span and folds its duration into the
/// per-name stats and the parent's child-time. Unbalanced End events
/// (no matching Begin on this lane) are dropped.
fn close_span(
    spans: &mut Vec<(&'static str, SpanStats)>,
    stack: &mut Vec<(&'static str, u64, u64, u64)>,
    event: &Event,
) {
    let Some(open) = stack.iter().rposition(|(_, id, _, _)| *id == event.span_id) else {
        return;
    };
    // Anything opened above the matching Begin never saw its End on
    // this lane (e.g. the collector drained mid-span); discard those
    // frames rather than mis-attribute time.
    stack.truncate(open + 1);
    let Some((name, _, begin_ts, child_ns)) = stack.pop() else {
        return;
    };
    let dur = event.ts_ns.saturating_sub(begin_ts);
    if let Some((_, _, _, parent_child)) = stack.last_mut() {
        *parent_child = parent_child.saturating_add(dur);
    }
    let entry = sorted_entry(spans, name);
    entry.calls += 1;
    entry.total_ns = entry.total_ns.saturating_add(dur);
    entry.self_ns = entry.self_ns.saturating_add(dur.saturating_sub(child_ns));
}

/// Finds or inserts `name` in a name-sorted vec and returns its value.
fn sorted_entry<'v, T: Default>(
    entries: &'v mut Vec<(&'static str, T)>,
    name: &'static str,
) -> &'v mut T {
    match entries.binary_search_by(|(n, _)| n.cmp(&name)) {
        Ok(i) => &mut entries[i].1,
        Err(i) => {
            entries.insert(i, (name, T::default()));
            &mut entries[i].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, kind: EventKind, name: &'static str, span_id: u64, value: u64) -> Event {
        Event {
            ts_ns,
            kind,
            name,
            span_id,
            value,
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let trace = Trace {
            lanes: vec![vec![
                ev(0, EventKind::Begin, "outer", 1, 0),
                ev(10, EventKind::Begin, "inner", 2, 0),
                ev(40, EventKind::End, "inner", 2, 0),
                ev(100, EventKind::End, "outer", 1, 0),
                ev(100, EventKind::Counter, "samples", 0, 500),
            ]],
        };
        let s = Summary::compute(&trace);
        let outer = s.span("outer").unwrap();
        let inner = s.span("inner").unwrap();
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 70);
        assert_eq!(inner.total_ns, 30);
        assert_eq!(inner.self_ns, 30);
        assert_eq!(s.wall_ns, 100);
        assert!(s.samples_per_sec().unwrap() > 0.0);
        // Rendering never panics and mentions every span.
        let text = s.render();
        assert!(text.contains("outer") && text.contains("inner"));
    }

    #[test]
    fn unbalanced_ends_are_dropped() {
        let trace = Trace {
            lanes: vec![vec![
                ev(5, EventKind::End, "ghost", 9, 0),
                ev(10, EventKind::Begin, "a", 1, 0),
                ev(20, EventKind::End, "a", 1, 0),
            ]],
        };
        let s = Summary::compute(&trace);
        assert!(s.span("ghost").is_none());
        assert_eq!(s.span("a").unwrap().calls, 1);
    }
}
