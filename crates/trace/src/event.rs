//! Trace events, deterministic span identity, and the guard types.
//!
//! Span IDs must be reproducible run-to-run so that traces from two
//! executions of the same campaign can be diffed. They are therefore
//! derived from the *job seed* (already a pure SplitMix64 function of
//! `(campaign_seed, job_id)`) plus a per-task sequence number — never
//! from wall-clock time, thread ids, or allocation addresses.

use std::cell::Cell;

/// One step of the SplitMix64 output function (mirrors
/// `adc_runtime::seed::split_mix64`; duplicated so this crate stays
/// dependency-free and can sit below the runtime in the crate graph).
pub(crate) fn split_mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed used for spans opened outside any [`crate::task`] scope
/// (e.g. the top-level campaign span in a bench binary).
const ORPHAN_TASK_SEED: u64 = 0x5EED_0F0F_ADC0;

thread_local! {
    /// Seed of the task (job/request) currently running on this thread.
    static TASK_SEED: Cell<u64> = const { Cell::new(ORPHAN_TASK_SEED) };
    /// Per-task span sequence number; reset when a task scope opens.
    static TASK_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Derives the next span id for the current thread's task scope.
pub(crate) fn next_span_id() -> u64 {
    let seed = TASK_SEED.with(Cell::get);
    let seq = TASK_SEQ.with(|s| {
        let v = s.get();
        s.set(v.wrapping_add(1));
        v
    });
    split_mix64(seed ^ split_mix64(seq))
}

/// What a single trace [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in Chrome trace terms).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A named counter sample (`ph: "C"`).
    Counter,
}

/// A single recorded trace event.
///
/// Names are `&'static str` by design: recording an event is a few
/// atomic loads, a timestamp, and a `Vec::push` — no formatting, no
/// allocation per event beyond buffer growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the collector's epoch.
    pub ts_ns: u64,
    /// Begin/End/Instant/Counter.
    pub kind: EventKind,
    /// Static event name (span or counter name).
    pub name: &'static str,
    /// Deterministic span identity for Begin/End pairs; 0 otherwise.
    pub span_id: u64,
    /// Counter value for [`EventKind::Counter`]; caller-supplied
    /// argument (e.g. a job id) for [`EventKind::Begin`]; 0 otherwise.
    pub value: u64,
}

/// RAII guard returned by [`crate::span`]; records the matching
/// [`EventKind::End`] event when dropped.
///
/// When tracing is disabled the guard is inert (no id, no events).
#[derive(Debug)]
pub struct SpanGuard {
    pub(crate) name: &'static str,
    /// `None` when tracing was disabled at open time.
    pub(crate) span_id: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.span_id {
            crate::collector::record(EventKind::End, self.name, id, 0);
        }
    }
}

/// RAII guard returned by [`crate::task`]; scopes the deterministic
/// span-id stream to a job/request seed and restores the previous
/// scope on drop (task scopes nest).
#[derive(Debug)]
pub struct TaskGuard {
    prev_seed: u64,
    prev_seq: u64,
}

impl TaskGuard {
    pub(crate) fn enter(seed: u64) -> Self {
        let prev_seed = TASK_SEED.with(|s| s.replace(seed));
        let prev_seq = TASK_SEQ.with(|s| s.replace(0));
        TaskGuard {
            prev_seed,
            prev_seq,
        }
    }
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        TASK_SEED.with(|s| s.set(self.prev_seed));
        TASK_SEQ.with(|s| s.set(self.prev_seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_deterministic_per_task_scope() {
        let a = {
            let _t = TaskGuard::enter(42);
            [next_span_id(), next_span_id(), next_span_id()]
        };
        let b = {
            let _t = TaskGuard::enter(42);
            [next_span_id(), next_span_id(), next_span_id()]
        };
        assert_eq!(a, b);
        let c = {
            let _t = TaskGuard::enter(43);
            next_span_id()
        };
        assert_ne!(a[0], c);
    }

    #[test]
    fn task_scopes_nest_and_restore() {
        let _outer = TaskGuard::enter(1);
        let first = next_span_id();
        {
            let _inner = TaskGuard::enter(2);
            let _ = next_span_id();
        }
        // After the inner scope closes, the outer sequence resumes.
        let _outer2 = TaskGuard::enter(1);
        let again = next_span_id();
        drop(_outer2);
        assert_eq!(first, again);
    }
}
