//! Small-signal AC analysis of the two-stage Miller opamp.
//!
//! The behavioral [`crate::opamp::OpAmp`] settles with a single closed-loop
//! pole; this module carries the designer-level two-pole model that
//! justifies it: pole locations from the Miller compensation, unity-gain
//! bandwidth, phase margin, and the closed-loop step response including
//! the ringing that appears when the non-dominant pole comes too close.
//! The `adc-bench` `design_margins` experiment uses it to show the
//! nominal design keeps adequate phase margin across the paper's whole
//! 20–140 MS/s operating band (because gm and the load both track).

/// Two-stage Miller amplifier small-signal parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TwoPoleAmp {
    /// First-stage transconductance, siemens.
    pub gm1_s: f64,
    /// Second-stage transconductance, siemens.
    pub gm2_s: f64,
    /// Miller compensation capacitor, farads.
    pub cc_f: f64,
    /// Load capacitance at the output, farads.
    pub cl_f: f64,
    /// DC gain, V/V.
    pub dc_gain: f64,
}

impl TwoPoleAmp {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless every parameter is positive.
    pub fn new(gm1_s: f64, gm2_s: f64, cc_f: f64, cl_f: f64, dc_gain: f64) -> Self {
        assert!(
            gm1_s > 0.0 && gm2_s > 0.0 && cc_f > 0.0 && cl_f > 0.0 && dc_gain > 1.0,
            "parameters must be positive (gain > 1)"
        );
        Self {
            gm1_s,
            gm2_s,
            cc_f,
            cl_f,
            dc_gain,
        }
    }

    /// Unity-gain (gain-bandwidth) frequency, hertz: `gm1/(2π·Cc)`.
    pub fn unity_gain_hz(&self) -> f64 {
        self.gm1_s / (2.0 * std::f64::consts::PI * self.cc_f)
    }

    /// Dominant pole, hertz (from GBW and DC gain).
    pub fn dominant_pole_hz(&self) -> f64 {
        self.unity_gain_hz() / self.dc_gain
    }

    /// Non-dominant (output) pole, hertz: `gm2/(2π·CL)`.
    pub fn nondominant_pole_hz(&self) -> f64 {
        self.gm2_s / (2.0 * std::f64::consts::PI * self.cl_f)
    }

    /// Loop phase margin in degrees at feedback factor `beta`
    /// (two-pole approximation, right-half-plane zero neglected —
    /// nulled by the usual series resistor).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `(0, 1]`.
    pub fn phase_margin_deg(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        // Loop crossover: β·GBW for a dominant-pole system.
        let f_cross = beta * self.unity_gain_hz();
        let phase_from_p2 = (f_cross / self.nondominant_pole_hz()).atan();
        90.0 - phase_from_p2.to_degrees()
    }

    /// Closed-loop damping factor ζ at feedback `beta` (two-pole
    /// second-order approximation): ζ = 0.5·√(p2/(β·GBW)).
    pub fn damping(&self, beta: f64) -> f64 {
        0.5 * (self.nondominant_pole_hz() / (beta * self.unity_gain_hz())).sqrt()
    }

    /// Closed-loop small-signal step response at time `t_s` (normalized
    /// to a unity final value), from the standard second-order form.
    pub fn step_response(&self, beta: f64, t_s: f64) -> f64 {
        if t_s <= 0.0 {
            return 0.0;
        }
        let wn = 2.0
            * std::f64::consts::PI
            * (beta * self.unity_gain_hz() * self.nondominant_pole_hz()).sqrt();
        let zeta = self.damping(beta);
        if zeta < 1.0 {
            let wd = wn * (1.0 - zeta * zeta).sqrt();
            let phi = (zeta / (1.0 - zeta * zeta).sqrt()).atan();
            1.0 - ((-zeta * wn * t_s).exp() / (1.0 - zeta * zeta).sqrt()) * (wd * t_s + phi).cos()
        } else {
            // Overdamped: two real poles.
            let s1 = -wn * (zeta - (zeta * zeta - 1.0).max(0.0).sqrt());
            let s2 = -wn * (zeta + (zeta * zeta - 1.0).max(0.0).sqrt());
            if (s1 - s2).abs() < 1e-6 * wn {
                // Critically damped.
                1.0 - (1.0 - s1 * t_s) * (s1 * t_s).exp()
            } else {
                1.0 + (s2 * (s1 * t_s).exp() - s1 * (s2 * t_s).exp()) / (s1 - s2)
            }
        }
    }

    /// Peak overshoot of the closed-loop step response, relative
    /// (0 = none).
    pub fn overshoot(&self, beta: f64) -> f64 {
        let zeta = self.damping(beta);
        if zeta >= 1.0 {
            0.0
        } else {
            (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stage-1-like design point: gm1 = 40 mS, gm2 = 80 mS, Cc = 3 pF,
    /// CL = 4 pF, 80 dB.
    fn stage1_amp() -> TwoPoleAmp {
        TwoPoleAmp::new(40e-3, 80e-3, 3e-12, 4e-12, 10_000.0)
    }

    #[test]
    fn pole_ordering_is_sane() {
        let a = stage1_amp();
        assert!(a.dominant_pole_hz() < a.unity_gain_hz());
        assert!(a.nondominant_pole_hz() > a.unity_gain_hz());
    }

    #[test]
    fn unity_gain_matches_formula() {
        let a = stage1_amp();
        let expected = 40e-3 / (2.0 * std::f64::consts::PI * 3e-12);
        assert!((a.unity_gain_hz() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn phase_margin_improves_with_lower_beta() {
        let a = stage1_amp();
        assert!(a.phase_margin_deg(0.45) > a.phase_margin_deg(1.0));
        // The design point has healthy margin.
        assert!(
            a.phase_margin_deg(0.45) > 60.0,
            "{}",
            a.phase_margin_deg(0.45)
        );
    }

    #[test]
    fn low_nondominant_pole_rings() {
        // Strangle the output stage: gm2 down 20x.
        let weak = TwoPoleAmp::new(40e-3, 4e-3, 3e-12, 4e-12, 10_000.0);
        assert!(weak.phase_margin_deg(0.45) < 45.0);
        assert!(weak.overshoot(0.45) > 0.05);
        // The healthy design barely overshoots.
        assert!(stage1_amp().overshoot(0.45) < 0.01);
    }

    #[test]
    fn step_response_settles_to_one() {
        let a = stage1_amp();
        let tau = 1.0 / (2.0 * std::f64::consts::PI * 0.45 * a.unity_gain_hz());
        let v = a.step_response(0.45, 30.0 * tau);
        assert!((v - 1.0).abs() < 1e-4, "v {v}");
        assert_eq!(a.step_response(0.45, 0.0), 0.0);
    }

    #[test]
    fn step_response_is_monotone_when_overdamped() {
        let heavy = TwoPoleAmp::new(5e-3, 200e-3, 6e-12, 1e-12, 10_000.0);
        assert!(heavy.damping(0.45) > 1.0);
        let tau = 1.0 / (2.0 * std::f64::consts::PI * 0.45 * heavy.unity_gain_hz());
        let mut last = 0.0;
        for k in 1..200 {
            let v = heavy.step_response(0.45, k as f64 * tau / 10.0);
            assert!(v >= last - 1e-12, "non-monotone at step {k}");
            last = v;
        }
    }

    #[test]
    fn margins_are_rate_independent_with_tracking_bias() {
        // The paper's property at the AC level: if gm1, gm2 both scale
        // with f_CR (SC bias) while Cc, CL are fixed, the *crossover*
        // moves but the p2/crossover ratio — and hence the phase margin —
        // is constant.
        let at_rate = |scale: f64| {
            TwoPoleAmp::new(40e-3 * scale, 80e-3 * scale, 3e-12, 4e-12, 10_000.0)
                .phase_margin_deg(0.45)
        };
        let pm_20 = at_rate(20.0 / 110.0);
        let pm_140 = at_rate(140.0 / 110.0);
        assert!((pm_20 - pm_140).abs() < 1e-9, "{pm_20} vs {pm_140}");
    }
}
