//! The per-sample noise engine: one SplitMix64 stream per die with a
//! polynomial Box–Muller transform, built to be drawn in lane stripes.
//!
//! [`NoiseSource`](crate::noise::NoiseSource) (StdRng + libm Box–Muller)
//! is the right tool for *fabrication*: it runs once per die, and its
//! statistical pedigree is what makes Monte-Carlo process spread
//! trustworthy. It is the wrong tool for the conversion hot path, where
//! the nominal converter consumes ~12 Gaussian draws per sample and each
//! libm `ln`/`sin`/`cos` call is a long serial dependency chain that
//! out-of-order hardware cannot overlap across independent lanes — the
//! draws alone were ~a third of scalar conversion time and pinned the
//! lane-parallel kernel's speedup at ~1×.
//!
//! [`SampleNoise`] replaces the hot-path draws with:
//!
//! * a **SplitMix64** state per die — one add + two xor-multiply mixes
//!   per u64, trivially inlined, with the whole generator state a single
//!   `u64` that a lane batch can gather into a flat array and advance in
//!   a vectorizable stripe;
//! * a **single-sided Box–Muller** transform, `z = √(−2 ln u₁) ·
//!   cos(2π u₂)`, evaluated with branch-free polynomial `ln`/`cos`
//!   kernels (no libm calls, nothing opaque to the autovectorizer). The
//!   sine half of the classical pair is simply not formed: each draw
//!   consumes a fresh uniform pair, which keeps the stream's
//!   draws-per-sample count data-independent and the lane stripe
//!   uniform.
//!
//! The polynomial kernels are accurate to ≲1e-9 relative (`ln`) and
//! ≲1e-13 absolute (`cos`) — error some 60 dB below the −110 dBFS
//! simulation noise floors they feed — and the moments of the resulting
//! deviates match a standard normal to Monte-Carlo precision (see the
//! tests). Realizations differ from the old libm path, which is a
//! [`NUMERICS_EPOCH`](../../adc_runtime/cache/constant.NUMERICS_EPOCH.html)
//! bump, not a behavioural change; dies themselves are fabricated from
//! the untouched [`NoiseSource`](crate::noise::NoiseSource) stream and
//! are bit-identical across the switch.

/// Golden-ratio increment of the SplitMix64 sequence.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// 2⁻⁵³, the spacing of the 53-bit uniform grid.
const U53: f64 = 1.0 / (1u64 << 53) as f64;

/// Advances a SplitMix64 state and returns the next output word.
///
/// This is the reference SplitMix64 finalizer (Steele, Lea & Flood,
/// "Fast splittable pseudorandom number generators"): an odd-gamma
/// Weyl sequence pushed through two xor-multiply avalanche rounds.
/// Exposed as a free function over a bare `&mut u64` so lane kernels can
/// advance a gathered *array* of states in a vectorizable loop;
/// [`SampleNoise`] is the owning-struct view of the same sequence.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Natural log of `x` for `x ∈ (0, 1]`, branch-free polynomial kernel.
///
/// Splits `x = m·2ᵉ` by bit manipulation, normalizes the mantissa into
/// `[√2/2, √2)` so the atanh argument `r = (m−1)/(m+1)` stays below
/// 0.1716, and sums the odd atanh series through r¹³. Relative error is
/// below 1e-9 across the full range (dominated by the truncated r¹⁵
/// term), which is ~180 dB down on the deviates it produces.
#[inline]
fn ln_unit(x: f64) -> f64 {
    const LN2: f64 = std::f64::consts::LN_2;
    const SQRT2: f64 = std::f64::consts::SQRT_2;
    let bits = x.to_bits();
    // The exponent stays in i32: packed i32→f64 conversion exists on
    // every x86-64, i64→f64 does not, and a stray widening here is
    // enough to scare the autovectorizer off the whole stripe.
    let e = ((bits >> 52) as i32) - 1023;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Renormalize so m ∈ [√2/2, √2): halve m, carry the octave into e.
    // Branchless — the predicate is a coin flip on random uniforms, so a
    // branch would mispredict half the time and serialize the stripe.
    let hi = i32::from(m >= SQRT2);
    let e = e + hi;
    let m = m * (1.0 - 0.5 * f64::from(hi)); // exact: scales by 1.0 or 0.5
    let r = (m - 1.0) / (m + 1.0);
    // atanh series ln m = 2r·Σ r²ᵏ/(2k+1), summed Estrin-style so the
    // chain depth is ~half of Horner's.
    let r2 = r * r;
    let r4 = r2 * r2;
    let s01 = 1.0 + r2 * (1.0 / 3.0);
    let s23 = 1.0 / 5.0 + r2 * (1.0 / 7.0);
    let s45 = 1.0 / 9.0 + r2 * (1.0 / 11.0);
    let s67 = 1.0 / 13.0;
    let series = (s01 + r4 * s23) + (r4 * r4) * (s45 + r4 * s67);
    f64::from(e) * LN2 + 2.0 * r * series
}

/// `cos(2π·u)` for `u ∈ [0, 1)`, branch-free polynomial kernel.
///
/// Quadrant-reduces in *turns* (no 2π range-reduction rounding): with
/// `k = round(4u)` the residual angle `φ = 2π(u − k/4)` lies in
/// `[−π/4, π/4]`, where the cosine and sine Taylor polynomials through
/// φ¹⁴/φ¹³ are accurate to ≲1e-13 absolute; the quadrant then selects
/// and signs the right half-pair via arithmetic masks rather than
/// branches.
#[inline]
fn cos_turns(u: f64) -> f64 {
    const TWO_PI: f64 = std::f64::consts::TAU;
    // k ∈ {0,1,2,3,4}; k=4 aliases quadrant 0 with a negative φ. The
    // argument is positive, so the truncating cast *is* floor — and
    // unlike `f64::floor` (a libm call below SSE4.1) the f64↔i32 casts
    // have packed forms on every x86-64, keeping the stripe vectorizable.
    let k = (4.0 * u + 0.5) as i32;
    let phi = TWO_PI * (u - 0.25 * f64::from(k));
    // cos φ and sin φ on |φ| ≤ π/4: Taylor in φ², Estrin-summed so the
    // two chains are short and run concurrently.
    let p2 = phi * phi;
    let p4 = p2 * p2;
    let p8 = p4 * p4;
    let c01 = 1.0 + p2 * (-1.0 / 2.0);
    let c23 = 1.0 / 24.0 + p2 * (-1.0 / 720.0);
    let c45 = 1.0 / 40_320.0 + p2 * (-1.0 / 3_628_800.0);
    let c67 = 1.0 / 479_001_600.0 + p2 * (-1.0 / 87_178_291_200.0);
    let cos_p = (c01 + p4 * c23) + p8 * (c45 + p4 * c67);
    let s01 = 1.0 + p2 * (-1.0 / 6.0);
    let s23 = 1.0 / 120.0 + p2 * (-1.0 / 5_040.0);
    let s45 = 1.0 / 362_880.0 + p2 * (-1.0 / 39_916_800.0);
    let s67 = 1.0 / 6_227_020_800.0;
    let sin_p = phi * ((s01 + p4 * s23) + p8 * (s45 + p4 * s67));
    // Quadrant combine, branchless (the quadrant is a random 2-bit
    // value — branches here mispredict half the time): odd quadrants
    // take ±sin φ, even take ±cos φ, and quadrants 1,2 negate.
    let ki = k as u32;
    let swap = u64::from(ki & 1).wrapping_neg();
    let base = (sin_p.to_bits() & swap) | (cos_p.to_bits() & !swap);
    let sign = u64::from((ki.wrapping_add(1) >> 1) & 1) << 63;
    f64::from_bits(base ^ sign)
}

/// `exp(x)` for `x ≤ 0`, branch-free polynomial kernel.
///
/// Splits `x = (k + r)·ln 2` with `k` an integer and `|r·ln 2| ≤
/// (ln 2)/2 + 1 ulp, evaluates `eʳˡⁿ²` by a Taylor polynomial through
/// degree 13 (Estrin-summed), and applies `2ᵏ` by exponent-bit
/// arithmetic. Relative error is ≲1e-13 across the domain; inputs
/// below −708 are clamped (the true value there, <1e-307, is zero for
/// every model purpose).
///
/// This exists for the settling hot path: the slew-limited branch of
/// the opamp model needs `exp(−t/τ)` of a *data-dependent* duration,
/// and a libm call there is both a serial dependency chain and an
/// autovectorization barrier in the lane kernel's amplify loop. Like
/// the `ln`/`cos` kernels, this one is pure arithmetic and packs.
#[inline]
pub fn exp_nonpos(x: f64) -> f64 {
    const LOG2_E: f64 = std::f64::consts::LOG2_E;
    const LN_2: f64 = std::f64::consts::LN_2;
    let x = x.max(-708.0);
    let y = x * LOG2_E;
    // Round to nearest integer below: y ≤ 0, so truncating y − ½ rounds
    // half away from zero — any consistent rounding with |r| ≤ 0.5 + ulp
    // works, and the f64↔i32 casts have packed forms (unlike `round`).
    let k = (y - 0.5) as i32;
    let r = (y - f64::from(k)) * LN_2;
    // exp(r) on |r| ≲ 0.35: Taylor through r¹³, Estrin-summed.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let e01 = 1.0 + r;
    let e23 = 1.0 / 2.0 + r * (1.0 / 6.0);
    let e45 = 1.0 / 24.0 + r * (1.0 / 120.0);
    let e67 = 1.0 / 720.0 + r * (1.0 / 5_040.0);
    let e89 = 1.0 / 40_320.0 + r * (1.0 / 362_880.0);
    let e1011 = 1.0 / 3_628_800.0 + r * (1.0 / 39_916_800.0);
    let e1213 = 1.0 / 479_001_600.0 + r * (1.0 / 6_227_020_800.0);
    let lo = (e01 + r2 * e23) + r4 * (e45 + r2 * e67);
    let hi = (e89 + r2 * e1011) + r4 * e1213;
    let p = lo + r8 * hi;
    // 2ᵏ: k ≥ −1022 after the clamp, so the biased exponent stays
    // positive and the bit pattern is a normal number.
    let scale = f64::from_bits(((1023 + k) as u64) << 52);
    p * scale
}

/// The single-sided Box–Muller transform shared by every draw shape
/// (scalar step, lane stripe, sample block), so their deviates are
/// bit-identical by construction.
#[inline]
fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * ln_unit(u1)).sqrt() * cos_turns(u2)
}

/// Advances `state` by one standard-normal draw (two SplitMix64 words).
///
/// The single-sided Box–Muller transform: `u₁ ∈ (0, 1]` (offset by one
/// grid step so the log argument is never zero), `u₂ ∈ [0, 1)`, deviate
/// `√(−2 ln u₁)·cos(2π u₂)`. A free function over a bare state word for
/// the same reason as [`splitmix64`]: lane kernels stripe it over a
/// gathered state array, and [`SampleNoise::standard_normal`] delegates
/// to it, which is what makes laned and scalar draws bit-identical by
/// construction.
#[inline]
pub fn standard_normal_step(state: &mut u64) -> f64 {
    let u1 = ((splitmix64(state) >> 11) + 1) as f64 * U53;
    let u2 = (splitmix64(state) >> 11) as f64 * U53;
    box_muller(u1, u2)
}

/// Width of one fully-unrolled stripe pass: full chunks of this many
/// lanes go through the fixed-trip-count kernel the autovectorizer
/// turns into packed code; the remainder falls back to scalar steps.
const STRIPE: usize = 8;

/// Draws one standard-normal deviate per lane, advancing each state by
/// exactly two SplitMix64 words.
///
/// Per lane this computes *precisely* [`standard_normal_step`] — same
/// uniforms, same kernels, same operation order, so every lane's output
/// is bit-identical to a scalar draw from the same state. The
/// difference is scheduling: full [`STRIPE`]-wide chunks run as two
/// fixed-trip-count array passes (generate uniforms, then transform),
/// which LLVM autovectorizes — the transform's f64 polynomial/mask math
/// packs 2–4 lanes per instruction, where calling the scalar step in a
/// loop leaves each draw a serial ~100-cycle dependency chain.
///
/// # Panics
///
/// Panics if `states` and `out` have different lengths.
pub fn standard_normal_stripe(states: &mut [u64], out: &mut [f64]) {
    assert_eq!(
        states.len(),
        out.len(),
        "stripe buffers disagree: {} states, {} outputs",
        states.len(),
        out.len()
    );
    let mut st = states.chunks_exact_mut(STRIPE);
    let mut ot = out.chunks_exact_mut(STRIPE);
    for (s, o) in st.by_ref().zip(ot.by_ref()) {
        let s: &mut [u64; STRIPE] = s.try_into().expect("exact chunk");
        let o: &mut [f64; STRIPE] = o.try_into().expect("exact chunk");
        // Pass 1 — advance the generators. The u64 multiplies inside
        // SplitMix64 have no packed form on baseline x86-64, so this
        // loop stays scalar; isolating it here keeps it from poisoning
        // the vectorizable transform pass below.
        let mut u1 = [0.0f64; STRIPE];
        let mut u2 = [0.0f64; STRIPE];
        for i in 0..STRIPE {
            u1[i] = ((splitmix64(&mut s[i]) >> 11) + 1) as f64 * U53;
            u2[i] = (splitmix64(&mut s[i]) >> 11) as f64 * U53;
        }
        // Pass 2 — the Box–Muller transform, branch-free and all-f64:
        // this is the loop that actually packs.
        for i in 0..STRIPE {
            o[i] = box_muller(u1[i], u2[i]);
        }
    }
    for (s, o) in st.into_remainder().iter_mut().zip(ot.into_remainder()) {
        *o = standard_normal_step(s);
    }
}

/// Reusable buffers for drawing a whole sample's worth of deviates for
/// every lane in one call — the widest (and fastest) draw shape.
///
/// A lane kernel that knows, up front, that each of a sample's D draw
/// slots consumes on *every* lane (sigma positive lane-uniformly) may
/// generate all D×N deviates at the top of the sample instead of D
/// separate stripes interleaved with stage math. Per lane the D draws
/// are generated in slot order, so each lane's stream consumption is
/// exactly the scalar sequence and the deviates are bit-identical to
/// [`standard_normal_step`] — the only thing that changes is
/// scheduling: the transform runs as one flat D×N-element pass with no
/// intervening code to spill its polynomial constants, which is worth
/// ~2× over per-slot stripes at D ≈ 12.
///
/// The buffers are plain `Vec`s sized on first use and reused across
/// samples (call [`NormalBlock::fill`] per sample; no per-sample
/// allocation after the first).
#[derive(Debug, Clone, Default)]
pub struct NormalBlock {
    u1: Vec<f64>,
    u2: Vec<f64>,
    z: Vec<f64>,
}

impl NormalBlock {
    /// Creates an empty block (buffers grow on first [`Self::fill`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws `draws` standard normals from every state, draw-major:
    /// after the call, [`Self::z`]`[d·N + l]` is lane `l`'s `d`-th
    /// deviate, and each state has advanced by `2·draws` words.
    ///
    /// Draw-major layout makes both ends of the block contiguous over
    /// lanes: generation iterates slot-outer/lane-inner — lane `l`
    /// still consumes its own words in exactly the scalar order (draw
    /// `d` eats words `2d` and `2d+1`), but the N independent SplitMix64
    /// chains now interleave, so the out-of-order core overlaps their
    /// multiply latencies instead of walking one lane's serial chain at
    /// a time — and consumers read one slot as a flat `[d·N..][..N]`
    /// stripe.
    pub fn fill(&mut self, states: &mut [u64], draws: usize) {
        // Same multiversioning discipline as the amplify kernel: the
        // AVX2 clone widens the identical IEEE-exact arithmetic from
        // SSE2's 2-wide to 4-wide (no FMA contraction — Rust never
        // enables it), so deviates stay bit-identical.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by runtime feature detection.
            unsafe { self.fill_avx2(states, draws) };
            return;
        }
        self.fill_impl(states, draws);
    }

    /// AVX2 re-instantiation of [`Self::fill_impl`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn fill_avx2(&mut self, states: &mut [u64], draws: usize) {
        self.fill_impl(states, draws);
    }

    /// Portable body of [`Self::fill`]; `inline(always)` so the
    /// feature-gated wrappers re-instantiate it under their own target
    /// features.
    #[inline(always)]
    fn fill_impl(&mut self, states: &mut [u64], draws: usize) {
        let n = states.len();
        let len = draws * n;
        self.u1.resize(len, 0.0);
        self.u2.resize(len, 0.0);
        self.z.resize(len, 0.0);
        // Pass 1 — lane-inner generation (see above): contiguous
        // writes, interleaved independent integer chains.
        for d in 0..draws {
            let row = &mut self.u1[d * n..(d + 1) * n];
            let row2 = &mut self.u2[d * n..(d + 1) * n];
            for (l, st) in states.iter_mut().enumerate() {
                row[l] = ((splitmix64(st) >> 11) + 1) as f64 * U53;
                row2[l] = (splitmix64(st) >> 11) as f64 * U53;
            }
        }
        // Pass 2 — one flat branch-free transform over all D×N
        // elements: the vector body amortizes its constant loads over
        // the whole block.
        for ((z, &u1), &u2) in self.z.iter_mut().zip(&self.u1).zip(&self.u2) {
            *z = box_muller(u1, u2);
        }
    }

    /// The deviates of the last [`Self::fill`], draw-major
    /// (`z[d·N + l]`).
    pub fn z(&self) -> &[f64] {
        &self.z
    }
}

/// A die's per-sample noise stream: jitter, front-end, and merged
/// per-stage draws all come from here during conversion (fabrication
/// and the rare marginal-comparator draws stay on the die's
/// [`NoiseSource`](crate::noise::NoiseSource)).
///
/// The entire generator state is one `u64`, exposed via
/// [`SampleNoise::state`]/[`SampleNoise::set_state`] so a lane batch can
/// gather N streams into a flat array, advance them in vectorizable
/// stripes, and scatter them back — with every lane's draw sequence
/// bit-identical to the scalar calls it replaces.
///
/// ```
/// use adc_analog::stripe::SampleNoise;
/// let mut a = SampleNoise::from_seed(7);
/// let mut b = SampleNoise::from_seed(7);
/// assert_eq!(a.gaussian(0.0, 1e-3).to_bits(), b.gaussian(0.0, 1e-3).to_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleNoise {
    state: u64,
}

impl SampleNoise {
    /// Creates a stream from a 64-bit seed (typically
    /// [`NoiseSource::fork_seed`](crate::noise::NoiseSource::fork_seed)
    /// of the die's root source, so dies stay bit-identical while their
    /// sample streams stay die-independent).
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw SplitMix64 state, for lane gather.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a state captured by [`SampleNoise::state`], for lane
    /// scatter. The stream continues exactly where the captured one
    /// left off.
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Draws one standard-normal deviate (consumes two stream words).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        standard_normal_step(&mut self.state)
    }

    /// Draws a normal deviate with the given mean and standard
    /// deviation. A zero or negative `sigma` returns `mean` exactly
    /// *without consuming the stream*, matching
    /// [`NoiseSource::gaussian`](crate::noise::NoiseSource::gaussian)'s
    /// off-switch contract.
    #[inline]
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            mean
        } else {
            mean + sigma * self.standard_normal()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for seed 0 from the Steele–Lea–Flood
        // finalizer (cross-checked against the Vigna C implementation).
        let mut s = 0u64;
        let first: Vec<u64> = (0..3).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(
            first,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F
            ]
        );
    }

    #[test]
    fn ln_kernel_tracks_libm_to_1e9_relative() {
        let mut s = 12345u64;
        for _ in 0..200_000 {
            let u = ((splitmix64(&mut s) >> 11) + 1) as f64 * U53;
            let got = ln_unit(u);
            let want = u.ln();
            let tol = 1e-9 * want.abs().max(1e-12);
            assert!(
                (got - want).abs() <= tol,
                "ln({u:e}): got {got:e}, want {want:e}"
            );
        }
        // Exact anchors.
        assert_eq!(ln_unit(1.0), 0.0);
        assert!((ln_unit(0.5) + std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn cos_kernel_tracks_libm_to_1e13_absolute() {
        let mut s = 777u64;
        for _ in 0..200_000 {
            let u = (splitmix64(&mut s) >> 11) as f64 * U53;
            let got = cos_turns(u);
            let want = (std::f64::consts::TAU * u).cos();
            assert!((got - want).abs() < 1e-12, "cos(2π·{u}): {got} vs {want}");
        }
        // Quadrant boundaries.
        for (u, want) in [(0.0, 1.0), (0.25, 0.0), (0.5, -1.0), (0.75, 0.0)] {
            assert!((cos_turns(u) - want).abs() < 1e-12, "u = {u}");
        }
    }

    #[test]
    fn exp_kernel_tracks_libm_to_1e13_relative() {
        let mut s = 4242u64;
        for _ in 0..200_000 {
            // Exercise the magnitudes the settle path produces (t/τ up
            // to ~60) plus a deep tail.
            let u = (splitmix64(&mut s) >> 11) as f64 * U53;
            for x in [-60.0 * u, -700.0 * u * u * u] {
                let got = exp_nonpos(x);
                let want = x.exp();
                assert!(
                    (got - want).abs() <= 1e-13 * want,
                    "exp({x:e}): got {got:e}, want {want:e}"
                );
            }
        }
        // Anchors.
        assert_eq!(exp_nonpos(0.0), 1.0);
        assert!((exp_nonpos(-1.0) - (-1.0f64).exp()).abs() < 1e-14);
        // Deeply clamped inputs still return a positive normal number.
        assert!(exp_nonpos(-1e9) > 0.0);
    }

    #[test]
    fn deviates_have_standard_normal_moments() {
        let mut n = SampleNoise::from_seed(42);
        let count = 1_000_000;
        let (mut m1, mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..count {
            let z = n.standard_normal();
            m1 += z;
            m2 += z * z;
            m3 += z * z * z;
            m4 += z * z * z * z;
        }
        let k = count as f64;
        assert!((m1 / k).abs() < 5e-3, "mean {}", m1 / k);
        assert!((m2 / k - 1.0).abs() < 5e-3, "variance {}", m2 / k);
        assert!((m3 / k).abs() < 2e-2, "skew {}", m3 / k);
        assert!((m4 / k - 3.0).abs() < 5e-2, "kurtosis {}", m4 / k);
    }

    #[test]
    fn gaussian_gates_on_sigma_without_consuming() {
        let mut gated = SampleNoise::from_seed(9);
        let mut free = SampleNoise::from_seed(9);
        assert_eq!(gated.gaussian(0.25, 0.0), 0.25);
        assert_eq!(gated.gaussian(-1.0, -3.0), -1.0);
        // The gated draws consumed nothing: both streams still align.
        assert_eq!(
            gated.gaussian(0.0, 1.0).to_bits(),
            free.gaussian(0.0, 1.0).to_bits()
        );
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = SampleNoise::from_seed(1234);
        let _ = a.standard_normal();
        let mut b = SampleNoise::from_seed(0);
        b.set_state(a.state());
        assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
    }

    #[test]
    fn striped_draws_match_scalar_steps_bit_for_bit() {
        // Every lane count — full chunks, remainders, and the
        // degenerate single lane — must reproduce the scalar sequence.
        for lanes in [1, 3, 7, 8, 9, 16, 21] {
            let mut striped: Vec<u64> = (0..lanes as u64).map(|l| l * 31 + 5).collect();
            let mut scalar = striped.clone();
            let mut out = vec![0.0f64; lanes];
            for round in 0..16 {
                standard_normal_stripe(&mut striped, &mut out);
                for (l, (st, &z)) in scalar.iter_mut().zip(&out).enumerate() {
                    let want = standard_normal_step(st);
                    assert_eq!(
                        z.to_bits(),
                        want.to_bits(),
                        "lane {l}/{lanes} round {round}"
                    );
                }
                assert_eq!(striped, scalar, "states diverged at round {round}");
            }
        }
    }

    #[test]
    fn block_draws_match_scalar_steps_bit_for_bit() {
        for (lanes, draws) in [(1, 12), (4, 1), (8, 12), (16, 7), (5, 3)] {
            let mut blocked: Vec<u64> = (0..lanes as u64).map(|l| l * 977 + 13).collect();
            let mut scalar = blocked.clone();
            let mut block = NormalBlock::new();
            for round in 0..4 {
                block.fill(&mut blocked, draws);
                for (l, st) in scalar.iter_mut().enumerate() {
                    for d in 0..draws {
                        let want = standard_normal_step(st);
                        assert_eq!(
                            block.z()[d * lanes + l].to_bits(),
                            want.to_bits(),
                            "lane {l} draw {d} round {round} ({lanes}x{draws})"
                        );
                    }
                }
                assert_eq!(blocked, scalar, "states diverged ({lanes}x{draws})");
            }
        }
    }

    #[test]
    fn struct_and_free_function_draws_are_identical() {
        // The lane kernel stripes `standard_normal_step` over gathered
        // states; the scalar path calls the struct. Same bits.
        let mut owned = SampleNoise::from_seed(55);
        let mut state = 55u64;
        for _ in 0..64 {
            assert_eq!(
                owned.standard_normal().to_bits(),
                standard_normal_step(&mut state).to_bits()
            );
        }
    }
}
