//! Switched-capacitor circuit primitives.
//!
//! The paper's bias generator hinges on the classic SC identity: a
//! capacitor `C` toggled between two nodes at frequency `f` moves charge
//! `C·ΔV` every cycle, i.e. behaves as a resistor `R_eq = 1/(C·f)`. This
//! module provides that identity plus a *discrete-time simulation* of the
//! charge transfer, so the equivalence (and its settling transient) can be
//! verified rather than assumed — the dynamic layer beneath
//! `adc_bias::ScBiasGenerator`'s static Eq. 1.

/// The equivalent resistance of a switched capacitor, ohms.
///
/// # Panics
///
/// Panics unless both arguments are positive.
///
/// ```
/// use adc_analog::sc::equivalent_resistance;
/// // 1 pF at 110 MHz looks like ~9.09 kΩ.
/// let r = equivalent_resistance(1e-12, 110e6);
/// assert!((r - 9090.9).abs() < 1.0);
/// ```
pub fn equivalent_resistance(c_f: f64, f_switch_hz: f64) -> f64 {
    assert!(c_f > 0.0, "capacitance must be positive");
    assert!(f_switch_hz > 0.0, "switching frequency must be positive");
    1.0 / (c_f * f_switch_hz)
}

/// A switched-capacitor branch between a driven node and ground,
/// simulated cycle by cycle.
///
/// Phase 1: the capacitor charges to the node voltage (through a switch
/// resistance, possibly incompletely). Phase 2: it dumps its charge to
/// ground. The average current drawn from the node over many cycles
/// equals `V/R_eq`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwitchedCapBranch {
    /// The toggled capacitor, farads.
    pub c_f: f64,
    /// Switching frequency, hertz.
    pub f_switch_hz: f64,
    /// Switch on-resistance, ohms (sets per-phase settling).
    pub switch_r_ohm: f64,
    /// Capacitor voltage at the end of the last phase 1.
    v_cap: f64,
}

impl SwitchedCapBranch {
    /// Creates a branch.
    ///
    /// # Panics
    ///
    /// Panics if capacitance or frequency is not positive, or the switch
    /// resistance is negative.
    pub fn new(c_f: f64, f_switch_hz: f64, switch_r_ohm: f64) -> Self {
        assert!(
            c_f > 0.0 && f_switch_hz > 0.0,
            "capacitance and frequency must be positive"
        );
        assert!(
            switch_r_ohm >= 0.0,
            "switch resistance must be non-negative"
        );
        Self {
            c_f,
            f_switch_hz,
            switch_r_ohm,
            v_cap: 0.0,
        }
    }

    /// The ideal equivalent resistance of this branch.
    pub fn r_eq_ohm(&self) -> f64 {
        equivalent_resistance(self.c_f, self.f_switch_hz)
    }

    /// Simulates one full switching cycle with the driven node at
    /// `v_node`; returns the charge drawn from the node this cycle.
    pub fn cycle(&mut self, v_node: f64) -> f64 {
        // Phase 1 (half period): charge toward v_node through the switch.
        let t_phase = 0.5 / self.f_switch_hz;
        let tau = self.switch_r_ohm * self.c_f;
        let settle = if tau > 0.0 {
            1.0 - (-t_phase / tau).exp()
        } else {
            1.0
        };
        let v_new = self.v_cap + (v_node - self.v_cap) * settle;
        let dq = self.c_f * (v_new - self.v_cap);
        // Phase 2: dump to ground (same incompleteness).
        self.v_cap = v_new * (1.0 - settle);
        dq
    }

    /// Average current drawn with the node held at `v_node`, measured
    /// over `cycles` simulated cycles (after the branch reaches steady
    /// state).
    pub fn average_current_a(&mut self, v_node: f64, cycles: usize) -> f64 {
        assert!(cycles > 0, "need at least one cycle");
        // Let the branch reach steady state first.
        for _ in 0..16 {
            let _ = self.cycle(v_node);
        }
        let mut q = 0.0;
        for _ in 0..cycles {
            q += self.cycle(v_node);
        }
        q * self.f_switch_hz / cycles as f64
    }
}

/// The paper's Fig. 3 bias loop, simulated in discrete time: an OTA in
/// unity gain forces node `BIAS` toward `V_BIAS` while the SC branch
/// loads it; the output device's current follows. Captures the *startup
/// transient* the static Eq. 1 hides — relevant when an SoC gates the
/// ADC's clock on and off to save power — and the OTA's finite-gm static
/// error (`I_branch/gm`, the `loop_error_rel` of
/// `adc_bias::ScBiasGenerator`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScBiasLoop {
    /// The SC branch (C_B and its clocking).
    pub branch: SwitchedCapBranch,
    /// Target voltage V_BIAS, volts.
    pub v_bias_v: f64,
    /// OTA transconductance, siemens (sets the loop time constant and the
    /// static error `I_branch/gm`).
    pub ota_gm_s: f64,
    /// Maximum OTA output current, amperes (slew-limits startup).
    pub ota_i_max_a: f64,
    /// Decoupling capacitance on the BIAS node, farads.
    pub c_node_f: f64,
    /// Present BIAS-node voltage.
    v_node: f64,
}

impl ScBiasLoop {
    /// Creates the loop with the node starting at 0 V (power-up).
    pub fn new(
        branch: SwitchedCapBranch,
        v_bias_v: f64,
        ota_gm_s: f64,
        ota_i_max_a: f64,
        c_node_f: f64,
    ) -> Self {
        assert!(
            v_bias_v > 0.0 && ota_gm_s > 0.0 && ota_i_max_a > 0.0 && c_node_f > 0.0,
            "loop parameters must be positive"
        );
        Self {
            branch,
            v_bias_v,
            ota_gm_s,
            ota_i_max_a,
            c_node_f,
            v_node: 0.0,
        }
    }

    /// The BIAS-node voltage now.
    pub fn v_node(&self) -> f64 {
        self.v_node
    }

    /// Average small-signal conductance of the SC branch, siemens.
    fn branch_conductance_s(&self) -> f64 {
        self.branch.c_f * self.branch.f_switch_hz
    }

    /// The output current now (what the mirrors replicate): the charge
    /// per cycle the SC branch draws at the present node voltage, times
    /// frequency.
    pub fn output_current_a(&self) -> f64 {
        self.v_node * self.branch_conductance_s()
    }

    /// Advances one switching cycle; returns the output current after
    /// the cycle.
    ///
    /// Inside the OTA's linear region the node follows the exact
    /// first-order solution (the cycle time can far exceed the loop time
    /// constant, where naive forward Euler would explode); when the
    /// demanded OTA current exceeds `ota_i_max_a` the node slews.
    pub fn step(&mut self) -> f64 {
        let dt = 1.0 / self.branch.f_switch_hz;
        let g_branch = self.branch_conductance_s();
        let demanded = self.ota_gm_s * (self.v_bias_v - self.v_node);
        if demanded.abs() > self.ota_i_max_a {
            // Slew-limited: constant OTA current against the branch load.
            let i_net = self.ota_i_max_a * demanded.signum() - g_branch * self.v_node;
            self.v_node += i_net * dt / self.c_node_f;
        } else {
            // Linear region: exact exponential step of
            //   C dv/dt = gm(vb − v) − g_branch·v.
            let g_total = self.ota_gm_s + g_branch;
            let v_inf = self.ota_gm_s * self.v_bias_v / g_total;
            let tau = self.c_node_f / g_total;
            self.v_node = v_inf + (self.v_node - v_inf) * (-dt / tau).exp();
        }
        // Keep the discrete branch state consistent for callers mixing
        // cycle() and step().
        let _ = self.branch.cycle(self.v_node);
        self.output_current_a()
    }

    /// Runs until the output current is within `tolerance_rel` of its
    /// final value; returns the number of cycles taken (startup time).
    ///
    /// # Panics
    ///
    /// Panics if convergence takes more than a million cycles (a
    /// mis-designed loop).
    pub fn settle(&mut self, tolerance_rel: f64) -> usize {
        let target = self.v_bias_v * self.branch.c_f * self.branch.f_switch_hz;
        for cycle in 0..1_000_000 {
            let i = self.step();
            if ((i - target) / target).abs() < tolerance_rel {
                return cycle + 1;
            }
        }
        panic!("bias loop failed to settle — check gm/C sizing");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_resistance_identity() {
        assert!((equivalent_resistance(1e-12, 1e6) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn simulated_branch_matches_ideal_r_eq() {
        // Fast switches: the simulated average current equals V/R_eq.
        let mut branch = SwitchedCapBranch::new(1e-12, 110e6, 50.0);
        let v = 0.9;
        let i = branch.average_current_a(v, 1000);
        let ideal = v / branch.r_eq_ohm();
        assert!((i - ideal).abs() / ideal < 1e-3, "i {i} vs ideal {ideal}");
    }

    #[test]
    fn slow_switches_reduce_transferred_charge() {
        // R·C comparable to the phase: incomplete transfer, less current.
        let mut fast = SwitchedCapBranch::new(1e-12, 110e6, 50.0);
        let mut slow = SwitchedCapBranch::new(1e-12, 110e6, 20e3);
        let i_fast = fast.average_current_a(0.9, 500);
        let i_slow = slow.average_current_a(0.9, 500);
        assert!(i_slow < 0.9 * i_fast, "fast {i_fast}, slow {i_slow}");
    }

    fn paper_loop(c_node_f: f64, f_hz: f64) -> ScBiasLoop {
        let branch = SwitchedCapBranch::new(1e-12, f_hz, 50.0);
        ScBiasLoop::new(branch, 0.9, 50e-3, 300e-6, c_node_f)
    }

    #[test]
    fn bias_loop_converges_to_eq1() {
        let mut bias = paper_loop(20e-12, 110e6);
        let cycles = bias.settle(5e-3);
        // Converges, and to the Eq. 1 current: C_B·f·V_BIAS = 99 µA,
        // within the OTA's static error I/gm.
        let i = bias.output_current_a();
        assert!((i - 99e-6).abs() / 99e-6 < 5e-3, "i {i}");
        assert!(cycles > 1, "instant settling is suspicious: {cycles}");
    }

    #[test]
    fn startup_time_scales_with_node_capacitance() {
        let make = |c_node: f64| {
            let mut b = paper_loop(c_node, 110e6);
            b.settle(5e-3)
        };
        let quick = make(5e-12);
        let slow = make(50e-12);
        assert!(slow > 2 * quick, "quick {quick}, slow {slow}");
    }

    #[test]
    fn loop_output_scales_with_clock_like_eq1() {
        let run = |f: f64| {
            let mut b = paper_loop(20e-12, f);
            b.settle(5e-3);
            // Extra cycles to converge fully before the reading.
            for _ in 0..64 {
                b.step();
            }
            b.output_current_a()
        };
        let i55 = run(55e6);
        let i110 = run(110e6);
        assert!((i110 / i55 - 2.0).abs() < 0.01, "ratio {}", i110 / i55);
    }

    #[test]
    fn static_error_shrinks_with_ota_gm() {
        let run = |gm: f64| {
            let branch = SwitchedCapBranch::new(1e-12, 110e6, 50.0);
            let mut b = ScBiasLoop::new(branch, 0.9, gm, 300e-6, 20e-12);
            for _ in 0..2000 {
                b.step();
            }
            (b.output_current_a() - 99e-6).abs() / 99e-6
        };
        assert!(run(0.2) < run(0.02) / 5.0, "higher gm must cut the error");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn branch_rejects_bad_capacitance() {
        let _ = SwitchedCapBranch::new(0.0, 1e6, 10.0);
    }
}
