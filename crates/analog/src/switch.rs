//! Analog switch models: transmission gates, bulk switching, bootstrapping.
//!
//! The paper's input switches are the distortion bottleneck at high input
//! frequency (its Fig. 6 discussion): the ADC does **not** bootstrap the
//! input switches (lifetime concerns), using bulk-switched PMOS transmission
//! gates instead, so both the channel resistance and the parasitic
//! capacitances remain signal-dependent.
//!
//! The behavioral model: during the track phase the hold capacitor sees a
//! one-pole RC with a *signal-dependent* resistance
//!
//! ```text
//! R_on(v) = R0 · (1 + c1·v + c2·v² + c3·v³)
//! ```
//!
//! Sampling then freezes the value `v(t_s − τ(v)) ≈ v − τ(v)·dv/dt` with
//! `τ(v) = R_on(v)·C_H`. The constant part of τ is a benign delay; the
//! signal-dependent parts generate the harmonic distortion that makes SFDR
//! fall with input frequency at roughly 20 dB/decade — exactly the Fig. 6
//! shape. Bulk switching lowers `R0` and the odd coefficients; a
//! bootstrapped switch (provided as the comparison the paper declined to
//! build) nearly zeroes them.

use crate::noise::NoiseSource;

/// Circuit topology of a signal switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SwitchTopology {
    /// NMOS-only pass device. Only usable near a fixed common-mode voltage
    /// (the paper's S1B sampling switch at V_CM): very linear there, but it
    /// cannot pass rail-to-rail signals.
    NmosOnly,
    /// CMOS transmission gate; `bulk_switched` applies the paper's trick of
    /// tying the PMOS n-well to its source when on, lowering |V_T| and the
    /// on-resistance (and its signal dependence).
    TransmissionGate {
        /// Whether the PMOS bulk is switched to the source when on.
        bulk_switched: bool,
    },
    /// Clock-bootstrapped NMOS switch: V_GS is held constant so R_on is
    /// nearly signal-independent. The paper avoided it for oxide-lifetime
    /// reasons; we model it as the ablation baseline.
    Bootstrapped,
}

impl SwitchTopology {
    /// Short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchTopology::NmosOnly => "NMOS-only",
            SwitchTopology::TransmissionGate {
                bulk_switched: true,
            } => "TG (bulk-switched)",
            SwitchTopology::TransmissionGate {
                bulk_switched: false,
            } => "TG (conventional)",
            SwitchTopology::Bootstrapped => "bootstrapped",
        }
    }
}

/// A fabricated switch: on-resistance polynomial over the differential
/// signal voltage.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwitchModel {
    /// Topology this model was derived from.
    pub topology: SwitchTopology,
    /// On-resistance at zero differential signal, ohms.
    pub r_on_ohm: f64,
    /// First-order (odd, largely cancelled differentially) coefficient, 1/V.
    pub c1_per_v: f64,
    /// Second-order coefficient, 1/V² — the dominant HD3 generator for a
    /// differential sampling network.
    pub c2_per_v2: f64,
    /// Third-order coefficient, 1/V³.
    pub c3_per_v3: f64,
    /// Nonlinear-parasitic (charge-injection) curvature, seconds²: adds a
    /// sampling error `−k·v·(dv/dt)²`, i.e. distortion growing with the
    /// *square* of input frequency — the steep part of the paper's Fig. 6
    /// SFDR roll-off.
    pub cap_nonlin_s2: f64,
}

impl SwitchModel {
    /// Builds the nominal model for a topology in the paper's 1.8 V /
    /// 0.18 µm setting.
    ///
    /// The absolute values are calibrated so the full converter lands on the
    /// paper's Fig. 6 shape (SFDR ≈ 69 dB flat to ~40 MHz, then falling at
    /// ≈ 20 dB/decade); the *ratios* between topologies express the circuit
    /// arguments of §3.
    pub fn nominal(topology: SwitchTopology) -> Self {
        match topology {
            SwitchTopology::NmosOnly => Self {
                topology,
                r_on_ohm: 60.0,
                c1_per_v: 0.002,
                c2_per_v2: 0.0008,
                c3_per_v3: 0.0002,
                cap_nonlin_s2: 2e-21,
            },
            SwitchTopology::TransmissionGate {
                bulk_switched: true,
            } => Self {
                topology,
                r_on_ohm: 100.0,
                c1_per_v: 0.004,
                c2_per_v2: 0.0150,
                c3_per_v3: 0.0035,
                cap_nonlin_s2: 2.5e-20,
            },
            SwitchTopology::TransmissionGate {
                bulk_switched: false,
            } => Self {
                topology,
                r_on_ohm: 190.0,
                c1_per_v: 0.009,
                c2_per_v2: 0.0400,
                c3_per_v3: 0.0090,
                cap_nonlin_s2: 6e-20,
            },
            SwitchTopology::Bootstrapped => Self {
                topology,
                r_on_ohm: 70.0,
                c1_per_v: 0.0004,
                c2_per_v2: 0.0008,
                c3_per_v3: 0.0002,
                cap_nonlin_s2: 2e-21,
            },
        }
    }

    /// A perfectly linear switch with the given on-resistance.
    pub fn ideal(r_on_ohm: f64) -> Self {
        assert!(r_on_ohm >= 0.0);
        Self {
            topology: SwitchTopology::Bootstrapped,
            r_on_ohm,
            c1_per_v: 0.0,
            c2_per_v2: 0.0,
            c3_per_v3: 0.0,
            cap_nonlin_s2: 0.0,
        }
    }

    /// On-resistance at differential signal voltage `v`, ohms.
    pub fn r_on_at(&self, v: f64) -> f64 {
        self.r_on_ohm
            * (1.0 + self.c1_per_v * v + self.c2_per_v2 * v * v + self.c3_per_v3 * v * v * v)
    }
}

/// The front-end sampling network: signal switch + hold capacitor.
///
/// [`SamplingNetwork::sample`] converts a continuous input (value and slope
/// at the sampling instant) into the voltage actually frozen on the hold
/// capacitor, including tracking distortion, finite tracking bandwidth
/// memory, and kT/C noise.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SamplingNetwork {
    /// The series signal switch.
    pub switch: SwitchModel,
    /// Hold capacitance in farads.
    pub c_hold_f: f64,
    /// Fraction of the clock period available for tracking (≈ 0.5 for a
    /// two-phase scheme).
    pub track_fraction: f64,
    /// Whether the kT/C term is applied (disable only for mathematically
    /// ideal reference converters).
    pub ktc_enabled: bool,
    /// Previously held voltage (for incomplete-tracking memory).
    last_held_v: f64,
}

impl SamplingNetwork {
    /// Creates a sampling network.
    ///
    /// # Panics
    ///
    /// Panics if `c_hold_f` is not positive or `track_fraction` is outside
    /// `(0, 1]`.
    pub fn new(switch: SwitchModel, c_hold_f: f64, track_fraction: f64) -> Self {
        assert!(c_hold_f > 0.0, "hold capacitance must be positive");
        assert!(
            track_fraction > 0.0 && track_fraction <= 1.0,
            "track fraction must be in (0, 1]"
        );
        Self {
            switch,
            c_hold_f,
            track_fraction,
            ktc_enabled: true,
            last_held_v: 0.0,
        }
    }

    /// Disables the kT/C noise term (ideal-converter reference builds).
    pub fn without_ktc_noise(mut self) -> Self {
        self.ktc_enabled = false;
        self
    }

    /// Small-signal tracking bandwidth (−3 dB) of the network, hertz.
    pub fn bandwidth_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.switch.r_on_ohm * self.c_hold_f)
    }

    /// Resets the tracking memory (e.g. between measurement runs).
    pub fn reset(&mut self) {
        self.last_held_v = 0.0;
    }

    /// Samples the input.
    ///
    /// * `v` — input voltage at the nominal sampling instant;
    /// * `dvdt` — input slope at that instant (for tracking-delay
    ///   distortion);
    /// * `period_s` — the clock period (sets the available tracking time);
    /// * `noise` — source for the kT/C term (pass a zero-noise source or an
    ///   ideal capacitor upstream to disable).
    ///
    /// Returns the held voltage.
    pub fn sample(&mut self, v: f64, dvdt: f64, period_s: f64, noise: &mut NoiseSource) -> f64 {
        let tracked = self.track(v, dvdt, period_s);
        // kT/C noise frozen at the sampling instant.
        let held = tracked + noise.gaussian(0.0, self.ktc_sigma_v());
        self.last_held_v = held;
        held
    }

    /// The deterministic half of [`SamplingNetwork::sample`]: aperture
    /// delay, charge-injection distortion and incomplete tracking, but
    /// no kT/C draw and no update of the tracking memory.
    ///
    /// Callers that merge noise sources (the converter's planned path)
    /// use this, add their combined Gaussian, and commit the held value
    /// via [`SamplingNetwork::commit_held_v`].
    pub fn track(&self, v: f64, dvdt: f64, period_s: f64) -> f64 {
        // Signal-dependent aperture delay. The *constant* part of
        // τ(v)·dv/dt is a pure group delay (no effect on any single-tone
        // metric) and its first-order expansion would fake an amplitude
        // rise at high input frequency, so only the signal-dependent
        // excess delay is applied. The charge-injection term adds the
        // ∝f² distortion of the nonlinear parasitic capacitances.
        let tau0 = self.switch.r_on_ohm * self.c_hold_f;
        let tau_v = self.switch.r_on_at(v) * self.c_hold_f;
        let delayed = v - (tau_v - tau0) * dvdt - self.switch.cap_nonlin_s2 * v * dvdt * dvdt;

        // Incomplete tracking: the cap charges from the previously held
        // value toward the input with time constant τ over the track phase.
        let t_track = period_s * self.track_fraction;
        let eps = if tau_v <= 0.0 {
            0.0
        } else {
            (-t_track / tau_v).exp()
        };
        delayed + (self.last_held_v - delayed) * eps
    }

    /// RMS kT/C noise frozen at the sampling instant (0 when disabled).
    pub fn ktc_sigma_v(&self) -> f64 {
        if self.ktc_enabled {
            (crate::units::KT_NOMINAL / self.c_hold_f).sqrt()
        } else {
            0.0
        }
    }

    /// Commits an externally assembled held voltage (tracked value plus
    /// caller-supplied noise) into the tracking memory, mirroring what
    /// [`SamplingNetwork::sample`] stores.
    pub fn commit_held_v(&mut self, held_v: f64) {
        self.last_held_v = held_v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> NoiseSource {
        NoiseSource::from_seed(0)
    }

    #[test]
    fn r_on_polynomial_evaluates() {
        let sw = SwitchModel {
            topology: SwitchTopology::Bootstrapped,
            r_on_ohm: 100.0,
            c1_per_v: 0.1,
            c2_per_v2: 0.01,
            c3_per_v3: 0.001,
            cap_nonlin_s2: 0.0,
        };
        let r = sw.r_on_at(1.0);
        assert!((r - 100.0 * 1.111).abs() < 1e-9);
        assert_eq!(sw.r_on_at(0.0), 100.0);
    }

    #[test]
    fn bulk_switching_lowers_resistance_and_nonlinearity() {
        let bulk = SwitchModel::nominal(SwitchTopology::TransmissionGate {
            bulk_switched: true,
        });
        let conv = SwitchModel::nominal(SwitchTopology::TransmissionGate {
            bulk_switched: false,
        });
        assert!(bulk.r_on_ohm < conv.r_on_ohm);
        assert!(bulk.c2_per_v2 < conv.c2_per_v2);
        assert!(bulk.c3_per_v3 < conv.c3_per_v3);
    }

    #[test]
    fn bootstrapped_is_most_linear_full_swing_option() {
        let boot = SwitchModel::nominal(SwitchTopology::Bootstrapped);
        let bulk = SwitchModel::nominal(SwitchTopology::TransmissionGate {
            bulk_switched: true,
        });
        assert!(boot.c2_per_v2 < bulk.c2_per_v2);
    }

    #[test]
    fn ideal_switch_samples_exactly_with_zero_slope() {
        // With zero nonlinearity, zero slope, and a long settled track
        // phase the held value equals the input (kT/C noise aside — the
        // hold cap here is large enough to make it negligible for 1e-9).
        let sw = SwitchModel::ideal(1.0);
        let mut net = SamplingNetwork::new(sw, 1e-9, 0.5);
        let held = net.sample(0.5, 0.0, 1e-6, &mut quiet());
        assert!((held - 0.5).abs() < 1e-5);
    }

    #[test]
    fn constant_delay_produces_no_sampling_error() {
        // A perfectly linear switch has only group delay, which is
        // metrics-neutral and therefore removed from the model.
        let sw = SwitchModel::ideal(100.0);
        let c = 4e-12;
        let mut net = SamplingNetwork::new(sw, c, 0.5).without_ktc_noise();
        let _ = net.sample(0.0, 0.0, 1e-6, &mut quiet());
        let held = net.sample(0.0, 1e7, 1e-6, &mut quiet());
        assert!(held.abs() < 1e-12, "held {held}");
    }

    #[test]
    fn nonlinear_resistance_produces_signal_dependent_delay() {
        let sw = SwitchModel {
            c2_per_v2: 0.1,
            ..SwitchModel::ideal(100.0)
        };
        let c = 4e-12;
        let mut n = quiet();
        let mut net = SamplingNetwork::new(sw, c, 0.5).without_ktc_noise();
        let slope = 1e8;
        // Excess delay at v: (τ(v) − τ0)·dv/dt = τ0·c2·v²·dv/dt.
        let _ = net.sample(0.8, 0.0, 1e-3, &mut n);
        let at_peak = net.sample(0.8, slope, 1e-3, &mut n);
        let err_peak = 0.8 - at_peak;
        let expected = 100.0 * c * 0.1 * 0.8 * 0.8 * slope;
        assert!(
            (err_peak - expected).abs() / expected < 1e-6,
            "err {err_peak} vs {expected}"
        );
        // At v = 0 the excess delay vanishes.
        net.reset();
        let _ = net.sample(0.0, 0.0, 1e-3, &mut n);
        let at_zero = net.sample(0.0, slope, 1e-3, &mut n);
        assert!(at_zero.abs() < 1e-12);
    }

    #[test]
    fn charge_injection_error_grows_with_slope_squared() {
        let sw = SwitchModel {
            cap_nonlin_s2: 1e-20,
            ..SwitchModel::ideal(100.0)
        };
        let mut n = quiet();
        let mut net = SamplingNetwork::new(sw, 4e-12, 0.5).without_ktc_noise();
        let v = 0.5;
        let _ = net.sample(v, 0.0, 1e-3, &mut n);
        let e1 = v - net.sample(v, 1e8, 1e-3, &mut n);
        net.reset();
        let _ = net.sample(v, 0.0, 1e-3, &mut n);
        let e2 = v - net.sample(v, 2e8, 1e-3, &mut n);
        assert!((e2 / e1 - 4.0).abs() < 0.01, "ratio {}", e2 / e1);
    }

    #[test]
    fn bandwidth_formula() {
        let net = SamplingNetwork::new(SwitchModel::ideal(100.0), 4e-12, 0.5);
        let f = net.bandwidth_hz();
        assert!((f - 1.0 / (2.0 * std::f64::consts::PI * 4e-10)).abs() / f < 1e-12);
    }

    #[test]
    fn incomplete_tracking_leaves_memory_of_previous_sample() {
        // Huge resistance so the track phase cannot finish.
        let sw = SwitchModel::ideal(1e6);
        let mut n = quiet();
        let mut net = SamplingNetwork::new(sw, 4e-12, 0.5);
        let first = net.sample(1.0, 0.0, 9.09e-9, &mut n);
        assert!(first < 1.0, "tracking should not complete: {first}");
        // Second sample of the same value gets closer.
        let second = net.sample(1.0, 0.0, 9.09e-9, &mut n);
        assert!(second > first);
    }

    #[test]
    fn labels_are_distinct() {
        use SwitchTopology::*;
        let labels = [
            NmosOnly.label(),
            TransmissionGate {
                bulk_switched: true,
            }
            .label(),
            TransmissionGate {
                bulk_switched: false,
            }
            .label(),
            Bootstrapped.label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
