//! Physical constants, unit helpers, and decibel conversions.
//!
//! The simulator works in plain SI units carried in `f64` values; field and
//! parameter names carry the unit as a suffix (`_v`, `_f`, `_hz`, `_s`,
//! `_a`, `_w`). This module collects the constants and the handful of unit
//! conversions that every other crate needs, so magic numbers never appear
//! at call sites.

/// Boltzmann constant in joules per kelvin.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Nominal simulation temperature in kelvin (27 °C, the usual SPICE default).
pub const T_NOMINAL_K: f64 = 300.15;

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// `kT` at the nominal temperature, in joules.
///
/// This is the quantity that appears in every sampled-noise calculation
/// (`kT/C` noise power on a hold capacitor).
pub const KT_NOMINAL: f64 = BOLTZMANN * T_NOMINAL_K;

/// Converts a power *ratio* to decibels.
///
/// Returns negative infinity for a non-positive ratio, which is the
/// conventional "no power" reading on a spectrum analyzer.
///
/// ```
/// use adc_analog::units::db;
/// assert!((db(100.0) - 20.0).abs() < 1e-12);
/// assert_eq!(db(0.0), f64::NEG_INFINITY);
/// ```
#[inline]
pub fn db(power_ratio: f64) -> f64 {
    if power_ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * power_ratio.log10()
    }
}

/// Converts an *amplitude* ratio to decibels (`20·log10`).
///
/// ```
/// use adc_analog::units::db_amplitude;
/// assert!((db_amplitude(10.0) - 20.0).abs() < 1e-12);
/// ```
#[inline]
pub fn db_amplitude(amplitude_ratio: f64) -> f64 {
    if amplitude_ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * amplitude_ratio.log10()
    }
}

/// Inverse of [`db`]: converts decibels back to a power ratio.
///
/// ```
/// use adc_analog::units::{db, undb};
/// let x = 123.456;
/// assert!((undb(db(x)) - x).abs() < 1e-9);
/// ```
#[inline]
pub fn undb(decibels: f64) -> f64 {
    10f64.powf(decibels / 10.0)
}

/// Inverse of [`db_amplitude`].
#[inline]
pub fn undb_amplitude(decibels: f64) -> f64 {
    10f64.powf(decibels / 20.0)
}

/// Root-mean-square kT/C noise voltage for a sampling capacitor, in volts.
///
/// Sampling a signal onto a capacitor `c_f` (farads) through any resistive
/// switch freezes thermal noise with total power `kT/C` regardless of the
/// switch resistance — the classic sampled-noise result.
///
/// # Panics
///
/// Panics if `c_f` is not strictly positive; a non-positive capacitance is
/// a construction error upstream, not a recoverable condition.
///
/// ```
/// use adc_analog::units::ktc_noise_rms;
/// // 1 pF at 300 K is about 64 µV rms.
/// let sigma = ktc_noise_rms(1e-12);
/// assert!((sigma - 64.4e-6).abs() < 1e-6);
/// ```
#[inline]
pub fn ktc_noise_rms(c_f: f64) -> f64 {
    assert!(c_f > 0.0, "capacitance must be positive, got {c_f}");
    (KT_NOMINAL / c_f).sqrt()
}

/// Effective number of bits implied by an SINAD/SNDR reading in decibels.
///
/// `ENOB = (SNDR − 1.76) / 6.02`, the standard sine-wave relation.
///
/// ```
/// use adc_analog::units::enob_from_sndr;
/// // An ideal 12-bit quantizer has SNDR = 74.0 dB.
/// assert!((enob_from_sndr(74.0) - 12.0).abs() < 0.01);
/// ```
#[inline]
pub fn enob_from_sndr(sndr_db: f64) -> f64 {
    (sndr_db - 1.76) / 6.02
}

/// SNDR in decibels implied by an effective number of bits.
///
/// Inverse of [`enob_from_sndr`].
#[inline]
pub fn sndr_from_enob(enob_bits: f64) -> f64 {
    enob_bits * 6.02 + 1.76
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trips() {
        for &x in &[1e-6, 0.5, 1.0, 2.0, 1e9] {
            assert!((undb(db(x)) - x).abs() / x < 1e-12);
            assert!((undb_amplitude(db_amplitude(x)) - x).abs() / x < 1e-12);
        }
    }

    #[test]
    fn db_of_unity_is_zero() {
        assert_eq!(db(1.0), 0.0);
        assert_eq!(db_amplitude(1.0), 0.0);
    }

    #[test]
    fn db_amplitude_is_twice_db() {
        assert!((db_amplitude(3.7) - 2.0 * db(3.7)).abs() < 1e-12);
    }

    #[test]
    fn ktc_scales_inverse_sqrt() {
        let a = ktc_noise_rms(1e-12);
        let b = ktc_noise_rms(4e-12);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn ktc_rejects_zero_cap() {
        let _ = ktc_noise_rms(0.0);
    }

    #[test]
    fn enob_round_trips() {
        for &b in &[6.0, 10.0, 10.4, 12.0, 14.0] {
            assert!((enob_from_sndr(sndr_from_enob(b)) - b).abs() < 1e-12);
        }
    }

    #[test]
    fn twelve_bit_ideal_sndr() {
        // 6.02*12 + 1.76 = 74.0 dB
        assert!((sndr_from_enob(12.0) - 74.0).abs() < 0.01);
    }
}
