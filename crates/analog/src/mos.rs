//! MOS transistor device model.
//!
//! The component models in this crate ([`crate::switch`], [`crate::opamp`])
//! expose calibrated behavioral constants; this module supplies the
//! device-level layer those constants can be *derived from*: a long-channel
//! square-law MOSFET with mobility degradation and a first-order
//! velocity-saturation correction — the hand-analysis model an analog
//! designer in a 0.18 µm flow would use for sizing.
//!
//! Two derivations used elsewhere:
//!
//! * a transmission gate's on-resistance polynomial
//!   ([`TransmissionGate::fit_r_on_polynomial`]) from the NMOS/PMOS triode
//!   resistances across the signal range, with or without the paper's
//!   bulk-switching trick (which removes the PMOS body effect when on);
//! * an input pair's `gm` at a bias current ([`MosDevice::gm_at`]),
//!   consistent with the `gm = 2·I/V_ov` behavioral opamp model.

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// A sized MOS transistor in a 0.18 µm-class process.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MosDevice {
    /// Polarity.
    pub polarity: MosPolarity,
    /// Width, metres.
    pub w_m: f64,
    /// Length, metres.
    pub l_m: f64,
    /// Process transconductance `µ·C_ox`, A/V².
    pub kp_a_per_v2: f64,
    /// Zero-bias threshold voltage magnitude, volts.
    pub vt0_v: f64,
    /// Body-effect coefficient γ, √V.
    pub gamma_sqrt_v: f64,
    /// Surface potential 2φ_F, volts.
    pub phi_v: f64,
    /// Mobility-degradation coefficient θ, 1/V.
    pub theta_per_v: f64,
}

impl MosDevice {
    /// A typical 0.18 µm NMOS: kp ≈ 300 µA/V², V_T0 ≈ 0.45 V.
    pub fn nmos_018(w_m: f64, l_m: f64) -> Self {
        Self {
            polarity: MosPolarity::Nmos,
            w_m,
            l_m,
            kp_a_per_v2: 300e-6,
            vt0_v: 0.45,
            gamma_sqrt_v: 0.45,
            phi_v: 0.85,
            theta_per_v: 0.25,
        }
    }

    /// A typical 0.18 µm PMOS: kp ≈ 70 µA/V² (the mobility deficit that
    /// makes the paper's PMOS switch devices "especially large"),
    /// |V_T0| ≈ 0.5 V.
    pub fn pmos_018(w_m: f64, l_m: f64) -> Self {
        Self {
            polarity: MosPolarity::Pmos,
            w_m,
            l_m,
            kp_a_per_v2: 70e-6,
            vt0_v: 0.50,
            gamma_sqrt_v: 0.40,
            phi_v: 0.85,
            theta_per_v: 0.20,
        }
    }

    /// Aspect ratio W/L.
    pub fn aspect(&self) -> f64 {
        self.w_m / self.l_m
    }

    /// Threshold voltage including body effect for a source-to-bulk
    /// reverse bias `v_sb_v ≥ 0`:
    /// `V_T = V_T0 + γ(√(2φ_F + V_SB) − √(2φ_F))`.
    pub fn vt_at(&self, v_sb_v: f64) -> f64 {
        let v_sb = v_sb_v.max(0.0);
        self.vt0_v + self.gamma_sqrt_v * ((self.phi_v + v_sb).sqrt() - self.phi_v.sqrt())
    }

    /// Effective mobility factor with vertical-field degradation:
    /// `kp_eff = kp / (1 + θ·V_ov)`.
    fn kp_eff(&self, v_ov_v: f64) -> f64 {
        self.kp_a_per_v2 / (1.0 + self.theta_per_v * v_ov_v.max(0.0))
    }

    /// Deep-triode channel resistance at gate overdrive `v_ov_v` (with
    /// body effect already folded into the overdrive by the caller).
    ///
    /// Returns infinity when the device is off.
    pub fn triode_resistance(&self, v_ov_v: f64) -> f64 {
        if v_ov_v <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / (self.kp_eff(v_ov_v) * self.aspect() * v_ov_v)
    }

    /// Saturation drain current at overdrive `v_ov_v`.
    pub fn id_sat(&self, v_ov_v: f64) -> f64 {
        if v_ov_v <= 0.0 {
            return 0.0;
        }
        0.5 * self.kp_eff(v_ov_v) * self.aspect() * v_ov_v * v_ov_v
    }

    /// Overdrive required to carry `id_a` in saturation (inverts
    /// [`Self::id_sat`] numerically; the degradation term makes the
    /// closed form quadratic-in-quadratic).
    pub fn v_ov_for(&self, id_a: f64) -> f64 {
        assert!(id_a >= 0.0, "current must be non-negative");
        // adc-lint: allow(float-eq) reason="exact-zero guard before division; any nonzero current takes the numeric path"
        if id_a == 0.0 {
            return 0.0;
        }
        // Bisection: id_sat is monotone in v_ov.
        let (mut lo, mut hi) = (0.0_f64, 2.0_f64);
        while self.id_sat(hi) < id_a {
            hi *= 2.0;
            assert!(hi < 1e3, "current {id_a} A not reachable");
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.id_sat(mid) < id_a {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Transconductance at a drain current: `gm = 2·I_D/V_ov` with the
    /// self-consistent overdrive.
    pub fn gm_at(&self, id_a: f64) -> f64 {
        let v_ov = self.v_ov_for(id_a);
        if v_ov <= 0.0 {
            0.0
        } else {
            2.0 * id_a / v_ov
        }
    }
}

/// A CMOS transmission gate built from two sized devices.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransmissionGate {
    /// The NMOS pass device.
    pub nmos: MosDevice,
    /// The PMOS pass device.
    pub pmos: MosDevice,
    /// Supply voltage (gate drive), volts.
    pub vdd_v: f64,
    /// Whether the PMOS n-well is switched to the source when on (the
    /// paper's trick): eliminates the PMOS body effect in the on state.
    pub bulk_switched: bool,
}

impl TransmissionGate {
    /// The paper-style input switch: large PMOS (mobility deficit), 1.8 V
    /// drive.
    pub fn paper_input_switch(bulk_switched: bool) -> Self {
        Self {
            nmos: MosDevice::nmos_018(12e-6, 0.18e-6),
            pmos: MosDevice::pmos_018(36e-6, 0.18e-6),
            vdd_v: 1.8,
            bulk_switched,
        }
    }

    /// On-resistance at an absolute signal level `v_sig_v` (0..V_DD):
    /// the parallel combination of the two channels, each with its own
    /// gate drive and (for the PMOS, unless bulk-switched) body effect.
    pub fn r_on_at(&self, v_sig_v: f64) -> f64 {
        // NMOS: gate at VDD, source at the signal; bulk at ground.
        let n_vt = self.nmos.vt_at(v_sig_v);
        let n_ov = self.vdd_v - v_sig_v - n_vt;
        let rn = self.nmos.triode_resistance(n_ov);
        // PMOS: gate at 0, source at the signal; bulk at VDD unless
        // switched to the source.
        let p_vsb = if self.bulk_switched {
            0.0
        } else {
            self.vdd_v - v_sig_v
        };
        let p_vt = self.pmos.vt_at(p_vsb);
        let p_ov = v_sig_v - p_vt;
        let rp = self.pmos.triode_resistance(p_ov);
        match (rn.is_finite(), rp.is_finite()) {
            (true, true) => rn * rp / (rn + rp),
            (true, false) => rn,
            (false, true) => rp,
            (false, false) => f64::INFINITY,
        }
    }

    /// Fits the behavioral polynomial `R0·(1 + c1·v + c2·v² + c3·v³)`
    /// (as used by [`crate::switch::SwitchModel`]) to the device-level
    /// on-resistance over a differential signal swing of ±`swing_v`
    /// around mid-supply.
    ///
    /// Returns `(r0_ohm, c1, c2, c3)`. For a differential sampling
    /// network the common-mode sits at V_DD/2 and the differential signal
    /// `v` maps each side to `V_DD/2 ± v/2`; the effective resistance is
    /// the average of the two sides (charge flows through both).
    pub fn fit_r_on_polynomial(&self, swing_v: f64) -> (f64, f64, f64, f64) {
        assert!(swing_v > 0.0, "swing must be positive");
        let mid = self.vdd_v / 2.0;
        let r_diff = |v: f64| 0.5 * (self.r_on_at(mid + v / 2.0) + self.r_on_at(mid - v / 2.0));
        let r0 = r_diff(0.0);
        // Least-squares on a dense grid for the three shape coefficients.
        let samples = 41;
        let mut ata = [[0.0_f64; 3]; 3];
        let mut atb = [0.0_f64; 3];
        for i in 0..samples {
            let v = -swing_v + 2.0 * swing_v * i as f64 / (samples - 1) as f64;
            let y = r_diff(v) / r0 - 1.0;
            let basis = [v, v * v, v * v * v];
            for r in 0..3 {
                for c in 0..3 {
                    ata[r][c] += basis[r] * basis[c];
                }
                atb[r] += basis[r] * y;
            }
        }
        // Solve the 3x3 normal equations by Gaussian elimination.
        let mut m = [
            [ata[0][0], ata[0][1], ata[0][2], atb[0]],
            [ata[1][0], ata[1][1], ata[1][2], atb[1]],
            [ata[2][0], ata[2][1], ata[2][2], atb[2]],
        ];
        for col in 0..3 {
            let pivot = (col..3)
                .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
                .expect("nonempty range");
            m.swap(col, pivot);
            let p = m[col][col];
            assert!(p.abs() > 1e-30, "singular fit system");
            for row in 0..3 {
                if row != col {
                    let f = m[row][col] / p;
                    let pivot_row = m[col];
                    for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                        *cell -= f * pivot_row[k];
                    }
                }
            }
        }
        let c1 = m[0][3] / m[0][0];
        let c2 = m[1][3] / m[1][1];
        let c3 = m[2][3] / m[2][2];
        (r0, c1, c2, c3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vt_increases_with_body_bias() {
        let n = MosDevice::nmos_018(10e-6, 0.18e-6);
        assert_eq!(n.vt_at(0.0), n.vt0_v);
        assert!(n.vt_at(0.9) > n.vt_at(0.3));
    }

    #[test]
    fn triode_resistance_scales_with_size_and_overdrive() {
        let small = MosDevice::nmos_018(10e-6, 0.18e-6);
        let big = MosDevice::nmos_018(20e-6, 0.18e-6);
        assert!((small.triode_resistance(0.5) / big.triode_resistance(0.5) - 2.0).abs() < 1e-12);
        assert!(small.triode_resistance(0.8) < small.triode_resistance(0.4));
        assert_eq!(small.triode_resistance(-0.1), f64::INFINITY);
    }

    #[test]
    fn pmos_is_weaker_than_nmos_per_width() {
        let n = MosDevice::nmos_018(10e-6, 0.18e-6);
        let p = MosDevice::pmos_018(10e-6, 0.18e-6);
        assert!(p.triode_resistance(0.5) > 3.0 * n.triode_resistance(0.5));
    }

    #[test]
    fn v_ov_inverts_id_sat() {
        let n = MosDevice::nmos_018(50e-6, 0.18e-6);
        for &i in &[10e-6, 100e-6, 1e-3] {
            let v_ov = n.v_ov_for(i);
            assert!((n.id_sat(v_ov) - i).abs() / i < 1e-9, "i {i}");
        }
        assert_eq!(n.v_ov_for(0.0), 0.0);
    }

    #[test]
    fn gm_matches_two_id_over_vov() {
        let n = MosDevice::nmos_018(100e-6, 0.18e-6);
        let id = 1e-3;
        let gm = n.gm_at(id);
        let v_ov = n.v_ov_for(id);
        assert!((gm - 2.0 * id / v_ov).abs() / gm < 1e-12);
        // Monotone in current.
        assert!(n.gm_at(2e-3) > gm);
    }

    #[test]
    fn bulk_switching_lowers_pmos_resistance_mid_rail() {
        let conventional = TransmissionGate::paper_input_switch(false);
        let bulk = TransmissionGate::paper_input_switch(true);
        // At mid-rail (worst case for a TG) the bulk-switched gate wins.
        let mid = 0.9;
        assert!(bulk.r_on_at(mid) < conventional.r_on_at(mid));
    }

    #[test]
    fn tg_resistance_peaks_mid_rail() {
        let tg = TransmissionGate::paper_input_switch(true);
        let mid = tg.r_on_at(0.9);
        let low = tg.r_on_at(0.2);
        let high = tg.r_on_at(1.6);
        assert!(mid > low && mid > high, "mid {mid}, low {low}, high {high}");
    }

    #[test]
    fn polynomial_fit_reproduces_device_curve() {
        let tg = TransmissionGate::paper_input_switch(true);
        let (r0, c1, c2, c3) = tg.fit_r_on_polynomial(1.0);
        assert!(r0 > 10.0 && r0 < 1e4, "r0 {r0}");
        // The fit must track the device curve over the inner 90 % of the
        // swing (the cubic cannot follow the overdrive collapse at the
        // very edges — neither does the charge there matter, the tracking
        // phase spends almost no time at the extremes).
        let mid = tg.vdd_v / 2.0;
        for i in 0..19 {
            let v = -0.9 + 0.1 * i as f64;
            let device = 0.5 * (tg.r_on_at(mid + v / 2.0) + tg.r_on_at(mid - v / 2.0));
            let fit = r0 * (1.0 + c1 * v + c2 * v * v + c3 * v * v * v);
            assert!(
                (device - fit).abs() / device < 0.10,
                "v {v}: device {device} vs fit {fit}"
            );
        }
    }

    #[test]
    fn bulk_switching_reduces_even_order_curvature() {
        let conventional = TransmissionGate::paper_input_switch(false);
        let bulk = TransmissionGate::paper_input_switch(true);
        let (_, _, c2_conv, _) = conventional.fit_r_on_polynomial(1.0);
        let (_, _, c2_bulk, _) = bulk.fit_r_on_polynomial(1.0);
        // The paper's claim at device level: less signal dependence.
        assert!(
            c2_bulk.abs() < c2_conv.abs(),
            "bulk {c2_bulk} vs conv {c2_conv}"
        );
    }

    #[test]
    fn derived_switch_constants_are_same_order_as_behavioral_preset() {
        use crate::switch::{SwitchModel, SwitchTopology};
        let tg = TransmissionGate::paper_input_switch(true);
        let (r0, _, _, _) = tg.fit_r_on_polynomial(1.0);
        let preset = SwitchModel::nominal(SwitchTopology::TransmissionGate {
            bulk_switched: true,
        });
        // Device-derived R0 and the calibrated behavioral constant agree
        // to within a factor of ~3 (sizing freedom).
        let ratio = r0 / preset.r_on_ohm;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }
}
