//! Latched comparator model for the ADSC and the flash backend.
//!
//! The pipeline's sub-converters are built from dynamic latched comparators.
//! The behaviorally relevant imperfections are:
//!
//! * **static offset** — a per-device random threshold shift drawn at
//!   "fabrication" time. The 1.5-bit architecture tolerates offsets up to
//!   ±V_REF/4 thanks to the half-bit redundancy, which is why the paper can
//!   use small, low-power comparators;
//! * **input-referred noise** — a fresh Gaussian error per decision;
//! * **hysteresis** — a small dependence of the threshold on the previous
//!   decision, typical of regenerative latches without reset;
//! * **metastability** — inputs within a vanishing window of the threshold
//!   resolve to an arbitrary value. Modelled as a window in which the
//!   decision is taken from the noise stream.

use crate::noise::NoiseSource;

/// Statistical description of a comparator design.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ComparatorSpec {
    /// One-sigma static offset in volts.
    pub offset_sigma_v: f64,
    /// RMS input-referred noise per decision, volts.
    pub noise_rms_v: f64,
    /// Hysteresis half-width in volts (threshold moves by ±this toward the
    /// previous decision).
    pub hysteresis_v: f64,
    /// Metastability window half-width in volts.
    pub metastable_window_v: f64,
}

impl ComparatorSpec {
    /// A perfectly ideal comparator.
    pub fn ideal() -> Self {
        Self {
            offset_sigma_v: 0.0,
            noise_rms_v: 0.0,
            hysteresis_v: 0.0,
            metastable_window_v: 0.0,
        }
    }

    /// A typical small dynamic latch in 0.18 µm: ~10 mV offset sigma,
    /// ~0.5 mV noise, negligible hysteresis and metastability window.
    pub fn dynamic_latch() -> Self {
        Self {
            offset_sigma_v: 10e-3,
            noise_rms_v: 0.5e-3,
            hysteresis_v: 0.1e-3,
            metastable_window_v: 1e-9,
        }
    }

    /// Fabricates one comparator instance, drawing its static offset.
    pub fn fabricate(&self, threshold_v: f64, noise: &mut NoiseSource) -> Comparator {
        Comparator {
            threshold_v,
            offset_v: noise.gaussian(0.0, self.offset_sigma_v),
            spec: *self,
            last_decision: false,
        }
    }
}

impl Default for ComparatorSpec {
    fn default() -> Self {
        Self::dynamic_latch()
    }
}

/// A fabricated comparator with a concrete offset.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Comparator {
    threshold_v: f64,
    offset_v: f64,
    spec: ComparatorSpec,
    last_decision: bool,
}

impl Comparator {
    /// An ideal comparator at the given threshold.
    pub fn ideal(threshold_v: f64) -> Self {
        ComparatorSpec::ideal().fabricate(threshold_v, &mut NoiseSource::from_seed(0))
    }

    /// The design threshold (without offset), volts.
    pub fn threshold_v(&self) -> f64 {
        self.threshold_v
    }

    /// The fabricated static offset, volts.
    pub fn offset_v(&self) -> f64 {
        self.offset_v
    }

    /// Overrides the static offset (used by fault-injection tests).
    pub fn set_offset_v(&mut self, offset_v: f64) {
        self.offset_v = offset_v;
    }

    /// Makes one clocked decision: is `input_v` above the (noisy, offset,
    /// hysteretic) threshold?
    pub fn decide(&mut self, input_v: f64, noise: &mut NoiseSource) -> bool {
        let hysteresis = if self.last_decision {
            -self.spec.hysteresis_v
        } else {
            self.spec.hysteresis_v
        };
        let effective_threshold = self.threshold_v + self.offset_v + hysteresis;
        let deterministic = input_v - effective_threshold;
        // Hot-path draw skip: when the deterministic overdrive sits more
        // than 8σ outside the metastability window, a noise draw cannot
        // flip the outcome (P < 1e-15, far below the converter's noise
        // floor), so the noise stream is left untouched. In a 1.5-bit
        // pipeline the vast majority of decisions are overwhelming, which
        // removes most per-sample Gaussian draws from `convert_one`.
        let margin = 8.0 * self.spec.noise_rms_v + self.spec.metastable_window_v;
        let decision = if deterministic.abs() > margin {
            deterministic > 0.0
        } else {
            let overdrive = deterministic + noise.gaussian(0.0, self.spec.noise_rms_v);
            if overdrive.abs() < self.spec.metastable_window_v {
                // Inside the metastable window the latch resolves arbitrarily.
                noise.uniform(0.0, 1.0) > 0.5
            } else {
                overdrive > 0.0
            }
        };
        self.last_decision = decision;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_is_exact() {
        let mut c = Comparator::ideal(0.25);
        let mut n = NoiseSource::from_seed(1);
        assert!(c.decide(0.2501, &mut n));
        assert!(!c.decide(0.2499, &mut n));
    }

    #[test]
    fn offset_shifts_threshold() {
        let mut c = Comparator::ideal(0.0);
        c.set_offset_v(0.05);
        let mut n = NoiseSource::from_seed(2);
        assert!(!c.decide(0.04, &mut n));
        assert!(c.decide(0.06, &mut n));
    }

    #[test]
    fn offset_statistics_follow_spec() {
        let spec = ComparatorSpec {
            offset_sigma_v: 10e-3,
            ..ComparatorSpec::ideal()
        };
        let mut n = NoiseSource::from_seed(3);
        let count = 20_000;
        let var: f64 = (0..count)
            .map(|_| spec.fabricate(0.0, &mut n).offset_v().powi(2))
            .sum::<f64>()
            / count as f64;
        assert!((var.sqrt() - 10e-3).abs() < 0.5e-3);
    }

    #[test]
    fn noise_makes_marginal_decisions_random() {
        let spec = ComparatorSpec {
            noise_rms_v: 1e-3,
            ..ComparatorSpec::ideal()
        };
        let mut n = NoiseSource::from_seed(4);
        let mut c = spec.fabricate(0.0, &mut n);
        let highs = (0..1000).filter(|_| c.decide(0.0, &mut n)).count();
        // Exactly at threshold with noise: roughly half the decisions high.
        assert!((300..700).contains(&highs), "highs {highs}");
    }

    #[test]
    fn hysteresis_favors_previous_decision() {
        let spec = ComparatorSpec {
            hysteresis_v: 5e-3,
            ..ComparatorSpec::ideal()
        };
        let mut n = NoiseSource::from_seed(5);
        let mut c = spec.fabricate(0.0, &mut n);
        // Drive high first; a small negative input then still reads high
        // because the threshold moved down.
        assert!(c.decide(0.1, &mut n));
        assert!(c.decide(-0.003, &mut n));
        // Drive low firmly; the same small input now reads low.
        assert!(!c.decide(-0.1, &mut n));
        assert!(!c.decide(0.003, &mut n));
    }

    #[test]
    fn overwhelming_overdrive_skips_the_noise_draw() {
        let spec = ComparatorSpec::dynamic_latch();
        let mut n = NoiseSource::from_seed(9);
        let mut c = spec.fabricate(0.0, &mut n);
        let mut untouched = n.clone();
        // Overdrives far beyond 8σ decide without consuming the stream.
        assert!(c.decide(0.5, &mut n));
        assert!(!c.decide(-0.5, &mut n));
        assert_eq!(
            n.gaussian(0.0, 1.0).to_bits(),
            untouched.gaussian(0.0, 1.0).to_bits(),
            "certain decisions must leave the noise stream untouched"
        );
    }

    #[test]
    fn decisions_are_reproducible_for_same_seed() {
        let spec = ComparatorSpec::dynamic_latch();
        let run = |seed| {
            let mut n = NoiseSource::from_seed(seed);
            let mut c = spec.fabricate(0.1, &mut n);
            (0..64)
                .map(|i| c.decide((i as f64 / 64.0) - 0.5, &mut n))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
