//! Capacitor models: absolute process spread, local matching, and kT/C noise.
//!
//! The paper's process is *pure digital* 0.18 µm CMOS, so the sampling
//! capacitors C1/C2 are **parasitic metal capacitors** rather than precision
//! MiM/poly caps. Two statistical effects follow and both are modelled here:
//!
//! * **Absolute spread** — the absolute value of a metal finger capacitor
//!   varies by ±10–20 % die to die. The paper's SC bias generator exists
//!   precisely to track this spread (Eq. 1 makes the bias current
//!   proportional to an on-chip capacitor, so `GBW ∝ C/C` cancels).
//! * **Local mismatch** — two nominally identical capacitors on one die
//!   differ by a small random amount (σ fractions of a percent), which sets
//!   the MDAC gain/DAC errors and ultimately the converter's INL/DNL.

use crate::noise::NoiseSource;
use crate::units::ktc_noise_rms;

/// Statistical description of a capacitor before fabrication.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacitorSpec {
    /// Nominal (drawn) capacitance in farads.
    pub nominal_f: f64,
    /// One-sigma *absolute* process spread, relative (e.g. 0.07 = 7 %).
    /// Fully correlated across one die.
    pub absolute_sigma_rel: f64,
    /// One-sigma *local* mismatch, relative (e.g. 0.0005 = 0.05 %).
    /// Independent per device.
    pub matching_sigma_rel: f64,
}

impl CapacitorSpec {
    /// Creates a spec with the given nominal value and spread parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_f` is not strictly positive or a sigma is negative.
    pub fn new(nominal_f: f64, absolute_sigma_rel: f64, matching_sigma_rel: f64) -> Self {
        assert!(nominal_f > 0.0, "nominal capacitance must be positive");
        assert!(absolute_sigma_rel >= 0.0 && matching_sigma_rel >= 0.0);
        Self {
            nominal_f,
            absolute_sigma_rel,
            matching_sigma_rel,
        }
    }

    /// An ideal capacitor: exact value, no spread, no mismatch.
    pub fn ideal(nominal_f: f64) -> Self {
        Self::new(nominal_f, 0.0, 0.0)
    }

    /// Typical metal-finger capacitor in a pure digital process: 15 %
    /// absolute spread, 0.05 % matching.
    pub fn digital_metal(nominal_f: f64) -> Self {
        Self::new(nominal_f, 0.15, 0.0005)
    }

    /// Fabricates one die's instance of this capacitor.
    ///
    /// `die_factor` is the shared absolute-spread multiplier for the whole
    /// die (draw it once per die with [`CapacitorSpec::draw_die_factor`]);
    /// the local mismatch is drawn per device from `noise`.
    pub fn fabricate(&self, die_factor: f64, noise: &mut NoiseSource) -> Capacitor {
        let local = noise.mismatch_factor(self.matching_sigma_rel);
        Capacitor {
            value_f: self.nominal_f * die_factor * local,
            nominal_f: self.nominal_f,
        }
    }

    /// Draws the die-wide absolute spread factor for this spec's technology.
    pub fn draw_die_factor(&self, noise: &mut NoiseSource) -> f64 {
        noise.mismatch_factor(self.absolute_sigma_rel)
    }
}

/// A fabricated capacitor with a concrete value.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Capacitor {
    /// Actual fabricated value in farads.
    pub value_f: f64,
    /// The drawn (nominal) value in farads.
    pub nominal_f: f64,
}

impl Capacitor {
    /// An exactly-nominal capacitor.
    pub fn ideal(value_f: f64) -> Self {
        assert!(value_f > 0.0, "capacitance must be positive");
        Self {
            value_f,
            nominal_f: value_f,
        }
    }

    /// Relative error of this instance versus nominal.
    pub fn relative_error(&self) -> f64 {
        self.value_f / self.nominal_f - 1.0
    }

    /// RMS kT/C noise frozen on this capacitor at each sampling event, volts.
    pub fn ktc_rms_v(&self) -> f64 {
        ktc_noise_rms(self.value_f)
    }

    /// Draws one sampled-noise voltage for a sampling event on this cap.
    pub fn sample_ktc_noise(&self, noise: &mut NoiseSource) -> f64 {
        noise.gaussian(0.0, self.ktc_rms_v())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_cap_has_no_error() {
        let c = Capacitor::ideal(1e-12);
        assert_eq!(c.relative_error(), 0.0);
    }

    #[test]
    fn ideal_spec_fabricates_exact() {
        let spec = CapacitorSpec::ideal(2e-12);
        let mut n = NoiseSource::from_seed(1);
        let die = spec.draw_die_factor(&mut n);
        assert_eq!(die, 1.0);
        let c = spec.fabricate(die, &mut n);
        assert_eq!(c.value_f, 2e-12);
    }

    #[test]
    fn absolute_spread_is_shared_matching_is_not() {
        let spec = CapacitorSpec::new(1e-12, 0.15, 0.0005);
        let mut n = NoiseSource::from_seed(42);
        let die = spec.draw_die_factor(&mut n);
        let c1 = spec.fabricate(die, &mut n);
        let c2 = spec.fabricate(die, &mut n);
        // Both see the same die factor...
        let shared1 = c1.value_f / (1e-12);
        let shared2 = c2.value_f / (1e-12);
        // ...and differ only by the (small) local term.
        assert!((shared1 / shared2 - 1.0).abs() < 0.01);
        assert_ne!(c1.value_f, c2.value_f);
    }

    #[test]
    fn matching_statistics() {
        let spec = CapacitorSpec::new(1e-12, 0.0, 0.001);
        let mut n = NoiseSource::from_seed(5);
        let count = 50_000;
        let var: f64 = (0..count)
            .map(|_| spec.fabricate(1.0, &mut n).relative_error().powi(2))
            .sum::<f64>()
            / count as f64;
        assert!((var.sqrt() - 0.001).abs() < 5e-5, "sigma {}", var.sqrt());
    }

    #[test]
    fn ktc_noise_matches_formula() {
        let c = Capacitor::ideal(4e-12);
        assert!((c.ktc_rms_v() - ktc_noise_rms(4e-12)).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let _ = Capacitor::ideal(-1e-12);
    }
}
