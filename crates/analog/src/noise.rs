//! Seeded Gaussian noise generation for Monte-Carlo device spread and
//! per-sample circuit noise.
//!
//! Everything stochastic in the simulator flows through [`NoiseSource`], a
//! thin Box–Muller Gaussian sampler over a seeded [`rand::rngs::StdRng`].
//! Two properties matter for a reproduction harness:
//!
//! 1. **Determinism** — the same seed produces the same die, the same noise
//!    record, and therefore the same measured SNDR, which makes regression
//!    tests against paper numbers meaningful.
//! 2. **Independence** — independent sub-systems are given independent
//!    sub-sources (see [`NoiseSource::fork`]) so that adding a noise term to
//!    one block does not silently re-phase the noise of another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic Gaussian/uniform noise source.
///
/// Construct one per simulation with [`NoiseSource::from_seed`] and hand
/// independent children to sub-blocks with [`NoiseSource::fork`].
///
/// ```
/// use adc_analog::noise::NoiseSource;
/// let mut a = NoiseSource::from_seed(42);
/// let mut b = NoiseSource::from_seed(42);
/// assert_eq!(a.gaussian(0.0, 1.0).to_bits(), b.gaussian(0.0, 1.0).to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: StdRng,
    /// Cached second Box–Muller deviate.
    spare: Option<f64>,
}

impl NoiseSource {
    /// Creates a source from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Derives an independent child source.
    ///
    /// The child stream is a deterministic function of the parent state, but
    /// statistically independent of subsequent draws from the parent.
    pub fn fork(&mut self) -> Self {
        Self::from_seed(self.fork_seed())
    }

    /// Draws a standard-normal deviate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Derives a seed for an independent child stream: the u64 a
    /// [`NoiseSource::fork`] would build its child from. Used to hand an
    /// independent stream to a *different* generator type (the
    /// [`crate::stripe::SampleNoise`] per-sample engine) without
    /// perturbing this source's own draw sequence any differently than a
    /// `fork` would.
    pub fn fork_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Draws a normal deviate with the given mean and standard deviation.
    ///
    /// A zero or negative `sigma` returns `mean` exactly, which lets callers
    /// turn a noise mechanism off by setting its sigma to zero.
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            mean
        } else {
            mean + sigma * self.standard_normal()
        }
    }

    /// Draws a uniform deviate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi})");
        if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        }
    }

    /// Draws a relative mismatch factor `1 + N(0, sigma_rel)`.
    ///
    /// This is the standard way device values (capacitors, mirror ratios)
    /// deviate from nominal across a die.
    pub fn mismatch_factor(&mut self, sigma_rel: f64) -> f64 {
        1.0 + self.gaussian(0.0, sigma_rel)
    }

    /// Draws a raw 64-bit value (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Sampling-clock aperture jitter.
///
/// The paper attributes the SNR roll-off above 100 MHz input frequency to
/// clock jitter. The model is the textbook one: the sampling instant is
/// perturbed by a Gaussian error `δt ~ N(0, σ_t)`; for a signal with slope
/// `dV/dt` at the nominal instant the resulting voltage error is
/// `dV/dt · δt`, giving `SNR_jitter = −20·log10(2π·f_in·σ_t)` for a full-scale
/// sine.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ApertureJitter {
    /// RMS aperture uncertainty in seconds.
    pub sigma_s: f64,
}

impl ApertureJitter {
    /// Creates a jitter model with the given RMS value in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_s` is negative.
    pub fn new(sigma_s: f64) -> Self {
        assert!(sigma_s >= 0.0, "jitter must be non-negative, got {sigma_s}");
        Self { sigma_s }
    }

    /// A jitter-free clock.
    pub fn none() -> Self {
        Self { sigma_s: 0.0 }
    }

    /// Draws one sampling-instant error in seconds.
    pub fn sample(&self, noise: &mut NoiseSource) -> f64 {
        noise.gaussian(0.0, self.sigma_s)
    }

    /// The SNR limit (dB) this jitter imposes on a full-scale sine at
    /// `f_in_hz`, per `SNR = −20·log10(2π·f·σ_t)`.
    ///
    /// Returns positive infinity for zero jitter or zero frequency.
    pub fn snr_limit_db(&self, f_in_hz: f64) -> f64 {
        let x = 2.0 * std::f64::consts::PI * f_in_hz * self.sigma_s;
        if x <= 0.0 {
            f64::INFINITY
        } else {
            -20.0 * x.log10()
        }
    }
}

impl Default for ApertureJitter {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = NoiseSource::from_seed(7);
        let mut b = NoiseSource::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::from_seed(1);
        let mut b = NoiseSource::from_seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut n = NoiseSource::from_seed(123);
        let count = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..count {
            let x = n.gaussian(3.0, 2.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / count as f64;
        let var = sum2 / count as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zero_sigma_returns_mean() {
        let mut n = NoiseSource::from_seed(9);
        assert_eq!(n.gaussian(1.5, 0.0), 1.5);
        assert_eq!(n.gaussian(1.5, -1.0), 1.5);
    }

    #[test]
    fn forked_children_are_independent_streams() {
        let mut parent = NoiseSource::from_seed(55);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        // The children start from different derived seeds.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut n = NoiseSource::from_seed(77);
        for _ in 0..1000 {
            let x = n.uniform(-0.25, 0.75);
            assert!((-0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn jitter_snr_limit_matches_textbook() {
        // 1 ps rms at 100 MHz: SNR = -20 log10(2π·1e8·1e-12) ≈ 64.0 dB
        let j = ApertureJitter::new(1e-12);
        let snr = j.snr_limit_db(100e6);
        assert!((snr - 64.03).abs() < 0.05, "snr {snr}");
    }

    #[test]
    fn zero_jitter_is_infinite_snr() {
        assert_eq!(ApertureJitter::none().snr_limit_db(1e9), f64::INFINITY);
    }

    #[test]
    fn fork_seed_matches_fork() {
        let mut a = NoiseSource::from_seed(31);
        let mut b = NoiseSource::from_seed(31);
        let mut forked = a.fork();
        let mut seeded = NoiseSource::from_seed(b.fork_seed());
        assert_eq!(
            forked.gaussian(0.0, 1.0).to_bits(),
            seeded.gaussian(0.0, 1.0).to_bits()
        );
    }

    #[test]
    fn jitter_sampling_statistics() {
        let j = ApertureJitter::new(2e-12);
        let mut n = NoiseSource::from_seed(3);
        let count = 100_000;
        let var: f64 = (0..count).map(|_| j.sample(&mut n).powi(2)).sum::<f64>() / count as f64;
        assert!((var.sqrt() - 2e-12).abs() < 0.05e-12);
    }
}
