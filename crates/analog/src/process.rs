//! Process corners and operating conditions.
//!
//! A pure-digital CMOS flow gives the analog designer no tightened device
//! spec; the converter must work across corners. The corner model applies
//! multiplicative shifts to the handful of quantities the behavioral models
//! consume: switch on-resistance, transconductance per ampere, and
//! capacitance. The SC bias generator's whole point (Eq. 1) is that the
//! bias current *tracks* the capacitance corner, so `GBW = gm/(2πC)` with
//! `gm ∝ I ∝ C` stays put — the corner tests in the `adc-pipeline` crate
//! verify that cancellation end to end.

/// Named process corners.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum ProcessCorner {
    /// Typical NMOS / typical PMOS, nominal capacitance.
    #[default]
    Typical,
    /// Fast transistors, capacitors at the low end of their spread.
    Fast,
    /// Slow transistors, capacitors at the high end of their spread.
    Slow,
}

impl ProcessCorner {
    /// Multiplier on switch on-resistance.
    pub fn r_on_factor(&self) -> f64 {
        match self {
            ProcessCorner::Typical => 1.0,
            ProcessCorner::Fast => 0.8,
            ProcessCorner::Slow => 1.3,
        }
    }

    /// Multiplier on transconductance at a fixed bias current
    /// (mobility/V_T shift folded into an effective 1/V_ov change).
    pub fn gm_factor(&self) -> f64 {
        match self {
            ProcessCorner::Typical => 1.0,
            ProcessCorner::Fast => 1.15,
            ProcessCorner::Slow => 0.85,
        }
    }

    /// Multiplier on absolute capacitance (metal-finger caps in a digital
    /// process spread by ±15 % or so; the corners bound that).
    pub fn cap_factor(&self) -> f64 {
        match self {
            ProcessCorner::Typical => 1.0,
            ProcessCorner::Fast => 0.85,
            ProcessCorner::Slow => 1.15,
        }
    }

    /// All corners, for sweep harnesses.
    pub fn all() -> [ProcessCorner; 3] {
        [
            ProcessCorner::Typical,
            ProcessCorner::Fast,
            ProcessCorner::Slow,
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ProcessCorner::Typical => "TT",
            ProcessCorner::Fast => "FF",
            ProcessCorner::Slow => "SS",
        }
    }
}

/// Environmental operating point: temperature and supply.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperatingConditions {
    /// Die temperature, °C.
    pub temp_c: f64,
    /// Supply voltage, volts.
    pub vdd_v: f64,
    /// Process corner.
    pub corner: ProcessCorner,
}

impl OperatingConditions {
    /// Nominal conditions for the paper's design: 27 °C, 1.8 V, typical.
    pub fn nominal() -> Self {
        Self {
            temp_c: 27.0,
            vdd_v: 1.8,
            corner: ProcessCorner::Typical,
        }
    }

    /// Creates conditions at a given corner, nominal temperature/supply.
    pub fn at_corner(corner: ProcessCorner) -> Self {
        Self {
            corner,
            ..Self::nominal()
        }
    }
}

impl Default for OperatingConditions {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_corner_is_unity() {
        let c = ProcessCorner::Typical;
        assert_eq!(c.r_on_factor(), 1.0);
        assert_eq!(c.gm_factor(), 1.0);
        assert_eq!(c.cap_factor(), 1.0);
    }

    #[test]
    fn slow_corner_is_pessimistic_everywhere() {
        let s = ProcessCorner::Slow;
        assert!(s.r_on_factor() > 1.0);
        assert!(s.gm_factor() < 1.0);
        assert!(s.cap_factor() > 1.0);
    }

    #[test]
    fn fast_corner_is_optimistic_everywhere() {
        let f = ProcessCorner::Fast;
        assert!(f.r_on_factor() < 1.0);
        assert!(f.gm_factor() > 1.0);
        assert!(f.cap_factor() < 1.0);
    }

    #[test]
    fn all_lists_three_distinct_corners() {
        let all = ProcessCorner::all();
        assert_eq!(all.len(), 3);
        let labels: std::collections::HashSet<_> = all.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn nominal_conditions_match_paper() {
        let c = OperatingConditions::nominal();
        assert_eq!(c.vdd_v, 1.8);
        assert_eq!(c.corner, ProcessCorner::Typical);
    }
}
