//! Clock receiver and local phase generation.
//!
//! The paper's bench filtered the *clock* as carefully as the signal
//! (§4), because clock purity becomes aperture jitter; and on chip each
//! stage generates its own two-phase clocks locally (§3) so switch
//! sequencing needs no global non-overlap margin. This module models
//! both ends:
//!
//! * [`ClockReceiver`] — squares up the external sine clock; its additive
//!   input noise converts to timing jitter by the slope of the clock at
//!   the threshold crossing, `σ_t = σ_v / (dV/dt)` — so a *larger* clock
//!   amplitude or a *higher* clock frequency means less jitter from the
//!   same noise;
//! * [`LocalPhaseGenerator`] — derives each stage's φ1/φ1B/φ2 edges from
//!   gate delays; the sampling switch S1B opens *before* S1 (bottom-plate
//!   sampling), and φ2 rises only after φ1 has fallen — by construction,
//!   not by global margin.

use crate::noise::ApertureJitter;

/// The chip's clock input buffer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClockReceiver {
    /// External clock amplitude, volts peak (sine drive assumed).
    pub amplitude_v: f64,
    /// Clock frequency, hertz.
    pub frequency_hz: f64,
    /// RMS noise referred to the receiver input (source + buffer), volts.
    pub input_noise_rms_v: f64,
    /// Additional jitter added by the on-chip distribution, seconds RMS.
    pub distribution_jitter_s: f64,
}

impl ClockReceiver {
    /// A clean bench setup: 1 V peak sine, 100 µV receiver noise, 0.2 ps
    /// distribution jitter.
    pub fn bench_quality(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0);
        Self {
            amplitude_v: 1.0,
            frequency_hz,
            input_noise_rms_v: 100e-6,
            distribution_jitter_s: 0.2e-12,
        }
    }

    /// Slope of the sine clock at its zero crossing, volts/second.
    pub fn crossing_slope_v_per_s(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.frequency_hz * self.amplitude_v
    }

    /// The jitter this receiver contributes: slope-converted voltage
    /// noise, RSS-combined with the distribution term.
    pub fn to_jitter(&self) -> ApertureJitter {
        let slope = self.crossing_slope_v_per_s();
        let from_noise = if slope > 0.0 {
            self.input_noise_rms_v / slope
        } else {
            f64::INFINITY
        };
        ApertureJitter::new(
            (from_noise * from_noise + self.distribution_jitter_s * self.distribution_jitter_s)
                .sqrt(),
        )
    }
}

/// The per-stage local clock generator (paper §3): edge times of the
/// three stage clocks within one period, derived from gate delays.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LocalPhaseGenerator {
    /// Conversion clock period, seconds.
    pub period_s: f64,
    /// One logic gate delay, seconds.
    pub gate_delay_s: f64,
    /// Gates between the master edge and the early sampling-switch (S1B)
    /// falling edge.
    pub s1b_path_gates: u32,
    /// Additional gates to the main switch (S1) falling edge — the
    /// bottom-plate sampling interval.
    pub s1_extra_gates: u32,
    /// Gates from S1 falling to φ2 (S2) rising — the locally guaranteed
    /// sequencing that replaces the global non-overlap margin.
    pub s2_extra_gates: u32,
}

/// Edge times of one stage's clocks within a period, seconds from the
/// master rising edge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseEdges {
    /// S1B (sampling switch) opens — the actual sampling instant.
    pub s1b_falls_s: f64,
    /// S1 (signal switches) open.
    pub s1_falls_s: f64,
    /// S2 (amplification switches) close.
    pub s2_rises_s: f64,
    /// End of the amplification phase (the next stage samples; the
    /// period wraps here).
    pub phase_end_s: f64,
}

impl LocalPhaseGenerator {
    /// A 0.18 µm implementation: ~60 ps gates, 2-gate S1B path, 2 more to
    /// S1, 2 more to S2.
    pub fn typical_018(period_s: f64) -> Self {
        assert!(period_s > 0.0);
        Self {
            period_s,
            gate_delay_s: 60e-12,
            s1b_path_gates: 2,
            s1_extra_gates: 2,
            s2_extra_gates: 2,
        }
    }

    /// Computes the edge times.
    pub fn edges(&self) -> PhaseEdges {
        let half = self.period_s / 2.0;
        let s1b = half + f64::from(self.s1b_path_gates) * self.gate_delay_s;
        let s1 = s1b + f64::from(self.s1_extra_gates) * self.gate_delay_s;
        let s2 = s1 + f64::from(self.s2_extra_gates) * self.gate_delay_s;
        PhaseEdges {
            s1b_falls_s: s1b,
            s1_falls_s: s1,
            s2_rises_s: s2,
            phase_end_s: self.period_s,
        }
    }

    /// The amplification (settling) time this scheme yields, seconds:
    /// from φ2 rising to the end of the phase. Compare with a
    /// conventional scheme that inserts a global non-overlap margin
    /// *before* φ2 as well as after φ1.
    pub fn settle_time_s(&self) -> f64 {
        let e = self.edges();
        e.phase_end_s - e.s2_rises_s
    }

    /// The sequencing guarantee: S2 rises strictly after S1 falls.
    pub fn sequencing_ok(&self) -> bool {
        let e = self.edges();
        e.s2_rises_s > e.s1_falls_s && e.s1_falls_s > e.s1b_falls_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_clock_amplitude_means_less_jitter() {
        let small = ClockReceiver {
            amplitude_v: 0.2,
            ..ClockReceiver::bench_quality(110e6)
        };
        let large = ClockReceiver::bench_quality(110e6);
        assert!(large.to_jitter().sigma_s < small.to_jitter().sigma_s);
    }

    #[test]
    fn jitter_formula_matches_slope_conversion() {
        let rx = ClockReceiver {
            amplitude_v: 1.0,
            frequency_hz: 110e6,
            input_noise_rms_v: 100e-6,
            distribution_jitter_s: 0.0,
        };
        let slope = 2.0 * std::f64::consts::PI * 110e6;
        let expected = 100e-6 / slope;
        assert!((rx.to_jitter().sigma_s - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn bench_quality_clock_supports_the_papers_jitter_budget() {
        // The nominal design assumes 0.45 ps rms; a bench-quality clock
        // receiver delivers comfortably less.
        let rx = ClockReceiver::bench_quality(110e6);
        assert!(
            rx.to_jitter().sigma_s < 0.45e-12,
            "{}",
            rx.to_jitter().sigma_s
        );
    }

    #[test]
    fn distribution_jitter_adds_in_rss() {
        let mut rx = ClockReceiver::bench_quality(110e6);
        rx.input_noise_rms_v = 0.0;
        assert!((rx.to_jitter().sigma_s - 0.2e-12).abs() < 1e-18);
    }

    #[test]
    fn local_phases_sequence_correctly() {
        let gen = LocalPhaseGenerator::typical_018(1.0 / 110e6);
        assert!(gen.sequencing_ok());
        let e = gen.edges();
        // Bottom-plate sampling: S1B strictly first.
        assert!(e.s1b_falls_s < e.s1_falls_s);
        assert!(e.s1_falls_s < e.s2_rises_s);
    }

    #[test]
    fn settle_time_loses_only_gate_delays_not_a_margin() {
        let period = 1.0 / 110e6;
        let gen = LocalPhaseGenerator::typical_018(period);
        let lost = period / 2.0 - gen.settle_time_s();
        // 6 gates × 60 ps = 360 ps lost — versus the ≥500 ps a global
        // non-overlap margin would cost on top.
        assert!((lost - 360e-12).abs() < 1e-15, "lost {lost}");
        assert!(lost < 500e-12);
    }

    #[test]
    fn edges_scale_with_period_but_delays_do_not() {
        let fast = LocalPhaseGenerator::typical_018(1.0 / 200e6);
        let slow = LocalPhaseGenerator::typical_018(1.0 / 20e6);
        let lost_fast = fast.period_s / 2.0 - fast.settle_time_s();
        let lost_slow = slow.period_s / 2.0 - slow.settle_time_s();
        // Fixed gate delays: same absolute loss, bigger relative cost at
        // speed — the high-rate cliff's root cause.
        assert!((lost_fast - lost_slow).abs() < 1e-18);
        assert!(lost_fast / fast.settle_time_s() > lost_slow / slow.settle_time_s());
    }
}
