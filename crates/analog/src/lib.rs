//! # adc-analog
//!
//! Behavioral analog circuit component models for data-converter
//! simulation: the substrate layer of the DATE 2004 "97 mW 110 MS/s 12b
//! Pipeline ADC" reproduction.
//!
//! The paper's converter is silicon; this crate provides the *model zoo*
//! that lets the rest of the workspace re-create its measured behaviour
//! without a fab:
//!
//! * [`opamp`] — the two-stage Miller residue amplifier: finite gain,
//!   bias-dependent bandwidth, slew limiting, swing clipping, noise;
//! * [`switch`] — transmission gates with bulk switching (the paper's
//!   low-voltage trick), NMOS-only sampling switches, and bootstrapped
//!   switches for comparison, all with signal-dependent on-resistance;
//! * [`capacitor`] — parasitic-metal capacitors with absolute spread and
//!   local mismatch, plus kT/C noise;
//! * [`comparator`] — latched comparators with offset/noise/hysteresis;
//! * [`bandgap`] — the band-gap reference and the buffered reference
//!   distribution;
//! * [`noise`] — deterministic seeded Gaussian noise and aperture jitter;
//! * [`stripe`] — the SplitMix64 + polynomial Box–Muller per-sample
//!   noise engine the conversion hot path draws from, laid out for
//!   lane-striped (vectorizable) generation;
//! * [`process`] — corners and operating conditions;
//! * [`units`] — constants and dB helpers shared by the whole workspace.
//!
//! Everything is deterministic given a seed, so full-converter measurements
//! regress exactly.
//!
//! ```
//! use adc_analog::noise::NoiseSource;
//! use adc_analog::opamp::{OpAmp, OpAmpSpec};
//!
//! // An opamp biased at 1 mA driving 4 pF settles a 0.5 V step:
//! let amp = OpAmp::new(OpAmpSpec::miller_two_stage(), 1e-3, 4e-12);
//! let out = amp.settle(0.5, 0.0, 6e-9, 0.5);
//! assert!((out - 0.5).abs() < 1e-3);
//!
//! // Noise is reproducible:
//! let mut n = NoiseSource::from_seed(1);
//! let a = n.gaussian(0.0, 1e-3);
//! let mut m = NoiseSource::from_seed(1);
//! assert_eq!(a, m.gaussian(0.0, 1e-3));
//! ```

pub mod bandgap;
pub mod capacitor;
pub mod clockgen;
pub mod comparator;
pub mod mos;
pub mod noise;
pub mod opamp;
pub mod process;
pub mod sc;
pub mod stripe;
pub mod switch;
pub mod twopole;
pub mod units;

pub use bandgap::{Bandgap, ReferenceBuffer};
pub use capacitor::{Capacitor, CapacitorSpec};
pub use clockgen::{ClockReceiver, LocalPhaseGenerator, PhaseEdges};
pub use comparator::{Comparator, ComparatorSpec};
pub use mos::{MosDevice, MosPolarity, TransmissionGate};
pub use noise::{ApertureJitter, NoiseSource};
pub use opamp::{OpAmp, OpAmpSpec};
pub use process::{OperatingConditions, ProcessCorner};
pub use sc::{equivalent_resistance, ScBiasLoop, SwitchedCapBranch};
pub use stripe::{NormalBlock, SampleNoise};
pub use switch::{SamplingNetwork, SwitchModel, SwitchTopology};
pub use twopole::TwoPoleAmp;
