//! Band-gap voltage reference and reference buffer models.
//!
//! The pipeline chain receives its reference voltages, common-mode voltage,
//! and the bias-generator reference `V_BIAS` from on-chip circuitry derived
//! from a band-gap (paper §2). The paper highlights that `V_BIAS` is "near
//! independent of variations in process parameters, temperature and supply
//! voltage" — which is exactly what makes Eq. 1 a *current* that tracks only
//! `C_B · f_CR`.

use crate::noise::NoiseSource;

/// A curvature-compensated band-gap voltage generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bandgap {
    /// Output voltage at the nominal temperature and supply, volts.
    pub v_nominal_v: f64,
    /// Residual linear temperature coefficient, volts per kelvin.
    pub temp_coeff_v_per_k: f64,
    /// Residual curvature, volts per kelvin².
    pub curvature_v_per_k2: f64,
    /// Supply sensitivity (line regulation), volts per volt of supply.
    pub supply_sensitivity: f64,
    /// Untrimmed process offset (drawn at fabrication), volts.
    pub process_offset_v: f64,
}

impl Bandgap {
    /// Nominal reference temperature, °C.
    pub const T_REF_C: f64 = 27.0;
    /// Nominal supply for the paper's design, volts.
    pub const VDD_NOMINAL_V: f64 = 1.8;

    /// An ideal band-gap with the given output.
    pub fn ideal(v_nominal_v: f64) -> Self {
        assert!(v_nominal_v > 0.0);
        Self {
            v_nominal_v,
            temp_coeff_v_per_k: 0.0,
            curvature_v_per_k2: 0.0,
            supply_sensitivity: 0.0,
            process_offset_v: 0.0,
        }
    }

    /// A realistic 0.18 µm band-gap: ±30 ppm/K linear residue, small
    /// curvature, 60 dB line regulation, fabricated with `noise`.
    pub fn fabricate(v_nominal_v: f64, noise: &mut NoiseSource) -> Self {
        assert!(v_nominal_v > 0.0);
        Self {
            v_nominal_v,
            temp_coeff_v_per_k: noise.gaussian(0.0, 30e-6 * v_nominal_v),
            curvature_v_per_k2: -1e-6 * v_nominal_v,
            supply_sensitivity: 1e-3,
            process_offset_v: noise.gaussian(0.0, 3e-3),
        }
    }

    /// Output voltage at an operating condition.
    pub fn output_v(&self, temp_c: f64, vdd_v: f64) -> f64 {
        let dt = temp_c - Self::T_REF_C;
        self.v_nominal_v
            + self.process_offset_v
            + self.temp_coeff_v_per_k * dt
            + self.curvature_v_per_k2 * dt * dt
            + self.supply_sensitivity * (vdd_v - Self::VDD_NOMINAL_V)
    }

    /// Output at nominal conditions (27 °C, 1.8 V).
    pub fn output_nominal_v(&self) -> f64 {
        self.output_v(Self::T_REF_C, Self::VDD_NOMINAL_V)
    }
}

/// Buffered reference voltage distribution to the pipeline stages.
///
/// The references are "decoupled by off-chip capacitors" (§2); what remains
/// visible to the stages is a small static gain error, a code-dependent
/// droop due to the buffer's output impedance, and reference noise.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReferenceBuffer {
    /// Nominal differential reference (V_REFP − V_REFN), volts.
    pub v_ref_v: f64,
    /// Static gain error of the buffered reference, relative.
    pub static_error_rel: f64,
    /// Peak code-dependent droop (fraction of V_REF) when a stage draws
    /// maximum charge; the instantaneous droop scales with the DAC level.
    pub droop_rel: f64,
    /// RMS reference noise per sampling event, volts.
    pub noise_rms_v: f64,
}

impl ReferenceBuffer {
    /// An ideal reference of the given value.
    pub fn ideal(v_ref_v: f64) -> Self {
        assert!(v_ref_v > 0.0);
        Self {
            v_ref_v,
            static_error_rel: 0.0,
            droop_rel: 0.0,
            noise_rms_v: 0.0,
        }
    }

    /// A realistic buffered, off-chip-decoupled reference.
    pub fn decoupled(v_ref_v: f64, noise: &mut NoiseSource) -> Self {
        assert!(v_ref_v > 0.0);
        Self {
            v_ref_v,
            static_error_rel: noise.gaussian(0.0, 1e-3),
            droop_rel: 5e-5,
            noise_rms_v: 30e-6,
        }
    }

    /// The effective reference seen by a stage whose DAC level is
    /// `dac_level` ∈ {−1, 0, +1} (the 1.5-bit DSB selection), for one event.
    pub fn effective_v(&self, dac_level: i8, noise: &mut NoiseSource) -> f64 {
        let droop = self.droop_rel * f64::from(dac_level.abs());
        self.v_ref_v * (1.0 + self.static_error_rel - droop) + noise.gaussian(0.0, self.noise_rms_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_bandgap_is_flat() {
        let bg = Bandgap::ideal(0.9);
        assert_eq!(bg.output_v(-40.0, 1.6), 0.9);
        assert_eq!(bg.output_v(125.0, 2.0), 0.9);
    }

    #[test]
    fn fabricated_bandgap_stays_within_spec_band() {
        let mut n = NoiseSource::from_seed(17);
        for _ in 0..100 {
            let bg = Bandgap::fabricate(0.9, &mut n);
            // Across -40..125 °C and ±10 % supply the output stays within
            // ~3 % of nominal — "near independent" as the paper puts it.
            for &t in &[-40.0, 27.0, 125.0] {
                for &vdd in &[1.62, 1.8, 1.98] {
                    let v = bg.output_v(t, vdd);
                    assert!((v - 0.9).abs() < 0.03, "v {v} at t={t} vdd={vdd}");
                }
            }
        }
    }

    #[test]
    fn supply_sensitivity_acts_linearly() {
        let bg = Bandgap {
            supply_sensitivity: 1e-3,
            ..Bandgap::ideal(0.9)
        };
        let dv = bg.output_v(27.0, 1.9) - bg.output_v(27.0, 1.8);
        assert!((dv - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn ideal_reference_is_exact() {
        let r = ReferenceBuffer::ideal(1.0);
        let mut n = NoiseSource::from_seed(1);
        assert_eq!(r.effective_v(0, &mut n), 1.0);
        assert_eq!(r.effective_v(1, &mut n), 1.0);
    }

    #[test]
    fn droop_depends_on_dac_level() {
        let r = ReferenceBuffer {
            droop_rel: 1e-3,
            ..ReferenceBuffer::ideal(1.0)
        };
        let mut n = NoiseSource::from_seed(2);
        let v0 = r.effective_v(0, &mut n);
        let v1 = r.effective_v(1, &mut n);
        let vm = r.effective_v(-1, &mut n);
        assert_eq!(v0, 1.0);
        assert!((v1 - 0.999).abs() < 1e-12);
        assert_eq!(v1, vm);
    }

    #[test]
    fn reference_noise_has_requested_rms() {
        let r = ReferenceBuffer {
            noise_rms_v: 100e-6,
            ..ReferenceBuffer::ideal(1.0)
        };
        let mut n = NoiseSource::from_seed(3);
        let count = 50_000;
        let var: f64 = (0..count)
            .map(|_| (r.effective_v(0, &mut n) - 1.0).powi(2))
            .sum::<f64>()
            / count as f64;
        assert!((var.sqrt() - 100e-6).abs() < 2e-6);
    }
}
