//! Two-stage Miller opamp behavioral model.
//!
//! The paper's residue amplifier is "a two-stage Miller opamp with a
//! differential-pair output stage" (§3, ref \[3\]). For a switched-capacitor
//! residue stage the behaviorally relevant quantities are:
//!
//! * **DC gain** `A0` — sets the static closed-loop gain error
//!   `1/(1 + 1/(A0·β))`;
//! * **transconductance** `gm = 2·I_bias / V_ov` — together with the
//!   effective load capacitance this sets the unity-gain bandwidth
//!   `GBW = gm / (2π·C_L)` and hence the closed-loop settling time constant
//!   `τ = 1/(2π·β·GBW)`;
//! * **slew rate** `SR = I_slew / C_L` — large steps start slew-limited,
//!   which is a *nonlinear* (signal-dependent) error mechanism;
//! * **output swing** — the supply is only 1.8 V, so residues clip;
//! * **noise** — input-referred thermal noise, sampled once per phase.
//!
//! Because the SC bias generator makes `I_bias ∝ f_CR` (Eq. 1), both `τ`
//! and `SR` scale with conversion rate and the *fraction* of the half-period
//! spent settling stays constant — the mechanism behind the paper's flat
//! SNDR from 20 to 140 MS/s.

use crate::noise::NoiseSource;
use crate::units::KT_NOMINAL;

/// Design parameters of the opamp (independent of bias point).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpAmpSpec {
    /// Open-loop DC gain, V/V.
    pub dc_gain: f64,
    /// Input-pair overdrive voltage `V_ov` in volts; `gm = 2·I / V_ov`.
    pub v_ov_v: f64,
    /// Fraction of the tail bias current available for slewing the load.
    pub slew_current_fraction: f64,
    /// Maximum differential output swing, volts (clips beyond ±this).
    pub output_swing_v: f64,
    /// Excess noise factor γ multiplying the `kT/(β·C_L)` sampled noise.
    pub noise_excess_factor: f64,
    /// Gain-compression knee, volts: the open-loop gain falls as
    /// `A0 / (1 + (V_out/knee)²)`, producing the odd-order distortion every
    /// real output stage shows as the swing approaches the rails. Infinite
    /// for an ideal amplifier.
    pub gain_knee_v: f64,
    /// One-sigma input-referred offset drawn at fabrication, volts.
    pub offset_sigma_v: f64,
}

impl OpAmpSpec {
    /// An essentially ideal amplifier: infinite gain, tiny overdrive
    /// (huge gm), no noise, generous swing.
    pub fn ideal() -> Self {
        Self {
            dc_gain: f64::INFINITY,
            v_ov_v: 1e-6,
            slew_current_fraction: 1e9,
            output_swing_v: 1e9,
            noise_excess_factor: 0.0,
            gain_knee_v: f64::INFINITY,
            offset_sigma_v: 0.0,
        }
    }

    /// A representative two-stage Miller design at 1.8 V in 0.18 µm:
    /// ~80 dB gain, 180 mV overdrive, rail-limited 2.4 V_pp-diff swing.
    pub fn miller_two_stage() -> Self {
        Self {
            dc_gain: 10_000.0, // 80 dB
            v_ov_v: 0.18,
            slew_current_fraction: 1.0,
            output_swing_v: 1.3,
            noise_excess_factor: 2.5,
            gain_knee_v: 0.9,
            offset_sigma_v: 1e-3,
        }
    }
}

impl Default for OpAmpSpec {
    fn default() -> Self {
        Self::miller_two_stage()
    }
}

/// An opamp at a concrete operating point (bias current + load).
///
/// The bias current is *supplied externally* — in the full converter it
/// comes from the SC bias generator, which is the paper's central idea.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpAmp {
    /// Static design parameters.
    pub spec: OpAmpSpec,
    /// First-stage tail bias current, amperes.
    pub bias_current_a: f64,
    /// Effective load capacitance seen by the dominant pole, farads.
    pub load_cap_f: f64,
    /// Fabricated input-referred offset, volts (0 until
    /// [`OpAmp::with_offset`] installs a drawn value).
    pub input_offset_v: f64,
}

impl OpAmp {
    /// Creates an opamp at an operating point.
    ///
    /// # Panics
    ///
    /// Panics if the bias current or load capacitance is not positive.
    pub fn new(spec: OpAmpSpec, bias_current_a: f64, load_cap_f: f64) -> Self {
        assert!(bias_current_a > 0.0, "bias current must be positive");
        assert!(load_cap_f > 0.0, "load capacitance must be positive");
        Self {
            spec,
            bias_current_a,
            load_cap_f,
            input_offset_v: 0.0,
        }
    }

    /// Installs a fabricated input-referred offset.
    pub fn with_offset(mut self, input_offset_v: f64) -> Self {
        self.input_offset_v = input_offset_v;
        self
    }

    /// Input-pair transconductance, siemens.
    pub fn gm_s(&self) -> f64 {
        2.0 * self.bias_current_a / self.spec.v_ov_v
    }

    /// Unity-gain bandwidth, hertz.
    pub fn gbw_hz(&self) -> f64 {
        self.gm_s() / (2.0 * std::f64::consts::PI * self.load_cap_f)
    }

    /// Slew rate at the output, volts per second.
    pub fn slew_rate_v_per_s(&self) -> f64 {
        self.spec.slew_current_fraction * self.bias_current_a / self.load_cap_f
    }

    /// Closed-loop settling time constant for feedback factor `beta`,
    /// seconds.
    pub fn tau_s(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        self.load_cap_f / (beta * self.gm_s())
    }

    /// Static closed-loop gain error factor `1/(1 + 1/(A0·β))`.
    ///
    /// Multiply the ideal closed-loop output by this.
    pub fn gain_error_factor(&self, beta: f64) -> f64 {
        1.0 / (1.0 + 1.0 / (self.spec.dc_gain * beta))
    }

    /// Output-level-dependent gain error factor: the open-loop gain
    /// compresses as `A0 / (1 + (v_out/knee)²)`, so large residues settle
    /// slightly shorter than small ones — the static odd-order distortion
    /// of a real output stage.
    pub fn gain_error_factor_at(&self, beta: f64, v_out: f64) -> f64 {
        if self.spec.dc_gain.is_infinite() {
            return 1.0;
        }
        let knee = self.spec.gain_knee_v;
        let compression = if knee.is_finite() && knee > 0.0 {
            1.0 + (v_out / knee).powi(2)
        } else {
            1.0
        };
        1.0 / (1.0 + compression / (self.spec.dc_gain * beta))
    }

    /// Settles the output from `initial_v` toward `target_v` for
    /// `settle_time_s` with feedback factor `beta`, including the
    /// slew-limited first segment and output clipping.
    ///
    /// Returns the output voltage at the end of the phase.
    pub fn settle(&self, target_v: f64, initial_v: f64, settle_time_s: f64, beta: f64) -> f64 {
        let target_v = target_v.clamp(-self.spec.output_swing_v, self.spec.output_swing_v);
        if settle_time_s <= 0.0 {
            return initial_v.clamp(-self.spec.output_swing_v, self.spec.output_swing_v);
        }
        let tau = self.tau_s(beta);
        let sr = self.slew_rate_v_per_s();
        let dv = target_v - initial_v;
        let dv_abs = dv.abs();
        let sign = dv.signum();
        // Boundary between slewing and linear settling: the exponential's
        // initial rate dv/τ must not exceed SR.
        let v_lin = sr * tau;
        // The slew-tail decay uses the polynomial kernel — the duration
        // is data-dependent, and SettlePlan::settle (this model's hot
        // twin) must stay bit-identical while remaining vectorizable.
        let out = if dv_abs <= v_lin {
            target_v - dv * (-settle_time_s / tau).exp()
        } else {
            let t_slew = (dv_abs - v_lin) / sr;
            if t_slew >= settle_time_s {
                initial_v + sign * sr * settle_time_s
            } else {
                let remaining = settle_time_s - t_slew;
                target_v - sign * v_lin * crate::stripe::exp_nonpos(-remaining / tau)
            }
        };
        out.clamp(-self.spec.output_swing_v, self.spec.output_swing_v)
    }

    /// RMS output-referred sampled noise of the closed-loop amplifier for
    /// feedback factor `beta`, volts: `sqrt(γ·kT/(β·C_L))`.
    pub fn sampled_noise_rms_v(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0);
        (self.spec.noise_excess_factor * KT_NOMINAL / (beta * self.load_cap_f)).sqrt()
    }

    /// Draws one sampled output-noise voltage.
    pub fn sample_noise(&self, beta: f64, noise: &mut NoiseSource) -> f64 {
        noise.gaussian(0.0, self.sampled_noise_rms_v(beta))
    }

    /// Precomputes the settling constants for one `(settle_time, beta)`
    /// operating point, hoisting `τ`, `SR`, the slew/linear boundary and
    /// — most importantly — the linear-decay exponential out of the
    /// per-sample loop. [`SettlePlan::settle`] then evaluates exactly the
    /// same piecewise model as [`OpAmp::settle`].
    pub fn settle_plan(&self, settle_time_s: f64, beta: f64) -> SettlePlan {
        let tau = self.tau_s(beta);
        let sr = self.slew_rate_v_per_s();
        SettlePlan {
            settle_time_s,
            tau_s: tau,
            slew_rate_v_per_s: sr,
            v_lin: sr * tau,
            decay: if settle_time_s > 0.0 {
                (-settle_time_s / tau).exp()
            } else {
                0.0
            },
            output_swing_v: self.spec.output_swing_v,
        }
    }
}

/// Precomputed settling constants for one `(settle_time, beta)` operating
/// point of an [`OpAmp`] — see [`OpAmp::settle_plan`].
///
/// The linear-settling branch (the overwhelmingly common one) costs one
/// multiply-subtract instead of an `exp()` per sample; only slew-limited
/// steps still evaluate an exponential (their decay depends on the
/// signal-dependent slew duration).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SettlePlan {
    /// Phase duration, seconds.
    pub settle_time_s: f64,
    /// Closed-loop settling time constant, seconds.
    pub tau_s: f64,
    /// Slew rate, volts per second.
    pub slew_rate_v_per_s: f64,
    /// Slew/linear boundary `SR·τ`, volts.
    pub v_lin: f64,
    /// Linear-settling residual factor `exp(−t_settle/τ)` (0 when the
    /// phase duration is not positive).
    pub decay: f64,
    /// Output clamp, volts.
    pub output_swing_v: f64,
}

impl SettlePlan {
    /// Settles from `initial_v` toward `target_v` over the planned phase:
    /// the same piecewise slew/linear/clip model as [`OpAmp::settle`],
    /// with every operating-point constant precomputed.
    pub fn settle(&self, target_v: f64, initial_v: f64) -> f64 {
        let swing = self.output_swing_v;
        let target_v = target_v.clamp(-swing, swing);
        if self.settle_time_s <= 0.0 {
            return initial_v.clamp(-swing, swing);
        }
        let dv = target_v - initial_v;
        let dv_abs = dv.abs();
        // Branch-free piecewise model: whether a step slews is a
        // signal-dependent coin flip (~40 % of nominal conversion
        // steps), so a branch here mispredicts constantly and the libm
        // exp() behind it serializes the lane kernel's amplify loop.
        // Instead all three segment results are computed — the
        // slew-tail decay through the polynomial exp kernel, with the
        // duration clamped into [0, t_settle] so out-of-segment lanes
        // feed it a harmless argument — and the comparisons select.
        // Selected values are bit-identical to OpAmp::settle's, which
        // takes the classic branchy form of the same model.
        let sign = dv.signum();
        let t_slew = (dv_abs - self.v_lin) / self.slew_rate_v_per_s;
        let remaining = (self.settle_time_s - t_slew).clamp(0.0, self.settle_time_s);
        let tail = crate::stripe::exp_nonpos(-remaining / self.tau_s);
        let lin = target_v - dv * self.decay;
        let rail = initial_v + sign * self.slew_rate_v_per_s * self.settle_time_s;
        let slew = target_v - sign * self.v_lin * tail;
        let out = if dv_abs <= self.v_lin {
            lin
        } else if t_slew >= self.settle_time_s {
            rail
        } else {
            slew
        };
        out.clamp(-swing, swing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp(bias_a: f64) -> OpAmp {
        OpAmp::new(OpAmpSpec::miller_two_stage(), bias_a, 4e-12)
    }

    #[test]
    fn gm_is_linear_in_bias() {
        let a = amp(1e-3);
        let b = amp(2e-3);
        assert!((b.gm_s() / a.gm_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gbw_matches_formula() {
        let a = amp(1e-3);
        let expected = a.gm_s() / (2.0 * std::f64::consts::PI * 4e-12);
        assert!((a.gbw_hz() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn bias_scaling_keeps_settling_fraction_constant() {
        // The paper's key mechanism: with I ∝ f_CR, the number of time
        // constants in a half-period is rate-independent.
        let f1 = 50e6;
        let f2 = 150e6;
        let k = 1e-3 / 110e6; // A per Hz
        let a1 = amp(k * f1);
        let a2 = amp(k * f2);
        let beta = 0.5;
        let ratio1 = (0.5 / f1) / a1.tau_s(beta);
        let ratio2 = (0.5 / f2) / a2.tau_s(beta);
        assert!((ratio1 / ratio2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_settling_matches_exponential() {
        let a = amp(5e-3);
        let beta = 0.5;
        let tau = a.tau_s(beta);
        // Small step (well below SR·τ): exact exponential.
        let out = a.settle(0.01, 0.0, 5.0 * tau, beta);
        let expected = 0.01 * (1.0 - (-5.0f64).exp());
        assert!((out - expected).abs() < 1e-9, "out {out}");
    }

    #[test]
    fn full_settling_reaches_target() {
        let a = amp(5e-3);
        let out = a.settle(0.7, -0.7, 1e-3, 0.5);
        assert!((out - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_time_returns_initial() {
        let a = amp(5e-3);
        assert_eq!(a.settle(1.0, 0.25, 0.0, 0.5), 0.25);
    }

    #[test]
    fn slew_limited_step_moves_at_slew_rate() {
        let spec = OpAmpSpec {
            slew_current_fraction: 0.001, // tiny slew current => slew-limited
            ..OpAmpSpec::miller_two_stage()
        };
        let a = OpAmp::new(spec, 1e-4, 4e-12);
        let sr = a.slew_rate_v_per_s();
        let t = 1e-9;
        let out = a.settle(1.0, 0.0, t, 0.5);
        // Far from completion, the output advanced by ≈ SR·t.
        assert!((out - sr * t).abs() / (sr * t) < 0.2, "out {out}");
    }

    #[test]
    fn output_clips_at_swing() {
        let a = amp(5e-3);
        let out = a.settle(5.0, 0.0, 1e-3, 0.5);
        assert_eq!(out, a.spec.output_swing_v);
        let out = a.settle(-5.0, 0.0, 1e-3, 0.5);
        assert_eq!(out, -a.spec.output_swing_v);
    }

    #[test]
    fn gain_error_factor_matches_formula() {
        let a = amp(1e-3);
        let beta = 0.5;
        let e = a.gain_error_factor(beta);
        assert!((e - 1.0 / (1.0 + 1.0 / (10_000.0 * 0.5))).abs() < 1e-15);
        // ~0.02% low for 80 dB gain at beta = 0.5.
        assert!(e < 1.0 && e > 0.9997);
    }

    #[test]
    fn noise_scales_inverse_sqrt_load() {
        let spec = OpAmpSpec::miller_two_stage();
        let small = OpAmp::new(spec, 1e-3, 1e-12);
        let large = OpAmp::new(spec, 1e-3, 4e-12);
        let ratio = small.sampled_noise_rms_v(0.5) / large.sampled_noise_rms_v(0.5);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_spec_settles_exactly_and_silently() {
        let a = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        let out = a.settle(0.123, -0.9, 1e-12, 0.5);
        assert!((out - 0.123).abs() < 1e-12);
        assert_eq!(a.sampled_noise_rms_v(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "bias current must be positive")]
    fn rejects_zero_bias() {
        let _ = OpAmp::new(OpAmpSpec::ideal(), 0.0, 1e-12);
    }

    #[test]
    fn settle_plan_matches_settle_bit_for_bit() {
        // The planned path must reproduce OpAmp::settle exactly across
        // the linear, slew-limited, slew-saturated and clamped branches.
        let a = amp(1e-3);
        for &t in &[0.0, 0.2e-9, 4.5e-9, 50e-9] {
            for &beta in &[0.5, 1.0] {
                let plan = a.settle_plan(t, beta);
                for i in 0..200 {
                    let target = -3.0 + 0.03 * i as f64;
                    let initial = 2.9 - 0.029 * i as f64;
                    assert_eq!(
                        plan.settle(target, initial).to_bits(),
                        a.settle(target, initial, t, beta).to_bits(),
                        "divergence at t={t} beta={beta} target={target} initial={initial}"
                    );
                }
            }
        }
        // The ideal amplifier's plan is exact as well.
        let ideal = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        let plan = ideal.settle_plan(1e-12, 0.5);
        assert_eq!(
            plan.settle(0.123, -0.9).to_bits(),
            ideal.settle(0.123, -0.9, 1e-12, 0.5).to_bits()
        );
    }
}
