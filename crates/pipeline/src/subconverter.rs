//! Sub-converters: the per-stage 1.5-bit ADSC and the 2-bit flash backend.
//!
//! Each pipeline stage contains an Analog-to-Digital Sub-Converter (ADSC)
//! with two comparators at ±V_REF/4, resolving the stage input into one of
//! three decisions d ∈ {−1, 0, +1}. The half-bit of redundancy means a
//! comparator can be wrong by up to V_REF/4 before the stage residue
//! leaves the correctable range — this is why the paper can use small,
//! offset-prone dynamic comparators.
//!
//! The chain ends in a 2-bit flash (three comparators at −V_REF/2, 0,
//! +V_REF/2) that resolves the final residue.

use adc_analog::comparator::{Comparator, ComparatorSpec};
use adc_analog::noise::NoiseSource;

/// A 1.5-bit stage decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct StageDecision {
    /// DAC level d ∈ {−1, 0, +1} applied by the Decoder and Switching
    /// Block (DSB).
    pub dac_level: i8,
}

impl StageDecision {
    /// The stage's raw digital output b ∈ {0, 1, 2} (`d + 1`).
    pub fn bits(&self) -> u8 {
        (self.dac_level + 1) as u8
    }
}

/// The 1.5-bit Analog-to-Digital Sub-Converter of one stage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Adsc {
    high: Comparator,
    low: Comparator,
}

impl Adsc {
    /// Fabricates an ADSC with thresholds at ±`v_ref_v`/4 and offsets
    /// drawn from `spec`.
    pub fn fabricate(spec: &ComparatorSpec, v_ref_v: f64, noise: &mut NoiseSource) -> Self {
        Self {
            high: spec.fabricate(v_ref_v / 4.0, noise),
            low: spec.fabricate(-v_ref_v / 4.0, noise),
        }
    }

    /// An ideal ADSC.
    pub fn ideal(v_ref_v: f64) -> Self {
        Self::fabricate(
            &ComparatorSpec::ideal(),
            v_ref_v,
            &mut NoiseSource::from_seed(0),
        )
    }

    /// Resolves the sampled stage input into a decision.
    pub fn decide(&mut self, v_in: f64, noise: &mut NoiseSource) -> StageDecision {
        let above = self.high.decide(v_in, noise);
        let below = !self.low.decide(v_in, noise);
        let dac_level = match (above, below) {
            (true, _) => 1,
            (_, true) => -1,
            _ => 0,
        };
        StageDecision { dac_level }
    }

    /// Injects a static offset on the upper comparator (fault injection).
    pub fn set_high_offset_v(&mut self, offset_v: f64) {
        self.high.set_offset_v(offset_v);
    }

    /// Injects a static offset on the lower comparator (fault injection).
    pub fn set_low_offset_v(&mut self, offset_v: f64) {
        self.low.set_offset_v(offset_v);
    }
}

/// The 2-bit flash backend.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlashBackend {
    comparators: Vec<Comparator>,
}

impl FlashBackend {
    /// Fabricates the flash with thresholds at −V_REF/2, 0, +V_REF/2.
    pub fn fabricate(spec: &ComparatorSpec, v_ref_v: f64, noise: &mut NoiseSource) -> Self {
        let thresholds = [-v_ref_v / 2.0, 0.0, v_ref_v / 2.0];
        Self {
            comparators: thresholds
                .iter()
                .map(|&t| spec.fabricate(t, noise))
                .collect(),
        }
    }

    /// An ideal flash.
    pub fn ideal(v_ref_v: f64) -> Self {
        Self::fabricate(
            &ComparatorSpec::ideal(),
            v_ref_v,
            &mut NoiseSource::from_seed(0),
        )
    }

    /// Resolves the final residue into a 2-bit code (0..=3), via a
    /// thermometer-to-binary conversion that tolerates bubbles (a single
    /// out-of-order comparator does not produce a wild code).
    pub fn decide(&mut self, v_in: f64, noise: &mut NoiseSource) -> u8 {
        let mut count = 0u8;
        for c in &mut self.comparators {
            if c.decide(v_in, noise) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> NoiseSource {
        NoiseSource::from_seed(1)
    }

    #[test]
    fn ideal_adsc_thresholds_are_quarter_ref() {
        let mut a = Adsc::ideal(1.0);
        let mut n = quiet();
        assert_eq!(a.decide(0.3, &mut n).dac_level, 1);
        assert_eq!(a.decide(0.2, &mut n).dac_level, 0);
        assert_eq!(a.decide(0.0, &mut n).dac_level, 0);
        assert_eq!(a.decide(-0.2, &mut n).dac_level, 0);
        assert_eq!(a.decide(-0.3, &mut n).dac_level, -1);
    }

    #[test]
    fn decision_bits_are_offset_binary() {
        assert_eq!(StageDecision { dac_level: -1 }.bits(), 0);
        assert_eq!(StageDecision { dac_level: 0 }.bits(), 1);
        assert_eq!(StageDecision { dac_level: 1 }.bits(), 2);
    }

    #[test]
    fn offset_moves_decision_boundary_only_locally() {
        let mut a = Adsc::ideal(1.0);
        a.set_high_offset_v(0.1); // upper threshold now at 0.35
        let mut n = quiet();
        assert_eq!(a.decide(0.3, &mut n).dac_level, 0); // was 1
        assert_eq!(a.decide(0.4, &mut n).dac_level, 1);
        assert_eq!(a.decide(-0.3, &mut n).dac_level, -1); // unaffected
    }

    #[test]
    fn ideal_flash_counts_thermometer() {
        let mut f = FlashBackend::ideal(1.0);
        let mut n = quiet();
        assert_eq!(f.decide(-0.8, &mut n), 0);
        assert_eq!(f.decide(-0.3, &mut n), 1);
        assert_eq!(f.decide(0.3, &mut n), 2);
        assert_eq!(f.decide(0.8, &mut n), 3);
    }

    #[test]
    fn flash_boundaries_are_half_ref() {
        let mut f = FlashBackend::ideal(1.0);
        let mut n = quiet();
        assert_eq!(f.decide(-0.5001, &mut n), 0);
        assert_eq!(f.decide(-0.4999, &mut n), 1);
        assert_eq!(f.decide(0.4999, &mut n), 2);
        assert_eq!(f.decide(0.5001, &mut n), 3);
    }

    #[test]
    fn fabricated_adsc_offsets_stay_within_redundancy_budget() {
        // With 10 mV sigma, offsets are essentially always far below the
        // V_REF/4 = 250 mV correction range.
        let spec = ComparatorSpec::dynamic_latch();
        let mut n = NoiseSource::from_seed(99);
        for _ in 0..1000 {
            let a = Adsc::fabricate(&spec, 1.0, &mut n);
            // Access via behaviour: a decision at ±(Vref/4 ± 6σ) must be
            // unambiguous.
            let mut a = a;
            assert_eq!(a.decide(0.4, &mut n).dac_level, 1);
            assert_eq!(a.decide(-0.4, &mut n).dac_level, -1);
            assert_eq!(a.decide(0.0, &mut n).dac_level, 0);
        }
    }
}
