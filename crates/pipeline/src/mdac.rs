//! The multiplying DAC (MDAC): residue generation with every §3
//! non-ideality.
//!
//! In the amplification phase (Fig. 2 of the paper) C1 is switched to
//! ±V_REF or V_CM by the DSB while C2 closes the loop around the opamp.
//! The ideal residue is
//!
//! ```text
//! V_out = (C1 + C2)/C2 · V_in − d · (C1/C2) · V_REF,   d ∈ {−1, 0, +1}
//! ```
//!
//! which for matched capacitors is the textbook `2·V_in − d·V_REF`. The
//! model layers on: capacitor-mismatch gain and DAC-level errors (the INL
//! signature), the opamp's finite-gain error, incomplete settling from the
//! previous output (the paper's §3 timing discussion), slew limiting,
//! output clipping, and sampled opamp noise.

use adc_analog::noise::NoiseSource;
use adc_analog::opamp::{OpAmp, SettlePlan};

/// Precomputed per-sample constants of one MDAC at one timing point.
///
/// Built by [`Mdac::plan`] once per timing/configuration change so the
/// conversion loop's inner pass ([`Mdac::amplify_planned`]) performs no
/// divisions and — on the dominant linear-settling branch — no `exp()`.
/// Every field mirrors the quantity [`Mdac::amplify`] derives per call.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MdacPlan {
    /// Interstage gain `(C1 + C2)/C2`.
    pub gain: f64,
    /// DAC step `C1/C2`.
    pub dac_gain: f64,
    /// Fabricated input-referred opamp offset, volts.
    pub input_offset_v: f64,
    /// Open-loop DC gain `A0` (infinite for an ideal amplifier).
    pub dc_gain: f64,
    /// Feedback factor during amplification.
    pub beta: f64,
    /// Gain-compression knee, volts.
    pub gain_knee_v: f64,
    /// Opamp settling constants at `(settle_time, beta)`.
    pub settle: SettlePlan,
    /// DSB residual factor `exp(−t_settle/τ_dsb)` (0 when disabled).
    pub dsb_decay: f64,
    /// RMS sampled opamp output noise, volts.
    pub noise_rms_v: f64,
}

impl MdacPlan {
    /// The planned amplification as a pure function of the plan plus the
    /// settling memory handed in by reference — the form the SoA lane
    /// kernel ([`crate::lanes`]) iterates over flat per-lane state
    /// arrays. [`Mdac::amplify_planned`] delegates here with the MDAC's
    /// own `prev_output_v`, so both entry points share one body and stay
    /// bit-identical by construction.
    pub fn amplify(
        &self,
        v_in: f64,
        dac_level: i8,
        v_ref_eff: f64,
        noise_v: f64,
        prev_output_v: &mut f64,
    ) -> f64 {
        let ideal = self.gain * (v_in + self.input_offset_v)
            - f64::from(dac_level) * self.dac_gain * v_ref_eff;
        // Mirrors OpAmp::gain_error_factor_at with the spec constants
        // lifted into the plan.
        let factor = if self.dc_gain.is_infinite() {
            1.0
        } else {
            let knee = self.gain_knee_v;
            let compression = if knee.is_finite() && knee > 0.0 {
                1.0 + (ideal / knee).powi(2)
            } else {
                1.0
            };
            1.0 / (1.0 + compression / (self.dc_gain * self.beta))
        };
        let target = ideal * factor;
        let settled = self.settle.settle(target, *prev_output_v);
        let dsb_error = if self.dsb_decay > 0.0 {
            (target - *prev_output_v) * self.dsb_decay
        } else {
            0.0
        };
        let out = settled - dsb_error + noise_v;
        *prev_output_v = out;
        out
    }
}

/// Stage-major structure-of-arrays gather of the [`MdacPlan`] (and
/// embedded [`SettlePlan`]) scalar fields, one flat array per field,
/// plus the branch-free lane kernel that consumes them.
///
/// [`MdacPlan::amplify`] reads ~20 plan constants behind one `&self`;
/// in a lane batch that makes the amplify loop stride 160-byte
/// array-of-structs records and branch per lane on plan-dependent
/// conditions, and the autovectorizer gives up. Gathered field-major,
/// the identical arithmetic becomes independent flat streams the
/// compiler packs. Two conditions are *pre-resolved* into the gathered
/// values so the scalar path's branches vanish without changing a bit
/// (see [`AmpConstants::push`]); the remaining per-lane `if`s select
/// between already-computed values, which is exactly the shape LLVM
/// if-converts.
#[derive(Debug, Clone, Default)]
pub struct AmpConstants {
    /// Interstage gain.
    gain: Vec<f64>,
    /// Input-referred opamp offset, volts.
    off: Vec<f64>,
    /// DAC step.
    dacg: Vec<f64>,
    /// Compression knee, volts — `+∞` when compression is disabled.
    knee: Vec<f64>,
    /// Loop-gain product `A0·β` — `+∞` for an ideal (infinite-gain) amp.
    dcb: Vec<f64>,
    /// DSB residual factor (0 disables).
    dsb: Vec<f64>,
    /// Settling phase duration, seconds.
    ts: Vec<f64>,
    /// Settling time constant, seconds.
    tau: Vec<f64>,
    /// Slew rate, volts/second.
    slew: Vec<f64>,
    /// Slew/linear boundary, volts.
    vlin: Vec<f64>,
    /// Linear-settling residual factor.
    decay: Vec<f64>,
    /// Output clamp, volts.
    swing: Vec<f64>,
}

impl AmpConstants {
    /// Empties the gather for a fresh batch.
    pub fn clear(&mut self) {
        self.gain.clear();
        self.off.clear();
        self.dacg.clear();
        self.knee.clear();
        self.dcb.clear();
        self.dsb.clear();
        self.ts.clear();
        self.tau.clear();
        self.slew.clear();
        self.vlin.clear();
        self.decay.clear();
        self.swing.clear();
    }

    /// Appends one plan's constants.
    ///
    /// The two plan-dependent branches of the scalar path are resolved
    /// here into values that make the branch-free expressions exact:
    ///
    /// * no compression (`gain_knee_v` non-finite or ≤ 0) gathers
    ///   `knee = +∞`, and `1 + (ideal/∞)² = 1.0` exactly;
    /// * an ideal amp (`dc_gain = +∞`) gathers `dcb = +∞`, and
    ///   `1/(1 + compression/∞) = 1.0` exactly.
    pub fn push(&mut self, p: &MdacPlan) {
        self.gain.push(p.gain);
        self.off.push(p.input_offset_v);
        self.dacg.push(p.dac_gain);
        let knee = p.gain_knee_v;
        self.knee.push(if knee.is_finite() && knee > 0.0 {
            knee
        } else {
            f64::INFINITY
        });
        self.dcb.push(p.dc_gain * p.beta);
        self.dsb.push(p.dsb_decay);
        self.ts.push(p.settle.settle_time_s);
        self.tau.push(p.settle.tau_s);
        self.slew.push(p.settle.slew_rate_v_per_s);
        self.vlin.push(p.settle.v_lin);
        self.decay.push(p.settle.decay);
        self.swing.push(p.settle.output_swing_v);
    }

    /// Amplifies one lane stripe in place: for each lane `l`,
    /// `x[l] ← amplify(x[l])` using the constants gathered at
    /// `base + l`, with `prev[l]` the settling memory (updated like
    /// `Mdac::prev_output_v`). `dac` carries the decisions as exact
    /// small-integer floats (`f64::from(dac_level)`).
    ///
    /// Bit-identical per lane to [`MdacPlan::amplify`] on the plan the
    /// constants were gathered from — asserted over randomized plans,
    /// including the branch corners, by this module's tests.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree or `base + x.len()`
    /// overruns the gathered constants.
    pub fn amplify_lanes(
        &self,
        base: usize,
        x: &mut [f64],
        dac: &[f64],
        vref: &[f64],
        noise_v: &[f64],
        prev: &mut [f64],
    ) {
        // The default x86-64 target caps the autovectorizer at SSE2
        // (2-wide f64). Re-instantiating the same loop under AVX2
        // widens it to 4 without changing a bit: every operation in
        // the kernel (add/mul/div/abs/max/min and the exp polynomial)
        // is IEEE-exact, and Rust never enables FMA contraction, so
        // wider registers produce identical results faster.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by runtime feature detection.
            unsafe { self.amplify_lanes_avx2(base, x, dac, vref, noise_v, prev) };
            return;
        }
        self.amplify_lanes_impl(base, x, dac, vref, noise_v, prev);
    }

    /// AVX2 re-instantiation of [`Self::amplify_lanes_impl`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn amplify_lanes_avx2(
        &self,
        base: usize,
        x: &mut [f64],
        dac: &[f64],
        vref: &[f64],
        noise_v: &[f64],
        prev: &mut [f64],
    ) {
        self.amplify_lanes_impl(base, x, dac, vref, noise_v, prev);
    }

    /// Portable body of [`Self::amplify_lanes`]; `inline(always)` so
    /// the feature-gated wrappers re-instantiate it under their own
    /// target features.
    #[inline(always)]
    fn amplify_lanes_impl(
        &self,
        base: usize,
        x: &mut [f64],
        dac: &[f64],
        vref: &[f64],
        noise_v: &[f64],
        prev: &mut [f64],
    ) {
        let n = x.len();
        let dac = &dac[..n];
        let vref = &vref[..n];
        let noise_v = &noise_v[..n];
        let prev = &mut prev[..n];
        let gain = &self.gain[base..][..n];
        let off = &self.off[base..][..n];
        let dacg = &self.dacg[base..][..n];
        let knee = &self.knee[base..][..n];
        let dcb = &self.dcb[base..][..n];
        let dsb = &self.dsb[base..][..n];
        let ts = &self.ts[base..][..n];
        let tau = &self.tau[base..][..n];
        let slew = &self.slew[base..][..n];
        let vlin = &self.vlin[base..][..n];
        let decay = &self.decay[base..][..n];
        let swing = &self.swing[base..][..n];
        for l in 0..n {
            let ideal = gain[l] * (x[l] + off[l]) - dac[l] * dacg[l] * vref[l];
            let compression = 1.0 + (ideal / knee[l]).powi(2);
            let factor = 1.0 / (1.0 + compression / dcb[l]);
            let target = ideal * factor;
            let initial = prev[l];
            // SettlePlan::settle, inlined over the flat fields. The
            // clamps are spelled max/min because `f64::clamp` carries a
            // `min <= max` assertion whose per-element panic edge
            // blocks if-conversion (and so vectorization) of the whole
            // loop; for the non-NaN values this kernel sees the two
            // forms are bit-identical.
            let sw = swing[l];
            let tc = target.max(-sw).min(sw);
            let dv = tc - initial;
            let dv_abs = dv.abs();
            let sign = dv.signum();
            let t_slew = (dv_abs - vlin[l]) / slew[l];
            let remaining = (ts[l] - t_slew).max(0.0).min(ts[l]);
            let tail = adc_analog::stripe::exp_nonpos(-remaining / tau[l]);
            let lin = tc - dv * decay[l];
            let rail = initial + sign * slew[l] * ts[l];
            let slew_v = tc - sign * vlin[l] * tail;
            let seg = if dv_abs <= vlin[l] {
                lin
            } else if t_slew >= ts[l] {
                rail
            } else {
                slew_v
            };
            let settled = if ts[l] > 0.0 { seg } else { initial };
            let settled = settled.max(-sw).min(sw);
            let dsb_error = if dsb[l] > 0.0 {
                (target - initial) * dsb[l]
            } else {
                0.0
            };
            let out = settled - dsb_error + noise_v[l];
            prev[l] = out;
            x[l] = out;
        }
    }
}

/// One stage's residue amplifier.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mdac {
    /// Fabricated C1 (the capacitor the DSB switches to the reference),
    /// farads.
    pub c1_f: f64,
    /// Fabricated C2 (the feedback capacitor), farads.
    pub c2_f: f64,
    /// Feedback factor during amplification.
    pub beta: f64,
    /// The residue amplifier at its operating point.
    pub opamp: OpAmp,
    /// Time constant of the DSB reference switches charging C1, seconds.
    /// Unlike the opamp's τ (whose bias scales with conversion rate), this
    /// is *fixed* — the mechanism that ends the paper's flat-performance
    /// range above ≈140 MS/s. Zero disables it.
    pub dsb_tau_s: f64,
    /// Previous held output (settling starts from here).
    prev_output_v: f64,
}

impl Mdac {
    /// Creates an MDAC.
    ///
    /// # Panics
    ///
    /// Panics if capacitances are non-positive or `beta` is outside
    /// `(0, 1]`.
    pub fn new(c1_f: f64, c2_f: f64, beta: f64, opamp: OpAmp) -> Self {
        assert!(c1_f > 0.0 && c2_f > 0.0, "capacitances must be positive");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Self {
            c1_f,
            c2_f,
            beta,
            opamp,
            dsb_tau_s: 0.0,
            prev_output_v: 0.0,
        }
    }

    /// Sets the DSB reference-switch time constant.
    pub fn with_dsb_tau(mut self, dsb_tau_s: f64) -> Self {
        assert!(dsb_tau_s >= 0.0, "time constant must be non-negative");
        self.dsb_tau_s = dsb_tau_s;
        self
    }

    /// The stage's actual interstage gain `(C1 + C2)/C2` (ideally 2).
    pub fn gain(&self) -> f64 {
        (self.c1_f + self.c2_f) / self.c2_f
    }

    /// The DAC step `C1/C2` (ideally 1).
    pub fn dac_gain(&self) -> f64 {
        self.c1_f / self.c2_f
    }

    /// The residue an ideal-in-time amplifier would produce (before
    /// settling/noise), including capacitor mismatch and finite opamp
    /// gain.
    pub fn target_residue_v(&self, v_in: f64, dac_level: i8, v_ref_eff: f64) -> f64 {
        let ideal = self.gain() * (v_in + self.opamp.input_offset_v)
            - f64::from(dac_level) * self.dac_gain() * v_ref_eff;
        ideal * self.opamp.gain_error_factor_at(self.beta, ideal)
    }

    /// Runs one amplification phase.
    ///
    /// * `v_in` — the held stage input;
    /// * `dac_level` — the ADSC decision d ∈ {−1, 0, +1};
    /// * `v_ref_eff` — the effective reference for this event (droop and
    ///   noise applied upstream);
    /// * `settle_time_s` — the timing budget's settle time;
    /// * `noise` — for the sampled opamp noise.
    ///
    /// Returns the residue handed to the next stage.
    pub fn amplify(
        &mut self,
        v_in: f64,
        dac_level: i8,
        v_ref_eff: f64,
        settle_time_s: f64,
        noise: &mut NoiseSource,
    ) -> f64 {
        let target = self.target_residue_v(v_in, dac_level, v_ref_eff);
        let settled = self
            .opamp
            .settle(target, self.prev_output_v, settle_time_s, self.beta);
        // The DSB's reference switches form a second, rate-independent
        // pole: its residual error adds to the opamp's.
        let dsb_error = if self.dsb_tau_s > 0.0 {
            (target - self.prev_output_v) * (-settle_time_s / self.dsb_tau_s).exp()
        } else {
            0.0
        };
        let out = settled - dsb_error + self.opamp.sample_noise(self.beta, noise);
        self.prev_output_v = out;
        out
    }

    /// Resets the settling memory (between measurement records).
    pub fn reset(&mut self) {
        self.prev_output_v = 0.0;
    }

    /// Precomputes this MDAC's per-sample constants for one settle time.
    pub fn plan(&self, settle_time_s: f64) -> MdacPlan {
        MdacPlan {
            gain: self.gain(),
            dac_gain: self.dac_gain(),
            input_offset_v: self.opamp.input_offset_v,
            dc_gain: self.opamp.spec.dc_gain,
            beta: self.beta,
            gain_knee_v: self.opamp.spec.gain_knee_v,
            settle: self.opamp.settle_plan(settle_time_s, self.beta),
            dsb_decay: if self.dsb_tau_s > 0.0 {
                (-settle_time_s / self.dsb_tau_s).exp()
            } else {
                0.0
            },
            noise_rms_v: self.opamp.sampled_noise_rms_v(self.beta),
        }
    }

    /// Planned amplification phase: the same deterministic model as
    /// [`Mdac::amplify`], but with every operating-point constant taken
    /// from `plan` and the sampled output noise supplied by the caller
    /// (`noise_v`) so several independent Gaussian sources can be merged
    /// into one draw upstream.
    pub fn amplify_planned(
        &mut self,
        plan: &MdacPlan,
        v_in: f64,
        dac_level: i8,
        v_ref_eff: f64,
        noise_v: f64,
    ) -> f64 {
        plan.amplify(v_in, dac_level, v_ref_eff, noise_v, &mut self.prev_output_v)
    }

    /// The MDAC's settling memory (the held previous output), for the
    /// lane kernel's gather/scatter of per-stage state into flat arrays.
    pub fn prev_output_v(&self) -> f64 {
        self.prev_output_v
    }

    /// Restores the settling memory scattered back by the lane kernel.
    pub fn set_prev_output_v(&mut self, v: f64) {
        self.prev_output_v = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_analog::opamp::OpAmpSpec;

    fn ideal_mdac() -> Mdac {
        let amp = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        Mdac::new(2e-12, 2e-12, 0.5, amp)
    }

    fn quiet() -> NoiseSource {
        NoiseSource::from_seed(0)
    }

    #[test]
    fn ideal_residue_is_2vin_minus_dvref() {
        let mut m = ideal_mdac();
        let mut n = quiet();
        let r = m.amplify(0.3, 1, 1.0, 1e-6, &mut n);
        assert!((r - (0.6 - 1.0)).abs() < 1e-12);
        let r = m.amplify(-0.2, -1, 1.0, 1e-6, &mut n);
        assert!((r - (-0.4 + 1.0)).abs() < 1e-12);
        let r = m.amplify(0.1, 0, 1.0, 1e-6, &mut n);
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn capacitor_mismatch_changes_gain_and_dac_step() {
        let amp = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        // C1 0.5 % high.
        let m = Mdac::new(2.01e-12, 2e-12, 0.5, amp);
        assert!((m.gain() - 2.005).abs() < 1e-12);
        assert!((m.dac_gain() - 1.005).abs() < 1e-12);
    }

    #[test]
    fn finite_gain_shrinks_residue() {
        let spec = OpAmpSpec {
            dc_gain: 1000.0,
            ..OpAmpSpec::ideal()
        };
        let amp = OpAmp::new(spec, 1e-3, 1e-12);
        let mut m = Mdac::new(2e-12, 2e-12, 0.5, amp);
        let mut n = quiet();
        let r = m.amplify(0.4, 0, 1.0, 1e-3, &mut n);
        let expected = 0.8 / (1.0 + 1.0 / (1000.0 * 0.5));
        assert!((r - expected).abs() < 1e-9, "r {r} vs {expected}");
    }

    #[test]
    fn short_settle_time_leaves_memory_of_previous_output() {
        let spec = OpAmpSpec::miller_two_stage();
        let amp = OpAmp::new(spec, 1e-4, 4e-12);
        let mut m = Mdac::new(2e-12, 2e-12, 0.45, amp);
        let mut n = quiet();
        // Converge to +0.8 fully...
        let _ = m.amplify(0.4, 0, 1.0, 1e-3, &mut n);
        // ...then give a new target almost no time: output barely moves.
        let r = m.amplify(-0.4, 0, 1.0, 10e-12, &mut n);
        assert!(r > 0.5, "residue should still be near +0.8, got {r}");
        m.reset();
        let r = m.amplify(-0.4, 0, 1.0, 10e-12, &mut n);
        assert!(r.abs() < 0.2, "after reset settles from 0, got {r}");
    }

    #[test]
    fn residue_clips_at_opamp_swing() {
        let spec = OpAmpSpec {
            output_swing_v: 1.3,
            ..OpAmpSpec::ideal()
        };
        let amp = OpAmp::new(spec, 1e-3, 1e-12);
        let mut m = Mdac::new(2e-12, 2e-12, 0.5, amp);
        let mut n = quiet();
        // 2·0.9 − (−1) = 2.8 V target: clips at 1.3 V.
        let r = m.amplify(0.9, -1, 1.0, 1e-3, &mut n);
        assert_eq!(r, 1.3);
    }

    #[test]
    fn planned_amplify_matches_amplify_bit_for_bit() {
        // Non-ideal spec with mismatch, offset, DSB pole and noise: the
        // planned path must reproduce the reference path exactly when
        // fed the same noise draws.
        let spec = OpAmpSpec::miller_two_stage();
        let amp = OpAmp::new(spec, 1e-4, 4e-12).with_offset(1.2e-3);
        let mdac = || Mdac::new(2.01e-12, 2e-12, 0.45, amp).with_dsb_tau(0.2e-9);
        let (mut reference, mut planned) = (mdac(), mdac());
        let settle = 4.0e-9;
        let plan = planned.plan(settle);
        let mut n_ref = NoiseSource::from_seed(3);
        let mut n_plan = NoiseSource::from_seed(3);
        for i in 0..64usize {
            let v = 0.4 * ((i * 37 % 64) as f64 / 32.0 - 1.0);
            let d = [-1i8, 0, 1][i % 3];
            let a = reference.amplify(v, d, 1.0, settle, &mut n_ref);
            let noise_v = n_plan.gaussian(0.0, plan.noise_rms_v);
            let b = planned.amplify_planned(&plan, v, d, 1.0, noise_v);
            assert_eq!(a.to_bits(), b.to_bits(), "divergence at step {i}");
        }
    }

    #[test]
    fn reference_error_scales_dac_term_only() {
        let mut m = ideal_mdac();
        let mut n = quiet();
        let nominal = m.amplify(0.3, 1, 1.0, 1e-6, &mut n);
        m.reset();
        let drooped = m.amplify(0.3, 1, 0.999, 1e-6, &mut n);
        assert!((drooped - nominal - 0.001).abs() < 1e-12);
        m.reset();
        // d = 0: reference does not enter at all.
        let a = m.amplify(0.3, 0, 1.0, 1e-6, &mut n);
        m.reset();
        let b = m.amplify(0.3, 0, 0.9, 1e-6, &mut n);
        assert_eq!(a, b);
    }

    #[test]
    fn soa_kernel_matches_planned_amplify_bit_for_bit() {
        // Randomized plans spanning every branch of the scalar path:
        // finite/infinite dc gain, finite/non-finite/non-positive knee,
        // DSB on/off, zero-duration settling, and inputs landing in the
        // linear, slewing, railed, and clipped segments.
        use adc_analog::opamp::SettlePlan;
        let mut rng = NoiseSource::from_seed(9);
        let mut uni = |lo: f64, hi: f64| rng.uniform(lo, hi);
        let mut plans = Vec::new();
        let mut soa = AmpConstants::default();
        for i in 0..256usize {
            let tau = uni(0.2e-9, 1.5e-9);
            let slew = uni(2e8, 4e9);
            let ts = if i % 7 == 3 { 0.0 } else { uni(1e-9, 6e-9) };
            let plan = MdacPlan {
                gain: uni(1.8, 2.2),
                dac_gain: uni(0.9, 1.1),
                input_offset_v: uni(-5e-3, 5e-3),
                dc_gain: match i % 3 {
                    0 => f64::INFINITY,
                    _ => uni(200.0, 5e4),
                },
                beta: uni(0.4, 0.6),
                gain_knee_v: match i % 5 {
                    0 => f64::INFINITY,
                    1 => -1.0,
                    2 => 0.0,
                    _ => uni(0.4, 1.5),
                },
                settle: SettlePlan {
                    settle_time_s: ts,
                    tau_s: tau,
                    slew_rate_v_per_s: slew,
                    v_lin: slew * tau,
                    decay: if ts > 0.0 { (-ts / tau).exp() } else { 0.0 },
                    output_swing_v: uni(0.9, 1.3),
                },
                dsb_decay: if i % 2 == 0 { 0.0 } else { uni(1e-4, 0.2) },
                noise_rms_v: 0.0,
            };
            soa.push(&plan);
            plans.push(plan);
        }
        let n = plans.len();
        let mut prev_scalar = vec![0.0f64; n];
        let mut prev_soa = vec![0.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut dac = vec![0.0f64; n];
        let mut dac_i = vec![0i8; n];
        let mut vref = vec![0.0f64; n];
        let mut noise_v = vec![0.0f64; n];
        for round in 0..64usize {
            for l in 0..n {
                x[l] = uni(-2.5, 2.5);
                let d = [-1i8, 0, 1][(l + round) % 3];
                dac_i[l] = d;
                dac[l] = f64::from(d);
                vref[l] = uni(0.95, 1.0);
                noise_v[l] = uni(-2e-4, 2e-4);
            }
            let mut want = x.clone();
            for l in 0..n {
                want[l] =
                    plans[l].amplify(x[l], dac_i[l], vref[l], noise_v[l], &mut prev_scalar[l]);
            }
            soa.amplify_lanes(0, &mut x, &dac, &vref, &noise_v, &mut prev_soa);
            for l in 0..n {
                assert_eq!(
                    x[l].to_bits(),
                    want[l].to_bits(),
                    "lane {l} round {round} diverged: soa {} vs scalar {}",
                    x[l],
                    want[l]
                );
                assert_eq!(prev_soa[l].to_bits(), prev_scalar[l].to_bits());
            }
        }
    }
}
