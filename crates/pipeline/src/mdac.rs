//! The multiplying DAC (MDAC): residue generation with every §3
//! non-ideality.
//!
//! In the amplification phase (Fig. 2 of the paper) C1 is switched to
//! ±V_REF or V_CM by the DSB while C2 closes the loop around the opamp.
//! The ideal residue is
//!
//! ```text
//! V_out = (C1 + C2)/C2 · V_in − d · (C1/C2) · V_REF,   d ∈ {−1, 0, +1}
//! ```
//!
//! which for matched capacitors is the textbook `2·V_in − d·V_REF`. The
//! model layers on: capacitor-mismatch gain and DAC-level errors (the INL
//! signature), the opamp's finite-gain error, incomplete settling from the
//! previous output (the paper's §3 timing discussion), slew limiting,
//! output clipping, and sampled opamp noise.

use adc_analog::noise::NoiseSource;
use adc_analog::opamp::{OpAmp, SettlePlan};

/// Precomputed per-sample constants of one MDAC at one timing point.
///
/// Built by [`Mdac::plan`] once per timing/configuration change so the
/// conversion loop's inner pass ([`Mdac::amplify_planned`]) performs no
/// divisions and — on the dominant linear-settling branch — no `exp()`.
/// Every field mirrors the quantity [`Mdac::amplify`] derives per call.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MdacPlan {
    /// Interstage gain `(C1 + C2)/C2`.
    pub gain: f64,
    /// DAC step `C1/C2`.
    pub dac_gain: f64,
    /// Fabricated input-referred opamp offset, volts.
    pub input_offset_v: f64,
    /// Open-loop DC gain `A0` (infinite for an ideal amplifier).
    pub dc_gain: f64,
    /// Feedback factor during amplification.
    pub beta: f64,
    /// Gain-compression knee, volts.
    pub gain_knee_v: f64,
    /// Opamp settling constants at `(settle_time, beta)`.
    pub settle: SettlePlan,
    /// DSB residual factor `exp(−t_settle/τ_dsb)` (0 when disabled).
    pub dsb_decay: f64,
    /// RMS sampled opamp output noise, volts.
    pub noise_rms_v: f64,
}

/// One stage's residue amplifier.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mdac {
    /// Fabricated C1 (the capacitor the DSB switches to the reference),
    /// farads.
    pub c1_f: f64,
    /// Fabricated C2 (the feedback capacitor), farads.
    pub c2_f: f64,
    /// Feedback factor during amplification.
    pub beta: f64,
    /// The residue amplifier at its operating point.
    pub opamp: OpAmp,
    /// Time constant of the DSB reference switches charging C1, seconds.
    /// Unlike the opamp's τ (whose bias scales with conversion rate), this
    /// is *fixed* — the mechanism that ends the paper's flat-performance
    /// range above ≈140 MS/s. Zero disables it.
    pub dsb_tau_s: f64,
    /// Previous held output (settling starts from here).
    prev_output_v: f64,
}

impl Mdac {
    /// Creates an MDAC.
    ///
    /// # Panics
    ///
    /// Panics if capacitances are non-positive or `beta` is outside
    /// `(0, 1]`.
    pub fn new(c1_f: f64, c2_f: f64, beta: f64, opamp: OpAmp) -> Self {
        assert!(c1_f > 0.0 && c2_f > 0.0, "capacitances must be positive");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Self {
            c1_f,
            c2_f,
            beta,
            opamp,
            dsb_tau_s: 0.0,
            prev_output_v: 0.0,
        }
    }

    /// Sets the DSB reference-switch time constant.
    pub fn with_dsb_tau(mut self, dsb_tau_s: f64) -> Self {
        assert!(dsb_tau_s >= 0.0, "time constant must be non-negative");
        self.dsb_tau_s = dsb_tau_s;
        self
    }

    /// The stage's actual interstage gain `(C1 + C2)/C2` (ideally 2).
    pub fn gain(&self) -> f64 {
        (self.c1_f + self.c2_f) / self.c2_f
    }

    /// The DAC step `C1/C2` (ideally 1).
    pub fn dac_gain(&self) -> f64 {
        self.c1_f / self.c2_f
    }

    /// The residue an ideal-in-time amplifier would produce (before
    /// settling/noise), including capacitor mismatch and finite opamp
    /// gain.
    pub fn target_residue_v(&self, v_in: f64, dac_level: i8, v_ref_eff: f64) -> f64 {
        let ideal = self.gain() * (v_in + self.opamp.input_offset_v)
            - f64::from(dac_level) * self.dac_gain() * v_ref_eff;
        ideal * self.opamp.gain_error_factor_at(self.beta, ideal)
    }

    /// Runs one amplification phase.
    ///
    /// * `v_in` — the held stage input;
    /// * `dac_level` — the ADSC decision d ∈ {−1, 0, +1};
    /// * `v_ref_eff` — the effective reference for this event (droop and
    ///   noise applied upstream);
    /// * `settle_time_s` — the timing budget's settle time;
    /// * `noise` — for the sampled opamp noise.
    ///
    /// Returns the residue handed to the next stage.
    pub fn amplify(
        &mut self,
        v_in: f64,
        dac_level: i8,
        v_ref_eff: f64,
        settle_time_s: f64,
        noise: &mut NoiseSource,
    ) -> f64 {
        let target = self.target_residue_v(v_in, dac_level, v_ref_eff);
        let settled = self
            .opamp
            .settle(target, self.prev_output_v, settle_time_s, self.beta);
        // The DSB's reference switches form a second, rate-independent
        // pole: its residual error adds to the opamp's.
        let dsb_error = if self.dsb_tau_s > 0.0 {
            (target - self.prev_output_v) * (-settle_time_s / self.dsb_tau_s).exp()
        } else {
            0.0
        };
        let out = settled - dsb_error + self.opamp.sample_noise(self.beta, noise);
        self.prev_output_v = out;
        out
    }

    /// Resets the settling memory (between measurement records).
    pub fn reset(&mut self) {
        self.prev_output_v = 0.0;
    }

    /// Precomputes this MDAC's per-sample constants for one settle time.
    pub fn plan(&self, settle_time_s: f64) -> MdacPlan {
        MdacPlan {
            gain: self.gain(),
            dac_gain: self.dac_gain(),
            input_offset_v: self.opamp.input_offset_v,
            dc_gain: self.opamp.spec.dc_gain,
            beta: self.beta,
            gain_knee_v: self.opamp.spec.gain_knee_v,
            settle: self.opamp.settle_plan(settle_time_s, self.beta),
            dsb_decay: if self.dsb_tau_s > 0.0 {
                (-settle_time_s / self.dsb_tau_s).exp()
            } else {
                0.0
            },
            noise_rms_v: self.opamp.sampled_noise_rms_v(self.beta),
        }
    }

    /// Planned amplification phase: the same deterministic model as
    /// [`Mdac::amplify`], but with every operating-point constant taken
    /// from `plan` and the sampled output noise supplied by the caller
    /// (`noise_v`) so several independent Gaussian sources can be merged
    /// into one draw upstream.
    pub fn amplify_planned(
        &mut self,
        plan: &MdacPlan,
        v_in: f64,
        dac_level: i8,
        v_ref_eff: f64,
        noise_v: f64,
    ) -> f64 {
        let ideal = plan.gain * (v_in + plan.input_offset_v)
            - f64::from(dac_level) * plan.dac_gain * v_ref_eff;
        // Mirrors OpAmp::gain_error_factor_at with the spec constants
        // lifted into the plan.
        let factor = if plan.dc_gain.is_infinite() {
            1.0
        } else {
            let knee = plan.gain_knee_v;
            let compression = if knee.is_finite() && knee > 0.0 {
                1.0 + (ideal / knee).powi(2)
            } else {
                1.0
            };
            1.0 / (1.0 + compression / (plan.dc_gain * plan.beta))
        };
        let target = ideal * factor;
        let settled = plan.settle.settle(target, self.prev_output_v);
        let dsb_error = if plan.dsb_decay > 0.0 {
            (target - self.prev_output_v) * plan.dsb_decay
        } else {
            0.0
        };
        let out = settled - dsb_error + noise_v;
        self.prev_output_v = out;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_analog::opamp::OpAmpSpec;

    fn ideal_mdac() -> Mdac {
        let amp = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        Mdac::new(2e-12, 2e-12, 0.5, amp)
    }

    fn quiet() -> NoiseSource {
        NoiseSource::from_seed(0)
    }

    #[test]
    fn ideal_residue_is_2vin_minus_dvref() {
        let mut m = ideal_mdac();
        let mut n = quiet();
        let r = m.amplify(0.3, 1, 1.0, 1e-6, &mut n);
        assert!((r - (0.6 - 1.0)).abs() < 1e-12);
        let r = m.amplify(-0.2, -1, 1.0, 1e-6, &mut n);
        assert!((r - (-0.4 + 1.0)).abs() < 1e-12);
        let r = m.amplify(0.1, 0, 1.0, 1e-6, &mut n);
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn capacitor_mismatch_changes_gain_and_dac_step() {
        let amp = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        // C1 0.5 % high.
        let m = Mdac::new(2.01e-12, 2e-12, 0.5, amp);
        assert!((m.gain() - 2.005).abs() < 1e-12);
        assert!((m.dac_gain() - 1.005).abs() < 1e-12);
    }

    #[test]
    fn finite_gain_shrinks_residue() {
        let spec = OpAmpSpec {
            dc_gain: 1000.0,
            ..OpAmpSpec::ideal()
        };
        let amp = OpAmp::new(spec, 1e-3, 1e-12);
        let mut m = Mdac::new(2e-12, 2e-12, 0.5, amp);
        let mut n = quiet();
        let r = m.amplify(0.4, 0, 1.0, 1e-3, &mut n);
        let expected = 0.8 / (1.0 + 1.0 / (1000.0 * 0.5));
        assert!((r - expected).abs() < 1e-9, "r {r} vs {expected}");
    }

    #[test]
    fn short_settle_time_leaves_memory_of_previous_output() {
        let spec = OpAmpSpec::miller_two_stage();
        let amp = OpAmp::new(spec, 1e-4, 4e-12);
        let mut m = Mdac::new(2e-12, 2e-12, 0.45, amp);
        let mut n = quiet();
        // Converge to +0.8 fully...
        let _ = m.amplify(0.4, 0, 1.0, 1e-3, &mut n);
        // ...then give a new target almost no time: output barely moves.
        let r = m.amplify(-0.4, 0, 1.0, 10e-12, &mut n);
        assert!(r > 0.5, "residue should still be near +0.8, got {r}");
        m.reset();
        let r = m.amplify(-0.4, 0, 1.0, 10e-12, &mut n);
        assert!(r.abs() < 0.2, "after reset settles from 0, got {r}");
    }

    #[test]
    fn residue_clips_at_opamp_swing() {
        let spec = OpAmpSpec {
            output_swing_v: 1.3,
            ..OpAmpSpec::ideal()
        };
        let amp = OpAmp::new(spec, 1e-3, 1e-12);
        let mut m = Mdac::new(2e-12, 2e-12, 0.5, amp);
        let mut n = quiet();
        // 2·0.9 − (−1) = 2.8 V target: clips at 1.3 V.
        let r = m.amplify(0.9, -1, 1.0, 1e-3, &mut n);
        assert_eq!(r, 1.3);
    }

    #[test]
    fn planned_amplify_matches_amplify_bit_for_bit() {
        // Non-ideal spec with mismatch, offset, DSB pole and noise: the
        // planned path must reproduce the reference path exactly when
        // fed the same noise draws.
        let spec = OpAmpSpec::miller_two_stage();
        let amp = OpAmp::new(spec, 1e-4, 4e-12).with_offset(1.2e-3);
        let mdac = || Mdac::new(2.01e-12, 2e-12, 0.45, amp).with_dsb_tau(0.2e-9);
        let (mut reference, mut planned) = (mdac(), mdac());
        let settle = 4.0e-9;
        let plan = planned.plan(settle);
        let mut n_ref = NoiseSource::from_seed(3);
        let mut n_plan = NoiseSource::from_seed(3);
        for i in 0..64usize {
            let v = 0.4 * ((i * 37 % 64) as f64 / 32.0 - 1.0);
            let d = [-1i8, 0, 1][i % 3];
            let a = reference.amplify(v, d, 1.0, settle, &mut n_ref);
            let noise_v = n_plan.gaussian(0.0, plan.noise_rms_v);
            let b = planned.amplify_planned(&plan, v, d, 1.0, noise_v);
            assert_eq!(a.to_bits(), b.to_bits(), "divergence at step {i}");
        }
    }

    #[test]
    fn reference_error_scales_dac_term_only() {
        let mut m = ideal_mdac();
        let mut n = quiet();
        let nominal = m.amplify(0.3, 1, 1.0, 1e-6, &mut n);
        m.reset();
        let drooped = m.amplify(0.3, 1, 0.999, 1e-6, &mut n);
        assert!((drooped - nominal - 0.001).abs() < 1e-12);
        m.reset();
        // d = 0: reference does not enter at all.
        let a = m.amplify(0.3, 0, 1.0, 1e-6, &mut n);
        m.reset();
        let b = m.amplify(0.3, 0, 0.9, 1e-6, &mut n);
        assert_eq!(a, b);
    }
}
