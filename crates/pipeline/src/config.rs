//! Converter configuration: every design knob of the paper's ADC in one
//! serialisable tree, with calibrated presets.
//!
//! [`AdcConfig::nominal_110ms`] is the reproduction's "die": its constants
//! are calibrated so the simulated converter lands on the paper's Table I
//! (SNR 67.1 dB, SNDR 64.2 dB, SFDR 69.4 dB, ENOB 10.4 at f_in = 10 MHz,
//! 110 MS/s, 97 mW). [`AdcConfig::ideal`] strips every non-ideality and
//! must measure as a textbook 12-bit quantizer — the test suite pins both.

use adc_analog::capacitor::CapacitorSpec;
use adc_analog::comparator::ComparatorSpec;
use adc_analog::noise::ApertureJitter;
use adc_analog::opamp::OpAmpSpec;
use adc_analog::process::OperatingConditions;
use adc_analog::switch::SwitchTopology;
use adc_bias::power::FixedPowerBreakdown;

use crate::clocking::ClockScheme;

/// Per-stage scaling of sampling capacitance and bias current.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ScalingProfile {
    /// The paper's profile: stage 1 at 1, stage 2 at 2/3, the rest at 1/3.
    Paper,
    /// No scaling: every stage sized like stage 1 (ablation C baseline).
    Uniform,
    /// Explicit per-stage factors (must match the stage count).
    Custom(Vec<f64>),
}

impl ScalingProfile {
    /// The scale factor of stage `index` (0-based) in an `n`-stage chain.
    ///
    /// # Panics
    ///
    /// Panics for a `Custom` profile whose length does not cover `index`,
    /// or for non-positive custom factors.
    pub fn factor(&self, index: usize) -> f64 {
        match self {
            ScalingProfile::Paper => match index {
                0 => 1.0,
                1 => 2.0 / 3.0,
                _ => 1.0 / 3.0,
            },
            ScalingProfile::Uniform => 1.0,
            ScalingProfile::Custom(v) => {
                let f = v[index];
                assert!(f > 0.0, "scale factor must be positive");
                f
            }
        }
    }

    /// All factors for an `n`-stage chain.
    pub fn factors(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.factor(i)).collect()
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ScalingProfile::Paper => "scaled (1, 2/3, 1/3...)",
            ScalingProfile::Uniform => "unscaled",
            ScalingProfile::Custom(_) => "custom scaling",
        }
    }
}

/// Which bias generator drives the stages.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BiasKind {
    /// The paper's SC generator (Eq. 1): current tracks `f_CR` and `C_B`.
    Switched,
    /// Conventional fixed bias sized for `design_rate_hz` with
    /// `margin` ≥ 1 covering the worst-case capacitor corner.
    Fixed {
        /// Rate the fixed current was sized for, hertz.
        design_rate_hz: f64,
        /// Over-design margin (≥ 1).
        margin: f64,
    },
}

/// Front-end architecture.
///
/// The paper applies the input *directly to stage 1*, "which also
/// performs sample-and-hold" (§2) — a SHA-less front end. Its cost: the
/// ADSC samples the input through its own path, skewed from the main
/// C1/C2 sampling instant, so at high input frequency the ADSC decides on
/// a slightly different voltage. The 1.5-bit redundancy absorbs that
/// error as long as `skew · dV/dt` stays below the ±V_REF/4 correction
/// budget — which is precisely why the architecture can afford to drop
/// the dedicated SHA and its power.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FrontEndKind {
    /// No dedicated sample-and-hold (the paper's choice). `aperture
    /// skew` is the sampling-instant mismatch between the ADSC path and
    /// the main path.
    ShaLess {
        /// ADSC-to-MDAC aperture skew, seconds.
        adsc_aperture_skew_s: f64,
    },
    /// A dedicated SHA ahead of stage 1: no skew, but extra noise and
    /// power.
    DedicatedSha {
        /// Input-referred noise the SHA adds, volts RMS.
        extra_noise_rms_v: f64,
        /// Power the SHA burns, watts (rate-independent bias assumed).
        extra_power_w: f64,
    },
}

impl FrontEndKind {
    /// The paper's SHA-less front end with a realistic ~3 ps path skew.
    pub fn paper_sha_less() -> Self {
        FrontEndKind::ShaLess {
            adsc_aperture_skew_s: 3e-12,
        }
    }

    /// A representative dedicated SHA: 120 µV added noise, 18 mW.
    pub fn conventional_sha() -> Self {
        FrontEndKind::DedicatedSha {
            extra_noise_rms_v: 120e-6,
            extra_power_w: 18e-3,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FrontEndKind::ShaLess { .. } => "SHA-less (paper)",
            FrontEndKind::DedicatedSha { .. } => "dedicated SHA",
        }
    }
}

/// Reference distribution quality.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum ReferenceQuality {
    /// Mathematically exact references.
    Ideal,
    /// Band-gap-derived, buffered, off-chip-decoupled references with
    /// static error, code-dependent droop, and noise.
    #[default]
    Decoupled,
}

/// Complete design description of the converter.
///
/// All fields are public so sweeps can use struct-update syntax from a
/// preset:
///
/// ```
/// use adc_pipeline::config::AdcConfig;
/// let cfg = AdcConfig {
///     f_cr_hz: 80e6,
///     ..AdcConfig::nominal_110ms()
/// };
/// assert_eq!(cfg.f_cr_hz, 80e6);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdcConfig {
    /// Conversion rate, hertz.
    pub f_cr_hz: f64,
    /// Differential reference voltage: full-scale input is ±`v_ref_v`
    /// (2·`v_ref_v` peak-to-peak differential; the paper's 2 V_P-P means
    /// `v_ref_v` = 1.0).
    pub v_ref_v: f64,
    /// Number of 1.5-bit stages before the 2-bit flash (paper: 10).
    pub stage_count: usize,
    /// Stage-1 total sampling capacitance spec (C1 + C2).
    pub c_sample_stage1: CapacitorSpec,
    /// Per-stage capacitance/bias scaling.
    pub scaling: ScalingProfile,
    /// Fixed parasitic capacitance added to every stage's load, farads
    /// (routing + opamp self-load; does *not* scale with the stage).
    pub parasitic_load_f: f64,
    /// Parasitic input capacitance of the opamp as a fraction of the
    /// sampling capacitance; degrades the feedback factor β.
    pub beta_parasitic_fraction: f64,
    /// Input switch topology (the paper: bulk-switched transmission gate).
    pub input_switch: SwitchTopology,
    /// Front-end architecture (the paper: SHA-less).
    pub front_end: FrontEndKind,
    /// Clocking scheme (the paper: locally generated, no non-overlap).
    pub clocking: ClockScheme,
    /// Fixed ADSC + DSB decision delay before MDAC settling starts,
    /// seconds.
    pub logic_delay_s: f64,
    /// Time constant of the DSB reference switches, seconds. Fixed with
    /// conversion rate (switches do not scale with the bias), so it caps
    /// the usable rate around 140–150 MS/s as in Fig. 5.
    pub dsb_switch_tau_s: f64,
    /// Sampling-clock aperture jitter.
    pub jitter: ApertureJitter,
    /// Residue amplifier design.
    pub opamp: OpAmpSpec,
    /// Sub-converter comparator design.
    pub comparator: ComparatorSpec,
    /// The SC bias generator's capacitor `C_B`.
    pub bias_c_b: CapacitorSpec,
    /// The band-gap-derived `V_BIAS`, volts.
    pub v_bias_v: f64,
    /// Which bias generator to instantiate.
    pub bias_kind: BiasKind,
    /// Mirror ratio from the master current to the stage-1 bias.
    pub mirror_base_ratio: f64,
    /// One-sigma mirror ratio mismatch.
    pub mirror_mismatch_sigma: f64,
    /// Ratio of a stage's total supply current to its bias current.
    pub opamp_current_factor: f64,
    /// Constant-power blocks.
    pub fixed_power: FixedPowerBreakdown,
    /// Reference distribution quality.
    pub reference: ReferenceQuality,
    /// Whether physical thermal (kT/C) sampling noise is applied. Only
    /// the [`AdcConfig::ideal`] reference preset turns this off.
    pub thermal_noise: bool,
    /// Lumped wideband input-referred noise of everything not modelled
    /// structurally (clock buffers, reference chain, substrate), volts RMS.
    pub aux_noise_rms_v: f64,
    /// Flicker-noise calibration: adds `k/√f_CR` volts RMS of
    /// input-referred noise (longer sample periods integrate more 1/f
    /// noise) — the gentle SNDR droop below 20 MS/s in Fig. 5.
    pub flicker_noise_coeff: f64,
    /// Nonlinear (cubic) hold-phase leakage coefficient, A/V³; generates
    /// distortion that grows as the hold time lengthens (very low rates).
    pub leak_cubic_a_per_v3: f64,
    /// Supply ripple amplitude at the analog supply, volts peak (0 for a
    /// clean bench supply).
    pub supply_ripple_v: f64,
    /// Supply ripple frequency, hertz.
    pub supply_ripple_hz: f64,
    /// Power-supply rejection from the supply to the converter input, dB
    /// (positive; the injected error is `ripple·10^(−PSRR/20)`).
    pub psrr_db: f64,
    /// Operating conditions (temperature, supply, corner).
    pub conditions: OperatingConditions,
}

impl AdcConfig {
    /// The calibrated reproduction of the paper's 110 MS/s design.
    ///
    /// Calibration anchors (see `EXPERIMENTS.md`): Table I dynamic metrics
    /// at f_in = 10 MHz and the Fig. 4 power points (97 mW @ 110 MS/s,
    /// 110 mW @ 130 MS/s).
    pub fn nominal_110ms() -> Self {
        Self {
            f_cr_hz: 110e6,
            v_ref_v: 1.0,
            stage_count: 10,
            c_sample_stage1: CapacitorSpec::new(4e-12, 0.15, 0.001),
            scaling: ScalingProfile::Paper,
            parasitic_load_f: 0.3e-12,
            beta_parasitic_fraction: 0.15,
            input_switch: SwitchTopology::TransmissionGate {
                bulk_switched: true,
            },
            front_end: FrontEndKind::paper_sha_less(),
            clocking: ClockScheme::LocalGenerated,
            logic_delay_s: 1.0e-9,
            dsb_switch_tau_s: 0.32e-9,
            jitter: ApertureJitter::new(0.45e-12),
            opamp: OpAmpSpec {
                dc_gain: 10_000.0,
                v_ov_v: 0.18,
                slew_current_fraction: 2.0,
                output_swing_v: 1.3,
                noise_excess_factor: 8.0,
                gain_knee_v: 0.62,
                offset_sigma_v: 1e-3,
            },
            comparator: ComparatorSpec::dynamic_latch(),
            bias_c_b: CapacitorSpec::digital_metal(1e-12),
            v_bias_v: 0.9,
            bias_kind: BiasKind::Switched,
            mirror_base_ratio: 37.0,
            mirror_mismatch_sigma: 0.01,
            opamp_current_factor: 2.5,
            fixed_power: FixedPowerBreakdown::paper_nominal(),
            reference: ReferenceQuality::Decoupled,
            thermal_noise: true,
            aux_noise_rms_v: 220e-6,
            flicker_noise_coeff: 0.31,
            leak_cubic_a_per_v3: 5e-9,
            supply_ripple_v: 0.0,
            supply_ripple_hz: 1e6,
            psrr_db: 60.0,
            conditions: OperatingConditions::nominal(),
        }
    }

    /// A representative configuration of the paper's sibling design —
    /// ref \[1\], the same group's "1.2V 220MS/s 10b Pipeline ADC in
    /// 0.13µm Digital CMOS" (ISSCC 2004): eight 1.5-bit stages + 2-bit
    /// flash, 1.2 V supply, smaller capacitors, the same SC bias concept
    /// at double the rate.
    ///
    /// This preset demonstrates the library generalises across the
    /// architecture family; it is *representative*, not a calibrated
    /// reproduction of that paper's measurements (its tables are not in
    /// scope here).
    pub fn sibling_220ms_10b() -> Self {
        let base = Self::nominal_110ms();
        Self {
            f_cr_hz: 220e6,
            v_ref_v: 0.6, // 1.2 Vp-p full scale at a 1.2 V supply
            stage_count: 8,
            c_sample_stage1: CapacitorSpec::new(1.6e-12, 0.15, 0.001),
            parasitic_load_f: 0.15e-12,
            logic_delay_s: 0.55e-9, // faster 0.13 µm logic
            dsb_switch_tau_s: 0.18e-9,
            opamp: OpAmpSpec {
                v_ov_v: 0.14,
                output_swing_v: 0.85,
                ..base.opamp
            },
            // Eq. 1 sized for the doubled rate in the finer process.
            bias_c_b: CapacitorSpec::digital_metal(0.55e-12),
            v_bias_v: 0.65,
            mirror_base_ratio: 34.0,
            aux_noise_rms_v: 160e-6,
            conditions: OperatingConditions {
                vdd_v: 1.2,
                ..OperatingConditions::nominal()
            },
            ..base
        }
    }

    /// A mathematically ideal pipeline at the given rate: no noise, no
    /// mismatch, no settling error. Must measure as a perfect 12-bit
    /// quantizer.
    pub fn ideal(f_cr_hz: f64) -> Self {
        Self {
            f_cr_hz,
            c_sample_stage1: CapacitorSpec::ideal(4e-12),
            parasitic_load_f: 0.0,
            beta_parasitic_fraction: 0.0,
            input_switch: SwitchTopology::Bootstrapped,
            front_end: FrontEndKind::ShaLess {
                adsc_aperture_skew_s: 0.0,
            },
            logic_delay_s: 0.0,
            dsb_switch_tau_s: 0.0,
            jitter: ApertureJitter::none(),
            opamp: OpAmpSpec::ideal(),
            comparator: ComparatorSpec::ideal(),
            bias_c_b: CapacitorSpec::ideal(1e-12),
            mirror_mismatch_sigma: 0.0,
            reference: ReferenceQuality::Ideal,
            thermal_noise: false,
            aux_noise_rms_v: 0.0,
            flicker_noise_coeff: 0.0,
            leak_cubic_a_per_v3: 0.0,
            ..Self::nominal_110ms()
        }
    }

    /// Checks the configuration for physical consistency, returning every
    /// problem found (empty = valid). [`crate::converter::PipelineAdc::build`]
    /// rejects the fatal subset; this lists the full diagnosis for tools.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.stage_count == 0 || self.stage_count > 14 {
            problems.push(format!(
                "stage_count {} outside the supported 1..=14",
                self.stage_count
            ));
        }
        if self.f_cr_hz.is_nan() || self.f_cr_hz <= 0.0 {
            problems.push(format!("conversion rate {} Hz not positive", self.f_cr_hz));
        }
        if self.v_ref_v.is_nan() || self.v_ref_v <= 0.0 {
            problems.push(format!("reference {} V not positive", self.v_ref_v));
        }
        if self.v_ref_v > self.conditions.vdd_v {
            problems.push(format!(
                "reference {} V exceeds the supply {} V",
                self.v_ref_v, self.conditions.vdd_v
            ));
        }
        if self.f_cr_hz > 0.0 {
            let budget =
                crate::clocking::TimingBudget::at(self.f_cr_hz, self.clocking, self.logic_delay_s);
            if budget.settle_time_s <= 0.0 {
                problems.push(format!(
                    "no settling time at {} MS/s with this clocking",
                    self.f_cr_hz / 1e6
                ));
            }
        }
        if self.opamp.output_swing_v < self.v_ref_v {
            problems.push(format!(
                "opamp swing {} V cannot carry full residues (±V_REF = {} V)",
                self.opamp.output_swing_v, self.v_ref_v
            ));
        }
        if self.comparator.offset_sigma_v * 4.0 > self.v_ref_v / 4.0 {
            problems.push(format!(
                "comparator offset sigma {} V risks exceeding the ±V_REF/4 redundancy budget",
                self.comparator.offset_sigma_v
            ));
        }
        problems
    }

    /// Total output code count (1.5-bit stages + 2-bit flash resolve to
    /// `stage_count + 2` bits).
    pub fn code_count(&self) -> u32 {
        1u32 << (self.stage_count as u32 + 2)
    }

    /// Nominal resolution in bits.
    pub fn resolution_bits(&self) -> u32 {
        self.stage_count as u32 + 2
    }

    /// One LSB at the converter input, volts (full scale = 2·V_REF).
    pub fn lsb_v(&self) -> f64 {
        2.0 * self.v_ref_v / self.code_count() as f64
    }
}

impl Default for AdcConfig {
    fn default() -> Self {
        Self::nominal_110ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaling_matches_section2() {
        let p = ScalingProfile::Paper;
        assert_eq!(p.factor(0), 1.0);
        assert!((p.factor(1) - 2.0 / 3.0).abs() < 1e-15);
        for i in 2..10 {
            assert!((p.factor(i) - 1.0 / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn uniform_scaling_is_flat() {
        assert!(ScalingProfile::Uniform
            .factors(10)
            .iter()
            .all(|&f| f == 1.0));
    }

    #[test]
    fn custom_scaling_is_respected() {
        let p = ScalingProfile::Custom(vec![1.0, 0.5, 0.25]);
        assert_eq!(p.factors(3), vec![1.0, 0.5, 0.25]);
    }

    #[test]
    fn nominal_is_a_12_bit_110ms_design() {
        let c = AdcConfig::nominal_110ms();
        assert_eq!(c.resolution_bits(), 12);
        assert_eq!(c.code_count(), 4096);
        assert_eq!(c.f_cr_hz, 110e6);
        assert_eq!(c.stage_count, 10);
        // 2 V_P-P full scale -> LSB = 2/4096 V.
        assert!((c.lsb_v() - 2.0 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn ideal_preset_strips_nonidealities() {
        let c = AdcConfig::ideal(110e6);
        assert_eq!(c.aux_noise_rms_v, 0.0);
        assert_eq!(c.jitter.sigma_s, 0.0);
        assert_eq!(c.comparator.offset_sigma_v, 0.0);
        assert_eq!(c.c_sample_stage1.matching_sigma_rel, 0.0);
        assert_eq!(c.reference, ReferenceQuality::Ideal);
    }

    #[test]
    fn sibling_preset_is_a_10_bit_220ms_design() {
        let c = AdcConfig::sibling_220ms_10b();
        assert_eq!(c.resolution_bits(), 10);
        assert_eq!(c.code_count(), 1024);
        assert_eq!(c.f_cr_hz, 220e6);
        assert_eq!(c.conditions.vdd_v, 1.2);
        assert!(c.validate().is_empty(), "{:?}", c.validate());
    }

    #[test]
    fn nominal_validates_clean() {
        assert!(AdcConfig::nominal_110ms().validate().is_empty());
        assert!(AdcConfig::ideal(110e6).validate().is_empty());
    }

    #[test]
    fn validate_reports_each_problem() {
        let mut c = AdcConfig::nominal_110ms();
        c.stage_count = 0;
        c.v_ref_v = 2.5; // above the 1.8 V supply, above the swing
        let problems = c.validate();
        assert!(problems.iter().any(|p| p.contains("stage_count")));
        assert!(problems.iter().any(|p| p.contains("exceeds the supply")));
        assert!(problems.iter().any(|p| p.contains("swing")));
    }

    #[test]
    fn validate_flags_excessive_rate() {
        let c = AdcConfig {
            f_cr_hz: 600e6,
            ..AdcConfig::nominal_110ms()
        };
        assert!(c.validate().iter().any(|p| p.contains("settling")));
    }

    #[test]
    fn config_is_serde_capable() {
        // Configs are data: they must implement Serialize/Deserialize
        // (C-SERDE). Compile-time check.
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<AdcConfig>();
        assert_serde::<ScalingProfile>();
        assert_serde::<BiasKind>();
    }
}
