//! One 1.5-bit pipeline stage: sampling, sub-conversion, residue
//! amplification.
//!
//! Mirrors the paper's Fig. 2: in φ1 the stage input is tracked onto
//! C1‖C2 (and simultaneously sampled by the ADSC); in φ2 the ADSC decision
//! selects the reference polarity through the DSB and the opamp settles
//! the residue toward `2·V_in − d·V_REF`, which the next stage samples at
//! the end of the phase.

use adc_analog::bandgap::ReferenceBuffer;
use adc_analog::capacitor::Capacitor;
use adc_analog::noise::NoiseSource;

use crate::mdac::Mdac;
use crate::subconverter::{Adsc, StageDecision};

/// A fabricated pipeline stage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineStage {
    /// Stage position, 0-based.
    pub index: usize,
    /// Total sampling capacitance (C1 + C2) as fabricated.
    pub c_sample: Capacitor,
    /// The stage's 1.5-bit sub-converter.
    pub adsc: Adsc,
    /// The residue amplifier.
    pub mdac: Mdac,
    /// Whether this stage adds its own kT/C sampling noise in
    /// [`PipelineStage::process`]. Stage 1's sampling noise is produced by
    /// the front-end [`adc_analog::switch::SamplingNetwork`] instead, so
    /// it sets this to `false` to avoid double counting.
    pub samples_own_input: bool,
    /// Cubic hold-phase leakage coefficient, A/V³ (distortion that grows
    /// with hold time, i.e. at low conversion rates).
    pub leak_cubic_a_per_v3: f64,
}

impl PipelineStage {
    /// Processes one held input sample through the stage.
    ///
    /// * `v_in` — the stage input as delivered by the previous stage (or
    ///   the front-end sampling network for stage 1);
    /// * `reference` — the buffered reference distribution;
    /// * `settle_time_s` — MDAC settling time from the timing budget;
    /// * `hold_time_s` — how long the sample sat on the capacitors
    ///   (leakage droop);
    /// * `noise` — runtime noise source.
    ///
    /// Returns the ADSC decision and the residue for the next stage.
    pub fn process(
        &mut self,
        v_in: f64,
        reference: &ReferenceBuffer,
        settle_time_s: f64,
        hold_time_s: f64,
        noise: &mut NoiseSource,
    ) -> (StageDecision, f64) {
        self.process_with_adsc_error(v_in, 0.0, reference, settle_time_s, hold_time_s, noise)
    }

    /// Like [`PipelineStage::process`], with an explicit error on the
    /// ADSC's sampled copy of the input — the SHA-less front end's
    /// aperture-skew term (`skew·dV/dt`) for stage 1. The redundancy
    /// absorbs it as long as it stays below ±V_REF/4.
    pub fn process_with_adsc_error(
        &mut self,
        v_in: f64,
        adsc_error_v: f64,
        reference: &ReferenceBuffer,
        settle_time_s: f64,
        hold_time_s: f64,
        noise: &mut NoiseSource,
    ) -> (StageDecision, f64) {
        // Sampling noise for the stage's own track phase.
        let mut v = v_in;
        if self.samples_own_input {
            v += self.c_sample.sample_ktc_noise(noise);
        }
        // Hold-phase leakage droop (cubic => distortion at low rates).
        let droop = self.leak_cubic_a_per_v3 * v * v * v * hold_time_s / self.c_sample.value_f;
        v -= droop;

        // The ADSC samples the input through its own (noisy, possibly
        // skewed) path.
        let decision = self.adsc.decide(v + adsc_error_v, noise);
        // The DSB selects the reference; droop depends on the DAC level.
        let v_ref_eff = reference.effective_v(decision.dac_level, noise);
        let residue = self
            .mdac
            .amplify(v, decision.dac_level, v_ref_eff, settle_time_s, noise);
        (decision, residue)
    }

    /// Clears inter-sample state (settling memory).
    pub fn reset(&mut self) {
        self.mdac.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_analog::opamp::{OpAmp, OpAmpSpec};

    fn ideal_stage() -> PipelineStage {
        let amp = OpAmp::new(OpAmpSpec::ideal(), 1e-3, 1e-12);
        PipelineStage {
            index: 0,
            c_sample: Capacitor::ideal(4e-12),
            adsc: Adsc::ideal(1.0),
            mdac: Mdac::new(2e-12, 2e-12, 0.5, amp),
            samples_own_input: false,
            leak_cubic_a_per_v3: 0.0,
        }
    }

    fn quiet() -> NoiseSource {
        NoiseSource::from_seed(0)
    }

    #[test]
    fn ideal_stage_implements_the_textbook_transfer() {
        let mut s = ideal_stage();
        let r = ReferenceBuffer::ideal(1.0);
        let mut n = quiet();
        // Below -Vref/4: d = -1, residue = 2v + Vref.
        let (d, res) = s.process(-0.5, &r, 1e-6, 1e-8, &mut n);
        assert_eq!(d.dac_level, -1);
        assert!((res - 0.0).abs() < 1e-12);
        // Mid-range: d = 0, residue = 2v.
        let (d, res) = s.process(0.1, &r, 1e-6, 1e-8, &mut n);
        assert_eq!(d.dac_level, 0);
        assert!((res - 0.2).abs() < 1e-12);
        // Above +Vref/4: d = +1, residue = 2v − Vref.
        let (d, res) = s.process(0.6, &r, 1e-6, 1e-8, &mut n);
        assert_eq!(d.dac_level, 1);
        assert!((res - 0.2).abs() < 1e-12);
    }

    #[test]
    fn residue_stays_within_half_range_for_in_range_input() {
        // The redundancy property: for |v| ≤ Vref, the ideal residue stays
        // within ±Vref, so the next stage cannot be driven out of range.
        let mut s = ideal_stage();
        let r = ReferenceBuffer::ideal(1.0);
        let mut n = quiet();
        for i in -100..=100 {
            let v = i as f64 / 100.0;
            let (_, res) = s.process(v, &r, 1e-6, 1e-8, &mut n);
            assert!(
                res.abs() <= 1.0 + 1e-9,
                "residue {res} out of range for input {v}"
            );
        }
    }

    #[test]
    fn own_sampling_noise_has_ktc_magnitude() {
        let mut s = PipelineStage {
            samples_own_input: true,
            ..ideal_stage()
        };
        let r = ReferenceBuffer::ideal(1.0);
        let mut n = NoiseSource::from_seed(5);
        let count = 20_000;
        let mut sum2 = 0.0;
        for _ in 0..count {
            s.reset();
            let (_, res) = s.process(0.0, &r, 1e-6, 1e-8, &mut n);
            // residue = 2·(v + noise) => input-referred noise = res/2.
            sum2 += (res / 2.0) * (res / 2.0);
        }
        let sigma = (sum2 / count as f64).sqrt();
        let expected = s.c_sample.ktc_rms_v();
        assert!(
            (sigma - expected).abs() / expected < 0.05,
            "sigma {sigma} vs {expected}"
        );
    }

    #[test]
    fn cubic_leakage_droops_large_signals_more() {
        let mut s = PipelineStage {
            leak_cubic_a_per_v3: 1e-6,
            ..ideal_stage()
        };
        let r = ReferenceBuffer::ideal(1.0);
        let mut n = quiet();
        let hold = 100e-9; // long hold (low rate)
        let (_, res_small) = s.process(0.1, &r, 1e-6, hold, &mut n);
        s.reset();
        let (_, res_big) = s.process(0.2, &r, 1e-6, hold, &mut n);
        // droop = k·v³·t/C: relative droop at 0.2 is 4× that at 0.1.
        let droop_small = 0.2 - res_small;
        let droop_big = 0.4 - res_big - 0.0;
        assert!(
            droop_big > 3.9 * droop_small,
            "{droop_big} vs {droop_small}"
        );
    }

    #[test]
    fn comparator_offset_within_quarter_ref_is_harmless_after_correction() {
        // The redundancy argument, checked at stage level: an offset
        // shifts which decision fires, but the residue still lands inside
        // the next stage's correctable range.
        let mut s = ideal_stage();
        s.adsc.set_high_offset_v(0.2); // large but < Vref/4
        let r = ReferenceBuffer::ideal(1.0);
        let mut n = quiet();
        for i in -100..=100 {
            let v = i as f64 / 100.0;
            s.reset();
            let (_, res) = s.process(v, &r, 1e-6, 1e-8, &mut n);
            assert!(res.abs() <= 1.0 + 1e-9, "residue {res} for input {v}");
        }
    }
}
