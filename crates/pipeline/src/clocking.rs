//! Clocking schemes and the per-stage timing budget.
//!
//! A conventional pipeline uses two-phase *non-overlapping* clocks so S2
//! can never close before S1 opens; the non-overlap margin is dead time
//! stolen from settling. The paper removes it: "the non-overlap clocking
//! is removed and the sequential operation of the switches is ensured by
//! generating these clocks locally in each stage" (§3, Fig. 3 context).
//! Longer settling time ⇒ the opamp gain-bandwidth (and therefore bias
//! current and power) can be reduced at the same accuracy — one of the
//! paper's power levers, and ablation B in `DESIGN.md`.

/// How the two-phase stage clocks are produced.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum ClockScheme {
    /// The paper's scheme: clocks generated locally in each stage; switch
    /// sequencing is by construction, no dead time.
    #[default]
    LocalGenerated,
    /// Conventional global non-overlapping clocks with the given margin
    /// (dead time per phase), seconds.
    NonOverlap {
        /// Non-overlap (dead-time) margin per phase, seconds.
        margin_s: f64,
    },
}

impl ClockScheme {
    /// A typical conventional margin for a ~100 MS/s design: 500 ps.
    pub fn conventional() -> Self {
        ClockScheme::NonOverlap { margin_s: 500e-12 }
    }

    /// Dead time this scheme spends per phase, seconds.
    pub fn dead_time_s(&self) -> f64 {
        match self {
            ClockScheme::LocalGenerated => 0.0,
            ClockScheme::NonOverlap { margin_s } => *margin_s,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ClockScheme::LocalGenerated => "local clocks (no non-overlap)",
            ClockScheme::NonOverlap { .. } => "global non-overlap clocks",
        }
    }
}

/// The per-phase timing budget at a conversion rate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingBudget {
    /// Clock period, seconds.
    pub period_s: f64,
    /// Time available for MDAC settling after clocking overheads and the
    /// ADSC + decoder (DSB) decision delay, seconds. May be ≤ 0 at
    /// excessive rates — the converter refuses to build then.
    pub settle_time_s: f64,
    /// Time available for input tracking, seconds.
    pub track_time_s: f64,
}

impl TimingBudget {
    /// Computes the budget.
    ///
    /// * `f_cr_hz` — conversion rate;
    /// * `scheme` — clocking scheme;
    /// * `logic_delay_s` — fixed ADSC comparator + DSB decode delay that
    ///   must elapse before the references are applied and true settling
    ///   starts. This *fixed* term is what eventually breaks the paper's
    ///   rate-independence above ≈140 MS/s.
    ///
    /// # Panics
    ///
    /// Panics if `f_cr_hz` is not positive.
    pub fn at(f_cr_hz: f64, scheme: ClockScheme, logic_delay_s: f64) -> Self {
        assert!(f_cr_hz > 0.0, "conversion rate must be positive");
        let period_s = 1.0 / f_cr_hz;
        let half = period_s / 2.0;
        let dead = scheme.dead_time_s();
        TimingBudget {
            period_s,
            settle_time_s: half - dead - logic_delay_s,
            track_time_s: half - dead,
        }
    }

    /// Fraction of the period spent tracking (for the sampling network).
    pub fn track_fraction(&self) -> f64 {
        (self.track_time_s / self.period_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_clocks_have_no_dead_time() {
        assert_eq!(ClockScheme::LocalGenerated.dead_time_s(), 0.0);
        assert_eq!(ClockScheme::conventional().dead_time_s(), 500e-12);
    }

    #[test]
    fn budget_at_110ms() {
        let b = TimingBudget::at(110e6, ClockScheme::LocalGenerated, 1e-9);
        assert!((b.period_s - 9.0909e-9).abs() < 1e-13);
        // half period 4.545 ns − 1 ns logic = 3.545 ns
        assert!((b.settle_time_s - 3.5454e-9).abs() < 1e-12);
        assert!((b.track_time_s - 4.5454e-9).abs() < 1e-12);
    }

    #[test]
    fn non_overlap_steals_settling_time() {
        let local = TimingBudget::at(110e6, ClockScheme::LocalGenerated, 1e-9);
        let conv = TimingBudget::at(110e6, ClockScheme::conventional(), 1e-9);
        assert!((local.settle_time_s - conv.settle_time_s - 500e-12).abs() < 1e-15);
        assert!(local.track_time_s > conv.track_time_s);
    }

    #[test]
    fn budget_goes_negative_at_excessive_rate() {
        // Half period at 600 MS/s is 0.83 ns < 1 ns logic delay.
        let b = TimingBudget::at(600e6, ClockScheme::LocalGenerated, 1e-9);
        assert!(b.settle_time_s < 0.0);
    }

    #[test]
    fn track_fraction_is_half_for_local_clocks() {
        let b = TimingBudget::at(50e6, ClockScheme::LocalGenerated, 1e-9);
        assert!((b.track_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels_differ() {
        assert_ne!(
            ClockScheme::LocalGenerated.label(),
            ClockScheme::conventional().label()
        );
    }
}
