//! Converter introspection: per-stage operating points and the
//! input-referred noise budget.
//!
//! `Diagnostics` answers the two questions a designer asks a behavioral
//! model first: *where is my noise coming from?* and *how hard is each
//! stage working?* The noise budget is also a powerful consistency check:
//! its predicted SNR must match what the FFT measures on the same die —
//! the test suite holds the model to that.

use std::fmt;

use adc_analog::units::KT_NOMINAL;

use crate::converter::PipelineAdc;

/// One stage's derived operating point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageOperatingPoint {
    /// Stage index, 0-based.
    pub index: usize,
    /// Total sampling capacitance, farads.
    pub c_sample_f: f64,
    /// Bias current, amperes.
    pub bias_current_a: f64,
    /// Opamp transconductance, siemens.
    pub gm_s: f64,
    /// Unity-gain bandwidth, hertz.
    pub gbw_hz: f64,
    /// Slew rate, volts/second.
    pub slew_v_per_s: f64,
    /// Feedback factor.
    pub beta: f64,
    /// Settling time constants available in the settle window.
    pub settle_taus: f64,
}

/// The converter's input-referred noise budget, volts RMS per term.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseBreakdown {
    /// Quantization, volts RMS.
    pub quantization_v: f64,
    /// Front-end kT/C, volts RMS.
    pub front_end_ktc_v: f64,
    /// Later stages' kT/C, input-referred, volts RMS.
    pub stage_ktc_v: f64,
    /// All opamps' sampled noise, input-referred, volts RMS.
    pub opamp_v: f64,
    /// Auxiliary (reference/clock/flicker/SHA) noise, volts RMS.
    pub aux_v: f64,
}

impl NoiseBreakdown {
    /// Total input-referred noise, volts RMS.
    pub fn total_v(&self) -> f64 {
        (self.quantization_v.powi(2)
            + self.front_end_ktc_v.powi(2)
            + self.stage_ktc_v.powi(2)
            + self.opamp_v.powi(2)
            + self.aux_v.powi(2))
        .sqrt()
    }

    /// The SNR this budget predicts for a sine of peak `amplitude_v`, dB.
    pub fn predicted_snr_db(&self, amplitude_v: f64) -> f64 {
        let signal = amplitude_v * amplitude_v / 2.0;
        let noise = self.total_v().powi(2);
        10.0 * (signal / noise).log10()
    }
}

/// Full diagnostics of a fabricated die.
///
/// ```
/// use adc_pipeline::diagnostics::Diagnostics;
/// use adc_pipeline::{AdcConfig, PipelineAdc};
/// # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
/// let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7)?;
/// let d = Diagnostics::of(&adc);
/// // The analytic budget predicts the Table I SNR.
/// assert!((d.noise.predicted_snr_db(0.995) - 67.1).abs() < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Diagnostics {
    /// Per-stage operating points.
    pub stages: Vec<StageOperatingPoint>,
    /// The noise budget.
    pub noise: NoiseBreakdown,
    /// Total power, watts.
    pub power_w: f64,
    /// Conversion rate, hertz.
    pub f_cr_hz: f64,
}

impl Diagnostics {
    /// Extracts diagnostics from a die.
    pub fn of(adc: &PipelineAdc) -> Self {
        let cfg = adc.config();
        let timing = adc.timing();
        let mut stages = Vec::with_capacity(cfg.stage_count);
        let mut stage_ktc_pow = 0.0;
        let mut opamp_pow = 0.0;
        let mut cumulative_gain = 1.0;
        for (i, s) in adc.stages().iter().enumerate() {
            let amp = &s.mdac.opamp;
            stages.push(StageOperatingPoint {
                index: i,
                c_sample_f: s.c_sample.value_f,
                bias_current_a: amp.bias_current_a,
                gm_s: amp.gm_s(),
                gbw_hz: amp.gbw_hz(),
                slew_v_per_s: amp.slew_rate_v_per_s(),
                beta: s.mdac.beta,
                settle_taus: timing.settle_time_s / amp.tau_s(s.mdac.beta),
            });
            // Noise referred to the converter input: divide by the gain
            // ahead of the contribution point.
            if i > 0 && cfg.thermal_noise {
                let ktc = KT_NOMINAL / s.c_sample.value_f;
                stage_ktc_pow += ktc / (cumulative_gain * cumulative_gain);
            }
            // Opamp noise appears at the stage output: refer through the
            // gain up to *and including* this stage.
            let out_gain = cumulative_gain * s.mdac.gain();
            let op = amp.sampled_noise_rms_v(s.mdac.beta);
            opamp_pow += (op * op) / (out_gain * out_gain);
            cumulative_gain = out_gain;
        }
        let front_end_ktc_v = if cfg.thermal_noise {
            (KT_NOMINAL / adc.stages()[0].c_sample.value_f).sqrt()
        } else {
            0.0
        };
        let lsb = cfg.lsb_v();
        let noise = NoiseBreakdown {
            quantization_v: lsb / 12f64.sqrt(),
            front_end_ktc_v,
            stage_ktc_v: stage_ktc_pow.sqrt(),
            opamp_v: opamp_pow.sqrt(),
            aux_v: adc.aux_noise_rms_v(),
        };
        Self {
            stages,
            noise,
            power_w: adc.power_w(),
            f_cr_hz: cfg.f_cr_hz,
        }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stage   C(pF)   Ibias(mA)   gm(mS)   GBW(MHz)   SR(V/us)   beta   settle(tau)"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:2}   {:5.2}   {:9.3}   {:6.1}   {:8.0}   {:8.0}   {:4.2}   {:11.1}",
                s.index + 1,
                s.c_sample_f * 1e12,
                s.bias_current_a * 1e3,
                s.gm_s * 1e3,
                s.gbw_hz / 1e6,
                s.slew_v_per_s / 1e6,
                s.beta,
                s.settle_taus,
            )?;
        }
        writeln!(f, "noise budget (input-referred, uV rms):")?;
        writeln!(f, "  quantization  {:6.1}", self.noise.quantization_v * 1e6)?;
        writeln!(
            f,
            "  front-end kT/C{:6.1}",
            self.noise.front_end_ktc_v * 1e6
        )?;
        writeln!(f, "  stage kT/C    {:6.1}", self.noise.stage_ktc_v * 1e6)?;
        writeln!(f, "  opamps        {:6.1}", self.noise.opamp_v * 1e6)?;
        writeln!(f, "  auxiliary     {:6.1}", self.noise.aux_v * 1e6)?;
        writeln!(f, "  TOTAL         {:6.1}", self.noise.total_v() * 1e6)?;
        write!(
            f,
            "power {:.1} mW at {:.0} MS/s",
            self.power_w * 1e3,
            self.f_cr_hz / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdcConfig;

    #[test]
    fn stage_scaling_is_visible_in_operating_points() {
        let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let d = Diagnostics::of(&adc);
        assert_eq!(d.stages.len(), 10);
        // Caps and currents follow the 1, 2/3, 1/3 profile.
        let s = &d.stages;
        assert!(s[0].c_sample_f > s[1].c_sample_f);
        assert!(s[1].c_sample_f > s[2].c_sample_f);
        assert!((s[2].c_sample_f - s[9].c_sample_f).abs() < 0.1e-12);
        assert!(s[0].bias_current_a > s[1].bias_current_a);
    }

    #[test]
    fn every_stage_has_adequate_settling() {
        let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let d = Diagnostics::of(&adc);
        for s in &d.stages {
            assert!(
                s.settle_taus > 9.0,
                "stage {} only {} taus",
                s.index,
                s.settle_taus
            );
        }
    }

    #[test]
    fn budget_predicts_the_measured_snr() {
        // The headline consistency check: the analytically composed noise
        // budget must predict the FFT-measured SNR within 1 dB.
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        use adc_spectral::window::coherent_frequency;
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let d = Diagnostics::of(&adc);
        let predicted = d.noise.predicted_snr_db(0.999);
        let n = 8192;
        let (f_in, _) = coherent_frequency(110e6, n, 10e6);
        let tone = move |t: f64| 0.999 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let codes = adc.convert_waveform(&tone, n);
        let rec: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
        let measured = analyze_tone(&rec, &ToneAnalysisConfig::coherent())
            .unwrap()
            .snr_db;
        assert!(
            (predicted - measured).abs() < 1.0,
            "predicted {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn ideal_converter_budget_is_quantization_only() {
        let adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let d = Diagnostics::of(&adc);
        assert_eq!(d.noise.front_end_ktc_v, 0.0);
        assert_eq!(d.noise.aux_v, 0.0);
        assert!(d.noise.opamp_v < 1e-12);
        // Predicted SNR = the ideal 12-bit ~74 dB.
        assert!((d.noise.predicted_snr_db(1.0) - 74.0).abs() < 0.3);
    }

    #[test]
    fn display_renders_all_sections() {
        let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let text = Diagnostics::of(&adc).to_string();
        for needle in ["stage", "GBW", "noise budget", "TOTAL", "power"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
