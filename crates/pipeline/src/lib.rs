//! # adc-pipeline
//!
//! Behavioral model of the DATE 2004 "97 mW 110 MS/s 12b Pipeline ADC in
//! 0.18 µm Digital CMOS" — the core crate of this reproduction.
//!
//! The converter is the paper's Fig. 1 chain: ten 1.5-bit stages (each a
//! sampling network, a two-comparator ADSC, and a ×2 MDAC around a
//! two-stage Miller opamp) followed by a 2-bit flash, with delay-aligned
//! digital error correction. The stage operating points are derived from
//! the switched-capacitor bias network of `adc-bias`, which is what gives
//! the design its signature properties: power that scales linearly with
//! conversion rate and full performance from 20 to 140 MS/s.
//!
//! * [`config`] — the design-parameter tree with the calibrated
//!   [`config::AdcConfig::nominal_110ms`] preset and the stripped
//!   [`config::AdcConfig::ideal`] preset;
//! * [`converter`] — [`converter::PipelineAdc`]: fabrication from a seed,
//!   waveform conversion, power introspection;
//! * [`stage`], [`mdac`], [`subconverter`] — the per-stage blocks;
//! * [`correction`] — redundancy-exploiting digital error correction;
//! * [`clocking`] — local vs non-overlap clock timing budgets;
//! * [`electrical`] — operating-point derivation helpers;
//! * [`error`] — build-time error type.
//!
//! ```
//! use adc_pipeline::config::AdcConfig;
//! use adc_pipeline::converter::PipelineAdc;
//!
//! # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
//! // Fabricate the paper's nominal die and convert a 10 MHz sine.
//! let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 42)?;
//! let tone = |t: f64| 0.999 * (2.0 * std::f64::consts::PI * 10.07e6 * t).sin();
//! let codes = adc.convert_waveform(&tone, 512);
//! assert_eq!(codes.len(), 512);
//! // 97 mW at 110 MS/s, as published.
//! assert!((adc.power_w() - 97e-3).abs() < 10e-3);
//! # Ok(())
//! # }
//! ```

pub mod calibration;
pub mod clocking;
pub mod config;
pub mod converter;
pub mod correction;
pub mod design;
pub mod diagnostics;
pub mod electrical;
pub mod error;
pub mod interleave;
pub mod lanes;
pub mod mdac;
pub mod stage;
pub mod subconverter;

pub use calibration::{calibrate_foreground, CalibrateError, CalibrationWeights};
pub use clocking::{ClockScheme, TimingBudget};
pub use config::{AdcConfig, BiasKind, FrontEndKind, ReferenceQuality, ScalingProfile};
pub use converter::{PipelineAdc, RawConversion, Waveform};
pub use correction::{assemble_code, latency_samples, CorrectionPipeline};
pub use diagnostics::Diagnostics;
pub use error::BuildAdcError;
pub use interleave::{InterleaveMismatch, InterleavedAdc};
pub use lanes::{LaneBatch, LaneError};
pub use mdac::Mdac;
pub use stage::PipelineStage;
pub use subconverter::{Adsc, FlashBackend, StageDecision};
