//! The complete pipeline ADC: fabrication, conversion, and introspection.
//!
//! [`PipelineAdc::build`] "fabricates" one die from an [`AdcConfig`] and a
//! seed: it draws every Monte-Carlo quantity (capacitor spread and
//! mismatch, comparator offsets, mirror errors, reference errors), derives
//! each stage's electrical operating point from the bias network — the
//! paper's SC generator makes those operating points track conversion rate
//! and capacitor corner — and assembles the 10-stage + 2-bit-flash chain
//! of the paper's Fig. 1.
//!
//! Conversion is sample-accurate: the input waveform is evaluated at
//! jittered sampling instants, tracked through the nonlinear input switch,
//! resolved stage by stage with settling memory, and aligned/corrected
//! into 12-bit codes.

use adc_analog::bandgap::{Bandgap, ReferenceBuffer};
use adc_analog::capacitor::{Capacitor, CapacitorSpec};
use adc_analog::noise::NoiseSource;
use adc_analog::opamp::{OpAmp, OpAmpSpec};
use adc_analog::stripe::SampleNoise;
use adc_analog::switch::{SamplingNetwork, SwitchModel};
use adc_bias::generator::{BiasScheme, FixedBiasGenerator, ScBiasGenerator};
use adc_bias::mirror::{BiasNetwork, MirrorBankSpec};
use adc_bias::power::{PowerModel, PowerReading};

use crate::clocking::TimingBudget;
use crate::config::{AdcConfig, BiasKind, FrontEndKind, ReferenceQuality};
use crate::correction::{self, CorrectionPipeline};
use crate::electrical;
use crate::error::BuildAdcError;
use crate::mdac::Mdac;
use crate::stage::PipelineStage;
use crate::subconverter::{Adsc, FlashBackend, StageDecision};

/// Input capacitance presented by the flash backend to the last stage.
const FLASH_INPUT_CAP_F: f64 = 0.2e-12;

/// Conversions run before a record starts, so settling and tracking
/// memory reach steady state.
pub(crate) const WARMUP_SAMPLES: usize = 16;

/// Every `TRACE_EVERY`-th conversion records per-stage spans when
/// tracing is enabled. Deterministic subsampling (by the conversion
/// counter, not by time) keeps trace volume sane — a 16k-sample record
/// would otherwise emit ~450k stage events — while still profiling the
/// MDAC/flash split at statistically meaningful coverage.
const TRACE_EVERY: u64 = 512;

/// Static span names for the per-stage MDAC spans (`stage_count <= 14`
/// is enforced by [`PipelineAdc::build`]).
const STAGE_SPAN_NAMES: [&str; 14] = [
    "mdac-stage1",
    "mdac-stage2",
    "mdac-stage3",
    "mdac-stage4",
    "mdac-stage5",
    "mdac-stage6",
    "mdac-stage7",
    "mdac-stage8",
    "mdac-stage9",
    "mdac-stage10",
    "mdac-stage11",
    "mdac-stage12",
    "mdac-stage13",
    "mdac-stage14",
];

/// A continuous-time input signal the converter can sample.
///
/// Implemented by the source models in `adc-testbench`; any `Fn(f64) ->
/// f64` closure also works:
///
/// ```
/// use adc_pipeline::converter::Waveform;
/// let ramp = |t: f64| 1e6 * t;
/// assert_eq!(ramp.value(2e-6), 2.0);
/// assert!((Waveform::slope(&ramp, 0.0) - 1e6).abs() / 1e6 < 1e-3);
/// ```
pub trait Waveform {
    /// Signal value at absolute time `t_s` (seconds), volts.
    fn value(&self, t_s: f64) -> f64;

    /// Signal slope at `t_s`, volts/second. The default is a central
    /// difference; implementers with analytic derivatives should override.
    fn slope(&self, t_s: f64) -> f64 {
        let dt = 1e-12;
        (self.value(t_s + dt) - self.value(t_s - dt)) / (2.0 * dt)
    }

    /// Value and slope at one instant. Sources whose value and slope
    /// share work (e.g. a sine's phase argument) should override this to
    /// compute it once; the results must be bit-identical to separate
    /// [`Waveform::value`]/[`Waveform::slope`] calls.
    fn sample_at(&self, t_s: f64) -> (f64, f64) {
        (self.value(t_s), self.slope(t_s))
    }

    /// Evaluates the waveform on the uniform grid `t = t0_s + k·dt_s`,
    /// writing `values[k]` and `slopes[k]` for `k < values.len()`.
    /// Batch-friendly sources (e.g. a pure sine via a phase recurrence)
    /// may override with a faster scheme; deviations from
    /// [`Waveform::sample_at`] at the same instants must stay negligible
    /// against the simulation's noise floors (≲1e-12 relative). Sources
    /// relied on for bit-exact replay should not override.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `slopes` differ in length.
    fn fill_with_slope(&self, t0_s: f64, dt_s: f64, values: &mut [f64], slopes: &mut [f64]) {
        assert_eq!(values.len(), slopes.len());
        for (k, (v, s)) in values.iter_mut().zip(slopes.iter_mut()).enumerate() {
            let t = t0_s + k as f64 * dt_s;
            let (value, slope) = self.sample_at(t);
            *v = value;
            *s = slope;
        }
    }
}

impl<F: Fn(f64) -> f64> Waveform for F {
    fn value(&self, t_s: f64) -> f64 {
        self(t_s)
    }
}

/// Per-stage constants hoisted out of the conversion inner loop.
///
/// Everything here is a pure function of the fabricated stage, the
/// timing budget, and the reference buffer — none of it changes between
/// samples, so [`PipelineAdc::convert_one`] reads it instead of
/// re-deriving settling exponentials and noise sigmas 110 M times a
/// second. Rebuilt lazily whenever [`PipelineAdc::stage_mut`] hands out
/// mutable stage access (fault injection may change any constant).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StagePlan {
    /// Hold-phase droop factor: `leak_cubic · t_hold / C_sample`, so the
    /// droop is `droop_k · v³`.
    pub(crate) droop_k: f64,
    /// Effective reference when the DAC level is 0 (no droop, the
    /// reference noise cannot reach the output).
    pub(crate) vref_d0: f64,
    /// Effective reference when |DAC level| is 1 (code-dependent droop).
    pub(crate) vref_d1: f64,
    /// The MDAC's own per-sample constants.
    pub(crate) mdac: crate::mdac::MdacPlan,
    /// Merged output-referred noise sigma when the DAC level is 0:
    /// opamp sampled noise ⊕ next stage's kT/C.
    pub(crate) sigma_d0: f64,
    /// Merged output-referred noise sigma when |DAC level| is 1: the
    /// `d0` terms ⊕ the reference noise scaled by the DAC gain.
    pub(crate) sigma_d1: f64,
}

/// One fabricated, operating pipeline ADC.
#[derive(Debug, Clone)]
pub struct PipelineAdc {
    pub(crate) config: AdcConfig,
    pub(crate) timing: TimingBudget,
    pub(crate) front_end: SamplingNetwork,
    pub(crate) stages: Vec<PipelineStage>,
    pub(crate) flash: FlashBackend,
    reference: ReferenceBuffer,
    power: PowerModel,
    correction: CorrectionPipeline,
    pub(crate) noise: NoiseSource,
    /// The hot-path noise stream: jitter, front-end, and merged
    /// per-stage draws during conversion (see [`adc_analog::stripe`]).
    /// Marginal-comparator draws stay on `noise`.
    pub(crate) sample_noise: SampleNoise,
    /// Combined auxiliary + flicker input-referred noise at this rate
    /// (includes a dedicated SHA's noise when configured).
    aux_noise_rms_v: f64,
    /// ADSC-path aperture skew of the SHA-less front end, seconds.
    pub(crate) adsc_skew_s: f64,
    /// Input-referred supply-ripple amplitude (ripple/PSRR), volts.
    pub(crate) ripple_referred_v: f64,
    /// Conversion counter (phases the supply ripple).
    pub(crate) sample_count: u64,
    scratch_decisions: Vec<StageDecision>,
    pub(crate) last_flash_code: u8,
    /// Hoisted per-stage conversion constants (see [`StagePlan`]).
    pub(crate) plans: Vec<StagePlan>,
    /// Merged front-end noise sigma: front kT/C ⊕ auxiliary/flicker.
    pub(crate) front_noise_rms_v: f64,
    /// Set when [`PipelineAdc::stage_mut`] may have invalidated `plans`.
    plans_dirty: bool,
    /// Reusable waveform-evaluation buffers for the batched grid path.
    scratch_values: Vec<f64>,
    scratch_slopes: Vec<f64>,
}

/// The raw digital output of one conversion, before error correction —
/// what an on-chip calibration engine observes.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RawConversion {
    /// Per-stage DAC levels d ∈ {−1, 0, +1}, stage 1 first.
    pub dac_levels: Vec<i8>,
    /// The 2-bit flash code.
    pub flash_code: u8,
    /// The error-corrected output code (for comparison).
    pub code: u16,
}

impl PipelineAdc {
    /// Fabricates one die.
    ///
    /// The same `(config, seed)` pair always produces the same die and the
    /// same conversion results.
    ///
    /// # Errors
    ///
    /// Returns [`BuildAdcError`] when the configuration is unbuildable:
    /// no stages, non-positive rate or reference, or a clocking scheme
    /// that leaves no settling time at the requested rate.
    pub fn build(config: AdcConfig, seed: u64) -> Result<Self, BuildAdcError> {
        if config.stage_count == 0 || config.stage_count > 14 {
            return Err(BuildAdcError::NoStages);
        }
        if config.f_cr_hz.is_nan() || config.f_cr_hz <= 0.0 {
            return Err(BuildAdcError::InvalidRate(config.f_cr_hz));
        }
        if config.v_ref_v.is_nan() || config.v_ref_v <= 0.0 {
            return Err(BuildAdcError::InvalidReference(config.v_ref_v));
        }
        let timing = TimingBudget::at(config.f_cr_hz, config.clocking, config.logic_delay_s);
        if timing.settle_time_s <= 0.0 {
            return Err(BuildAdcError::NoSettlingTime {
                f_cr_hz: config.f_cr_hz,
                settle_time_s: timing.settle_time_s,
            });
        }

        let mut root = NoiseSource::from_seed(seed);
        let mut fab = root.fork();
        let runtime = root.fork();
        // The per-sample hot-path stream; derived *after* the fab and
        // runtime forks so existing dies fabricate bit-identically.
        let sample_noise = SampleNoise::from_seed(root.fork_seed());
        // Opamp offsets draw from their own derived stream so extending
        // the model does not re-roll every other Monte-Carlo quantity of
        // an existing die.
        let mut offset_fab =
            NoiseSource::from_seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11));
        let corner = config.conditions.corner;

        // One die-wide absolute capacitance factor, shared by the stage
        // capacitors *and* the bias capacitor C_B — this shared fate is
        // what the SC bias generator exploits.
        let die_cap_factor = config.c_sample_stage1.draw_die_factor(&mut fab) * corner.cap_factor();

        // Fabricate per-stage sampling capacitors (C1, C2 halves).
        let factors = config.scaling.factors(config.stage_count);
        let mut halves = Vec::with_capacity(config.stage_count);
        for &factor in &factors {
            let half_spec = CapacitorSpec::new(
                config.c_sample_stage1.nominal_f * factor / 2.0,
                0.0, // absolute spread applied via die_cap_factor
                config.c_sample_stage1.matching_sigma_rel,
            );
            let c1 = half_spec.fabricate(die_cap_factor, &mut fab);
            let c2 = half_spec.fabricate(die_cap_factor, &mut fab);
            halves.push((c1, c2));
        }

        // Band-gap and bias network.
        let bandgap = match config.reference {
            ReferenceQuality::Ideal => Bandgap::ideal(config.v_bias_v),
            ReferenceQuality::Decoupled => Bandgap::fabricate(config.v_bias_v, &mut fab),
        };
        let v_bias_actual = bandgap.output_v(config.conditions.temp_c, config.conditions.vdd_v);
        let c_b = config.bias_c_b.fabricate(die_cap_factor, &mut fab);
        let scheme = match config.bias_kind {
            BiasKind::Switched => {
                let gen = ScBiasGenerator::new(c_b, v_bias_actual);
                let gen = match config.reference {
                    ReferenceQuality::Ideal => gen,
                    ReferenceQuality::Decoupled => gen.with_realistic_loop(&mut fab),
                };
                BiasScheme::Switched(gen)
            }
            BiasKind::Fixed {
                design_rate_hz,
                margin,
            } => BiasScheme::Fixed(FixedBiasGenerator::sized_for(
                config.bias_c_b.nominal_f,
                config.v_bias_v,
                design_rate_hz,
                margin,
            )),
        };
        let mirror_spec = MirrorBankSpec::new(
            factors
                .iter()
                .map(|&f| config.mirror_base_ratio * f)
                .collect(),
            config.mirror_mismatch_sigma,
        );
        let bias = BiasNetwork::new(scheme, mirror_spec.fabricate(&mut fab));
        let stage_currents = bias.stage_currents_a(config.f_cr_hz);

        // Per-stage electrical operating points and sub-blocks. Corner
        // and temperature shift gm at fixed current (mobility ∝ T^-1.5);
        // both fold into an effective V_ov.
        let t_kelvin = config.conditions.temp_c + 273.15;
        let mobility_factor = (300.15 / t_kelvin).powf(1.5);
        let opamp_spec = OpAmpSpec {
            v_ov_v: config.opamp.v_ov_v / (corner.gm_factor() * mobility_factor),
            ..config.opamp
        };
        let mut stages = Vec::with_capacity(config.stage_count);
        for i in 0..config.stage_count {
            let (c1, c2) = halves[i];
            let c_total = c1.value_f + c2.value_f;
            let c_next = if i + 1 < config.stage_count {
                let (n1, n2) = halves[i + 1];
                n1.value_f + n2.value_f
            } else {
                FLASH_INPUT_CAP_F
            };
            let c_load = electrical::stage_load_f(c_total, c_next, config.parasitic_load_f);
            let beta =
                electrical::stage_beta(c1.value_f, c2.value_f, config.beta_parasitic_fraction);
            let opamp = OpAmp::new(opamp_spec, stage_currents[i], c_load)
                .with_offset(offset_fab.gaussian(0.0, opamp_spec.offset_sigma_v));
            stages.push(PipelineStage {
                index: i,
                c_sample: Capacitor {
                    value_f: c_total,
                    nominal_f: config.c_sample_stage1.nominal_f * factors[i],
                },
                adsc: Adsc::fabricate(&config.comparator, config.v_ref_v, &mut fab),
                mdac: Mdac::new(c1.value_f, c2.value_f, beta, opamp)
                    .with_dsb_tau(config.dsb_switch_tau_s),
                samples_own_input: i > 0 && config.thermal_noise,
                leak_cubic_a_per_v3: config.leak_cubic_a_per_v3,
            });
        }
        let flash = FlashBackend::fabricate(&config.comparator, config.v_ref_v, &mut fab);

        // Front-end sampling network with the configured switch topology.
        let mut switch = SwitchModel::nominal(config.input_switch);
        switch.r_on_ohm *= corner.r_on_factor() / mobility_factor;
        let (c1, c2) = halves[0];
        let mut front_end = SamplingNetwork::new(
            switch,
            c1.value_f + c2.value_f,
            timing.track_fraction().max(1e-3),
        );
        if !config.thermal_noise {
            front_end = front_end.without_ktc_noise();
        }

        let reference = match config.reference {
            ReferenceQuality::Ideal => ReferenceBuffer::ideal(config.v_ref_v),
            ReferenceQuality::Decoupled => ReferenceBuffer::decoupled(config.v_ref_v, &mut fab),
        };

        // The front-end architecture sets extra noise/power and the
        // ADSC-path aperture skew.
        let (adsc_skew_s, sha_noise_v, sha_power_w) = match config.front_end {
            FrontEndKind::ShaLess {
                adsc_aperture_skew_s,
            } => (adsc_aperture_skew_s, 0.0, 0.0),
            FrontEndKind::DedicatedSha {
                extra_noise_rms_v,
                extra_power_w,
            } => (0.0, extra_noise_rms_v, extra_power_w),
        };

        let power = PowerModel::new(
            config.conditions.vdd_v,
            bias,
            config.opamp_current_factor,
            config.fixed_power.with_front_end_sha(sha_power_w),
        );

        let flicker = config.flicker_noise_coeff / config.f_cr_hz.sqrt();
        let aux_noise_rms_v =
            (config.aux_noise_rms_v.powi(2) + flicker.powi(2) + sha_noise_v * sha_noise_v).sqrt();

        let ripple_referred_v = config.supply_ripple_v * 10f64.powf(-config.psrr_db / 20.0);
        let correction = CorrectionPipeline::new(config.stage_count);
        Ok(Self {
            config,
            timing,
            front_end,
            stages,
            flash,
            reference,
            power,
            correction,
            noise: runtime,
            sample_noise,
            aux_noise_rms_v,
            adsc_skew_s,
            ripple_referred_v,
            sample_count: 0,
            scratch_decisions: Vec::new(),
            last_flash_code: 0,
            plans: Vec::new(),
            front_noise_rms_v: 0.0,
            plans_dirty: true,
            scratch_values: Vec::new(),
            scratch_slopes: Vec::new(),
        })
    }

    /// The configuration this die was fabricated from.
    pub fn config(&self) -> &AdcConfig {
        &self.config
    }

    /// The per-phase timing budget at the operating rate.
    pub fn timing(&self) -> TimingBudget {
        self.timing
    }

    /// Pipeline latency from sampling to D_OUT, in conversion cycles.
    pub fn latency_samples(&self) -> usize {
        correction::latency_samples(self.config.stage_count)
    }

    /// Power decomposition at the operating rate (the Fig. 4 quantity).
    pub fn power_reading(&self) -> PowerReading {
        self.power.reading(self.config.f_cr_hz)
    }

    /// Total power at the operating rate, watts.
    pub fn power_w(&self) -> f64 {
        self.power_reading().total_w
    }

    /// The underlying power model (for external sweeps).
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Converts the analog value corresponding to a code (code-centre
    /// reconstruction).
    pub fn reconstruct_v(&self, code: u16) -> f64 {
        (f64::from(code) + 0.5) * self.config.lsb_v() - self.config.v_ref_v
    }

    /// Clears all inter-sample state (settling/tracking memory, latency
    /// pipeline). Records taken after a reset are statistically
    /// independent but still seed-deterministic.
    pub fn reset(&mut self) {
        self.front_end.reset();
        for s in &mut self.stages {
            s.reset();
        }
        self.correction.reset();
        self.sample_count = 0;
    }

    /// Converts one already-sampled value (no jitter, no tracking
    /// distortion from slope). Prefer [`Self::convert_waveform`] for
    /// dynamic measurements.
    pub fn convert_held(&mut self, v: f64) -> u16 {
        self.convert_one(v, 0.0)
    }

    /// Converts one held value and returns the *raw* per-stage decisions
    /// and flash code alongside the corrected output code — the data a
    /// digital calibration engine taps (see [`crate::calibration`]).
    pub fn convert_held_raw(&mut self, v: f64) -> RawConversion {
        let mut raw = RawConversion::default();
        self.convert_held_raw_into(v, &mut raw);
        raw
    }

    /// Allocation-free variant of [`Self::convert_held_raw`]: reuses
    /// `out`'s `dac_levels` buffer across calls, so calibration loops
    /// observing millions of conversions do not allocate per sample.
    pub fn convert_held_raw_into(&mut self, v: f64, out: &mut RawConversion) {
        out.code = self.convert_one(v, 0.0);
        out.dac_levels.clear();
        out.dac_levels
            .extend(self.scratch_decisions.iter().map(|d| d.dac_level));
        out.flash_code = self.last_flash_code;
    }

    /// Converts a pre-sampled record. Tracking distortion and jitter do
    /// not apply (there is no continuous-time information); settling,
    /// noise, mismatch, and correction do.
    pub fn convert_voltages(&mut self, voltages: &[f64]) -> Vec<u16> {
        voltages.iter().map(|&v| self.convert_one(v, 0.0)).collect()
    }

    /// Samples and converts `n_samples` points of a continuous waveform
    /// at the configured conversion rate, starting at `t = 0`.
    ///
    /// The record excludes `WARMUP_SAMPLES` (16) leading conversions so
    /// settling and tracking memory are in steady state — measurement
    /// records are therefore stationary.
    pub fn convert_waveform<W: Waveform + ?Sized>(
        &mut self,
        waveform: &W,
        n_samples: usize,
    ) -> Vec<u16> {
        let mut out = Vec::new();
        self.convert_waveform_into(waveform, n_samples, &mut out);
        out
    }

    /// Like [`Self::convert_waveform`], appending into a caller-owned
    /// buffer (cleared first) so repeated captures reuse one allocation.
    ///
    /// With jitter disabled the sampling instants form an exact uniform
    /// grid, so the waveform is evaluated in one batched
    /// [`Waveform::fill_with_slope`] pass. The grid instants and the
    /// conversion itself are bit-identical to the per-sample path;
    /// sources that override `fill_with_slope` with a recurrence may
    /// contribute ulp-scale waveform deviations (see the trait docs).
    pub fn convert_waveform_into<W: Waveform + ?Sized>(
        &mut self,
        waveform: &W,
        n_samples: usize,
        out: &mut Vec<u16>,
    ) {
        let _trace_record = adc_trace::span_with("record", n_samples as u64);
        let period = self.timing.period_s;
        out.clear();
        out.reserve(n_samples);
        let total = n_samples + WARMUP_SAMPLES;
        // adc-lint: allow(float-eq) reason="feature gate: zero jitter sigma selects the exact-grid batch path"
        if self.config.jitter.sigma_s == 0.0 {
            // Jitter off: t = k·period exactly (the jitter source returns
            // exactly 0.0 without consuming the noise stream), so the
            // batched grid evaluation is bit-identical to per-sample.
            let mut values = std::mem::take(&mut self.scratch_values);
            let mut slopes = std::mem::take(&mut self.scratch_slopes);
            values.resize(total, 0.0);
            slopes.resize(total, 0.0);
            waveform.fill_with_slope(0.0, period, &mut values, &mut slopes);
            for (k, (&v, &dvdt)) in values.iter().zip(slopes.iter()).enumerate() {
                let code = self.convert_one(v, dvdt);
                if k >= WARMUP_SAMPLES {
                    out.push(code);
                }
            }
            self.scratch_values = values;
            self.scratch_slopes = slopes;
        } else {
            for k in 0..total {
                let t =
                    k as f64 * period + self.sample_noise.gaussian(0.0, self.config.jitter.sigma_s);
                let (v, dvdt) = waveform.sample_at(t);
                let code = self.convert_one(v, dvdt);
                if k >= WARMUP_SAMPLES {
                    out.push(code);
                }
            }
        }
    }

    /// Mutable access to a stage, for fault-injection experiments.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn stage_mut(&mut self, index: usize) -> &mut PipelineStage {
        // Any stage constant may change behind this borrow; rebuild the
        // hoisted plans lazily on the next conversion.
        self.plans_dirty = true;
        &mut self.stages[index]
    }

    /// The stages, for inspection.
    pub fn stages(&self) -> &[PipelineStage] {
        &self.stages
    }

    /// The combined auxiliary input-referred noise at this operating
    /// point (config aux + flicker + any dedicated-SHA noise), volts RMS.
    pub fn aux_noise_rms_v(&self) -> f64 {
        self.aux_noise_rms_v
    }

    /// Rebuilds the hoisted plans if fault injection may have changed a
    /// stage constant — the lane kernel calls this once per batch before
    /// gathering plan copies into its stage-major arrays, mirroring the
    /// per-sample check [`PipelineAdc::convert_one`] performs.
    pub(crate) fn ensure_plans(&mut self) {
        if self.plans_dirty {
            self.rebuild_plans();
        }
    }

    /// Rebuilds the hoisted per-stage conversion constants.
    ///
    /// Independent noise sources that enter the same circuit node sum in
    /// power, so each stage's opamp output noise, the *next* stage's
    /// kT/C sampling noise, and (when the DSB selects a reference) the
    /// DAC-gain-scaled reference noise merge into one Gaussian draw with
    /// sigma `√(σ_amp² + σ_ktc² [+ (G_dac·σ_ref)²])` — a third of the
    /// per-sample draws of the unmerged path, with the same statistics.
    fn rebuild_plans(&mut self) {
        let hold_time = self.timing.period_s / 2.0;
        let settle = self.timing.settle_time_s;
        let r = self.reference;
        let vref_d0 = r.v_ref_v * (1.0 + r.static_error_rel);
        let vref_d1 = r.v_ref_v * (1.0 + r.static_error_rel - r.droop_rel);
        let mut plans = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            let mdac = stage.mdac.plan(settle);
            let next_ktc = self
                .stages
                .get(i + 1)
                .filter(|next| next.samples_own_input)
                .map_or(0.0, |next| next.c_sample.ktc_rms_v());
            let base = mdac.noise_rms_v * mdac.noise_rms_v + next_ktc * next_ktc;
            let ref_sigma = mdac.dac_gain * r.noise_rms_v;
            plans.push(StagePlan {
                droop_k: stage.leak_cubic_a_per_v3 * hold_time / stage.c_sample.value_f,
                vref_d0,
                vref_d1,
                mdac,
                sigma_d0: base.sqrt(),
                sigma_d1: (base + ref_sigma * ref_sigma).sqrt(),
            });
        }
        self.plans = plans;
        let front_ktc = self.front_end.ktc_sigma_v();
        self.front_noise_rms_v =
            (front_ktc * front_ktc + self.aux_noise_rms_v * self.aux_noise_rms_v).sqrt();
        self.plans_dirty = false;
    }

    /// Runs the full conversion of one sampled instant.
    ///
    /// This is the planned hot path: settling exponentials, effective
    /// references, droop factors, and merged noise sigmas all come from
    /// [`StagePlan`]s, and a stage consumes at most one Gaussian draw
    /// (plus comparator draws only for marginal decisions). Zero-sigma
    /// draws never touch the noise stream, so the fully ideal converter
    /// stays draw-free and bit-exact.
    fn convert_one(&mut self, v: f64, dvdt: f64) -> u16 {
        if self.plans_dirty {
            self.rebuild_plans();
        }
        // Per-stage spans on a deterministic subsample of conversions;
        // the gate costs one relaxed atomic load when tracing is off.
        let trace_stages = adc_trace::enabled() && self.sample_count.is_multiple_of(TRACE_EVERY);
        let period = self.timing.period_s;
        // Front end: deterministic tracking, then front kT/C and the
        // auxiliary/flicker noise merged into one draw.
        let tracked = self.front_end.track(v, dvdt, period);
        let mut x = tracked + self.sample_noise.gaussian(0.0, self.front_noise_rms_v);
        self.front_end.commit_held_v(x);
        // Finite PSRR couples supply ripple into the signal path.
        // adc-lint: allow(float-eq) reason="feature gate: ripple injection is configured exactly 0.0 when disabled"
        if self.ripple_referred_v != 0.0 {
            let t = self.sample_count as f64 * period;
            x += self.ripple_referred_v
                * (2.0 * std::f64::consts::PI * self.config.supply_ripple_hz * t).sin();
        }
        self.sample_count += 1;

        // SHA-less front end: the stage-1 ADSC samples through its own
        // path, skewed from the main sampling instant.
        let stage1_adsc_error = self.adsc_skew_s * dvdt;
        self.scratch_decisions.clear();
        for (stage, plan) in self.stages.iter_mut().zip(&self.plans) {
            let _trace_stage =
                trace_stages.then(|| adc_trace::span(STAGE_SPAN_NAMES[stage.index.min(13)]));
            let adsc_error = if stage.index == 0 {
                stage1_adsc_error
            } else {
                0.0
            };
            // Hold-phase leakage droop (cubic => distortion at low rates).
            x -= plan.droop_k * x * x * x;
            let decision = stage.adsc.decide(x + adsc_error, &mut self.noise);
            // The DSB selects the reference; droop depends on the DAC
            // level, and with d = 0 the reference noise cannot reach the
            // output, so its draw is skipped exactly.
            let (v_ref_eff, sigma) = if decision.dac_level == 0 {
                (plan.vref_d0, plan.sigma_d0)
            } else {
                (plan.vref_d1, plan.sigma_d1)
            };
            let noise_v = self.sample_noise.gaussian(0.0, sigma);
            x = stage
                .mdac
                .amplify_planned(&plan.mdac, x, decision.dac_level, v_ref_eff, noise_v);
            self.scratch_decisions.push(decision);
        }
        let _trace_flash = trace_stages.then(|| adc_trace::span("flash"));
        let flash_code = self.flash.decide(x, &mut self.noise);
        self.last_flash_code = flash_code;
        correction::assemble_code(&self.scratch_decisions, flash_code) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdcConfig;

    #[test]
    fn ideal_converter_is_a_perfect_quantizer() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        for i in -1000..1000 {
            let v = (i as f64 + 0.5) / 1000.0 * 0.999;
            let code = adc.convert_held(v);
            let expected = ((v * 2048.0).floor() + 2048.0) as u16;
            assert_eq!(code, expected, "v = {v}");
        }
    }

    #[test]
    fn ideal_converter_reconstruction_error_is_below_one_lsb() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let lsb = adc.config().lsb_v();
        for i in -500..500 {
            let v = i as f64 / 500.0 * 0.99;
            let code = adc.convert_held(v);
            let err = (adc.reconstruct_v(code) - v).abs();
            assert!(err <= 0.5 * lsb + 1e-12, "err {err} at v {v}");
        }
    }

    #[test]
    fn rails_clamp_out_of_range_inputs() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        assert_eq!(adc.convert_held(1.5), 4095);
        assert_eq!(adc.convert_held(-1.5), 0);
    }

    #[test]
    fn same_seed_same_codes() {
        let cfg = AdcConfig::nominal_110ms();
        let mut a = PipelineAdc::build(cfg.clone(), 42).unwrap();
        let mut b = PipelineAdc::build(cfg, 42).unwrap();
        let wave = |t: f64| 0.9 * (2.0 * std::f64::consts::PI * 10e6 * t).sin();
        assert_eq!(
            a.convert_waveform(&wave, 256),
            b.convert_waveform(&wave, 256)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = AdcConfig::nominal_110ms();
        let mut a = PipelineAdc::build(cfg.clone(), 1).unwrap();
        let mut b = PipelineAdc::build(cfg, 2).unwrap();
        let wave = |t: f64| 0.9 * (2.0 * std::f64::consts::PI * 10e6 * t).sin();
        assert_ne!(
            a.convert_waveform(&wave, 256),
            b.convert_waveform(&wave, 256)
        );
    }

    #[test]
    fn build_rejects_bad_configs() {
        let mut cfg = AdcConfig::nominal_110ms();
        cfg.stage_count = 0;
        assert!(matches!(
            PipelineAdc::build(cfg, 1),
            Err(BuildAdcError::NoStages)
        ));

        let mut cfg = AdcConfig::nominal_110ms();
        cfg.f_cr_hz = -5.0;
        assert!(matches!(
            PipelineAdc::build(cfg, 1),
            Err(BuildAdcError::InvalidRate(_))
        ));

        let mut cfg = AdcConfig::nominal_110ms();
        cfg.v_ref_v = 0.0;
        assert!(matches!(
            PipelineAdc::build(cfg, 1),
            Err(BuildAdcError::InvalidReference(_))
        ));

        // 600 MS/s with 1 ns logic delay: half period < delay.
        let mut cfg = AdcConfig::nominal_110ms();
        cfg.f_cr_hz = 600e6;
        assert!(matches!(
            PipelineAdc::build(cfg, 1),
            Err(BuildAdcError::NoSettlingTime { .. })
        ));
    }

    #[test]
    fn power_matches_paper_at_nominal() {
        let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let p = adc.power_w();
        // 97 mW ± the Monte-Carlo spread of one die.
        assert!((p - 97e-3).abs() < 8e-3, "power {} mW", p * 1e3);
    }

    #[test]
    fn nominal_converter_tracks_a_slow_ramp_monotonically_within_noise() {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 3).unwrap();
        let mut last = 0u16;
        let mut backsteps = 0;
        for i in 0..4000 {
            let v = -0.98 + 1.96 * i as f64 / 4000.0;
            let code = adc.convert_held(v);
            if code + 4 < last {
                backsteps += 1; // allow noise-level non-monotonicity
            }
            last = code;
        }
        assert_eq!(backsteps, 0);
    }

    #[test]
    fn waveform_record_has_requested_length() {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 5).unwrap();
        let wave = |t: f64| 0.5 * (2.0 * std::f64::consts::PI * 5e6 * t).sin();
        assert_eq!(adc.convert_waveform(&wave, 1024).len(), 1024);
    }

    #[test]
    fn closure_waveform_slope_is_numeric() {
        let w = |t: f64| 3.0 * t;
        assert!((Waveform::slope(&w, 1.0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn latency_is_reported() {
        let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 1).unwrap();
        assert_eq!(adc.latency_samples(), 7);
    }

    #[test]
    fn dedicated_sha_adds_its_power() {
        use crate::config::FrontEndKind;
        let base = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let cfg = AdcConfig {
            front_end: FrontEndKind::conventional_sha(),
            ..AdcConfig::nominal_110ms()
        };
        let with_sha = PipelineAdc::build(cfg, 7).unwrap();
        assert!((with_sha.power_w() - base.power_w() - 18e-3).abs() < 1e-9);
    }

    #[test]
    fn adsc_aperture_skew_is_absorbed_by_redundancy() {
        use crate::config::FrontEndKind;
        // An otherwise-ideal converter with a huge 50 ps skew still
        // quantizes a fast ramp exactly: the skewed *decision* is wrong
        // by skew·dv/dt, but the residue stays in the correctable range.
        let cfg = AdcConfig {
            front_end: FrontEndKind::ShaLess {
                adsc_aperture_skew_s: 50e-12,
            },
            ..AdcConfig::ideal(110e6)
        };
        let mut adc = PipelineAdc::build(cfg, 1).unwrap();
        // 100 MHz full-scale sine: dv/dt up to 6.3e8 V/s -> ADSC error
        // up to 31 mV, well within V_REF/4.
        let wave = |t: f64| 0.99 * (2.0 * std::f64::consts::PI * 100.13e6 * t).sin();
        let codes = adc.convert_waveform(&wave, 512);
        // Compare against the zero-skew ideal on the same waveform.
        let cfg0 = AdcConfig::ideal(110e6);
        let mut adc0 = PipelineAdc::build(cfg0, 1).unwrap();
        let codes0 = adc0.convert_waveform(&wave, 512);
        let max_diff = codes
            .iter()
            .zip(&codes0)
            .map(|(&a, &b)| (i32::from(a) - i32::from(b)).abs())
            .max()
            .unwrap();
        assert!(max_diff <= 1, "max code diff {max_diff}");
    }

    #[test]
    fn supply_ripple_appears_at_the_predicted_level() {
        // 10 mV ripple at ~5 MHz with 60 dB PSRR: a −66 dBFS spur
        // (10 mV/1000 → 10 µV... referred: 10e-3·10^-3 = 10 µV →
        // 20·log10(10e-6/1) = −100?? choose 40 dB PSRR for a visible
        // spur: 10 mV/100 = 100 µV → spur −80 dBFS → above the noise
        // floor per bin.
        let n = 4096;
        let ripple_bin = 187; // coherent ripple: 187 cycles in 4096
        let cfg = AdcConfig {
            supply_ripple_v: 50e-3,
            supply_ripple_hz: 110e6 * ripple_bin as f64 / n as f64,
            psrr_db: 40.0,
            ..AdcConfig::nominal_110ms()
        };
        let mut adc = PipelineAdc::build(cfg, 7).unwrap();
        let (f_in, _) = adc_spectral::window::coherent_frequency(110e6, n, 10e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        // Skip warmup alignment: the ripple is periodic over the record
        // only if coherent — warmup shifts phase but not the bin.
        let codes = adc.convert_waveform(&tone, n);
        let rec: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
        let ps = adc_spectral::fft::power_spectrum_one_sided(&rec).unwrap();
        // Expected spur power: (50 mV / 10^(40/20))² / 2 = (0.5 mV)²/2.
        let expected = (0.5e-3f64).powi(2) / 2.0;
        assert!(
            ps[ripple_bin] > expected / 3.0 && ps[ripple_bin] < expected * 3.0,
            "ripple spur {} vs expected {expected}",
            ps[ripple_bin]
        );
        // A clean-supply die shows no such spur.
        let mut clean = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).unwrap();
        let codes = clean.convert_waveform(&tone, n);
        let rec: Vec<f64> = codes.iter().map(|&c| clean.reconstruct_v(c)).collect();
        let ps_clean = adc_spectral::fft::power_spectrum_one_sided(&rec).unwrap();
        assert!(ps_clean[ripple_bin] < expected / 10.0);
    }

    /// Replicates the pre-plan conversion loop (per-stage
    /// `process_with_adsc_error`, per-event `effective_v`) so the hoisted
    /// planned path can be checked against it.
    fn unplanned_convert_one(adc: &mut PipelineAdc, v: f64, dvdt: f64) -> u16 {
        let period = adc.timing.period_s;
        let mut x = adc.front_end.sample(v, dvdt, period, &mut adc.noise);
        x += adc.noise.gaussian(0.0, adc.aux_noise_rms_v);
        if adc.ripple_referred_v != 0.0 {
            let t = adc.sample_count as f64 * period;
            x += adc.ripple_referred_v
                * (2.0 * std::f64::consts::PI * adc.config.supply_ripple_hz * t).sin();
        }
        adc.sample_count += 1;
        let hold_time = period / 2.0;
        let stage1_adsc_error = adc.adsc_skew_s * dvdt;
        adc.scratch_decisions.clear();
        for stage in &mut adc.stages {
            let adsc_error = if stage.index == 0 {
                stage1_adsc_error
            } else {
                0.0
            };
            let (decision, residue) = stage.process_with_adsc_error(
                x,
                adsc_error,
                &adc.reference,
                adc.timing.settle_time_s,
                hold_time,
                &mut adc.noise,
            );
            adc.scratch_decisions.push(decision);
            x = residue;
        }
        let flash_code = adc.flash.decide(x, &mut adc.noise);
        correction::assemble_code(&adc.scratch_decisions, flash_code) as u16
    }

    #[test]
    fn planned_path_matches_stage_processing_when_noise_is_silent() {
        // Every runtime noise sigma forced to zero, every *static*
        // non-ideality kept: capacitor mismatch, comparator offsets,
        // opamp offsets and finite gain, settling memory, DSB error,
        // reference static error and droop, leakage droop. With no draws
        // in either path, the planned conversion must be bit-exact
        // against the per-stage reference loop.
        let mut cfg = AdcConfig::nominal_110ms();
        cfg.thermal_noise = false;
        cfg.aux_noise_rms_v = 0.0;
        cfg.flicker_noise_coeff = 0.0;
        cfg.comparator.noise_rms_v = 0.0;
        cfg.comparator.metastable_window_v = 0.0;
        cfg.jitter.sigma_s = 0.0;
        // The opamp's sampled kT/C-like noise is independent of the
        // `thermal_noise` switch; with hot-path draws on their own
        // SplitMix64 stream it must be silenced explicitly or the two
        // loops draw different (non-zero) values.
        cfg.opamp.noise_excess_factor = 0.0;
        cfg.leak_cubic_a_per_v3 = 1e-6;
        let mut planned = PipelineAdc::build(cfg, 21).unwrap();
        planned.reference.noise_rms_v = 0.0;
        let mut reference = planned.clone();
        for i in 0..512 {
            let v = -0.95 + 1.9 * f64::from(i) / 512.0;
            assert_eq!(
                planned.convert_one(v, 0.0),
                unplanned_convert_one(&mut reference, v, 0.0),
                "planned path diverged at v = {v}"
            );
        }
    }

    #[test]
    fn convert_waveform_into_matches_per_sample_evaluation() {
        // Jitter off => the batched grid path runs; its codes must be
        // bit-identical to evaluating value/slope one instant at a time.
        let mut cfg = AdcConfig::nominal_110ms();
        cfg.jitter.sigma_s = 0.0;
        let wave = |t: f64| 0.9 * (2.0 * std::f64::consts::PI * 10.3e6 * t).sin();
        let mut batched = PipelineAdc::build(cfg.clone(), 42).unwrap();
        let mut out = vec![9999u16; 3]; // stale contents must be cleared
        batched.convert_waveform_into(&wave, 256, &mut out);
        let mut manual_adc = PipelineAdc::build(cfg, 42).unwrap();
        let period = manual_adc.timing().period_s;
        let mut manual = Vec::new();
        for k in 0..256 + WARMUP_SAMPLES {
            let t = k as f64 * period;
            let code = manual_adc.convert_one(wave.value(t), Waveform::slope(&wave, t));
            if k >= WARMUP_SAMPLES {
                manual.push(code);
            }
        }
        assert_eq!(out, manual);
    }

    #[test]
    fn convert_waveform_into_is_bit_identical_with_jitter_enabled() {
        let cfg = AdcConfig::nominal_110ms();
        let wave = |t: f64| 0.9 * (2.0 * std::f64::consts::PI * 10e6 * t).sin();
        let mut a = PipelineAdc::build(cfg.clone(), 7).unwrap();
        let mut b = PipelineAdc::build(cfg, 7).unwrap();
        let direct = a.convert_waveform(&wave, 256);
        let mut reused = Vec::new();
        b.convert_waveform_into(&wave, 256, &mut reused);
        assert_eq!(direct, reused);
    }

    #[test]
    fn convert_held_raw_into_reuses_the_buffer() {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 11).unwrap();
        let owned = adc.convert_held_raw(0.25);
        let mut adc2 = PipelineAdc::build(AdcConfig::nominal_110ms(), 11).unwrap();
        let mut raw = RawConversion {
            dac_levels: vec![7; 32], // stale contents must be cleared
            ..RawConversion::default()
        };
        adc2.convert_held_raw_into(0.25, &mut raw);
        assert_eq!(owned, raw);
    }

    #[test]
    fn stage_mut_invalidates_the_hoisted_plans() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let before = adc.convert_held(0.3);
        // A huge leakage coefficient changes the droop plan; a stale
        // plan would keep converting perfectly.
        adc.stage_mut(0).leak_cubic_a_per_v3 = 1e-3;
        let after = adc.convert_held(0.3);
        assert_ne!(before, after);
    }

    #[test]
    fn hot_die_settles_slower_but_still_works() {
        use adc_analog::process::OperatingConditions;
        let cfg = AdcConfig {
            conditions: OperatingConditions {
                temp_c: 125.0,
                ..OperatingConditions::nominal()
            },
            ..AdcConfig::nominal_110ms()
        };
        let mut adc = PipelineAdc::build(cfg, 7).unwrap();
        // Mid-scale conversion still lands mid-scale.
        let mean: f64 = (0..64)
            .map(|_| f64::from(adc.convert_held(0.0)))
            .sum::<f64>()
            / 64.0;
        assert!((mean - 2047.5).abs() < 16.0, "mean {mean}");
    }
}
