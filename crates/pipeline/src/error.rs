//! Error types for converter construction and operation.

/// Errors from building a [`crate::converter::PipelineAdc`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildAdcError {
    /// Fewer than one 1.5-bit stage requested.
    NoStages,
    /// Conversion rate must be positive. Carries the offending value.
    InvalidRate(f64),
    /// Reference voltage must be positive. Carries the offending value.
    InvalidReference(f64),
    /// The clocking scheme leaves no settling time at this conversion rate
    /// (non-overlap margin plus logic delay exceed the half period).
    NoSettlingTime {
        /// Conversion rate, hertz.
        f_cr_hz: f64,
        /// The (negative or zero) settling time that resulted, seconds.
        settle_time_s: f64,
    },
}

impl std::fmt::Display for BuildAdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildAdcError::NoStages => write!(f, "pipeline needs at least one 1.5-bit stage"),
            BuildAdcError::InvalidRate(r) => {
                write!(f, "conversion rate must be positive, got {r} Hz")
            }
            BuildAdcError::InvalidReference(v) => {
                write!(f, "reference voltage must be positive, got {v} V")
            }
            BuildAdcError::NoSettlingTime {
                f_cr_hz,
                settle_time_s,
            } => write!(
                f,
                "no settling time left at {} MS/s (t_settle = {:.3} ns)",
                f_cr_hz / 1e6,
                settle_time_s * 1e9
            ),
        }
    }
}

impl std::error::Error for BuildAdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            BuildAdcError::NoStages.to_string(),
            BuildAdcError::InvalidRate(-1.0).to_string(),
            BuildAdcError::InvalidReference(0.0).to_string(),
            BuildAdcError::NoSettlingTime {
                f_cr_hz: 500e6,
                settle_time_s: -1e-9,
            }
            .to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("no"));
        }
        assert!(msgs[3].contains("500"));
    }
}
