//! Foreground digital weight calibration — the "future work" extension
//! every successor to the paper's architecture shipped.
//!
//! The error-correction logic of [`crate::correction`] assumes ideal
//! radix-2 stage weights; capacitor mismatch and finite opamp gain make
//! the true weights slightly different, which is where the converter's
//! INL (and part of its distortion) comes from. A foreground calibration
//! measures the *actual* weight of each stage's decision:
//!
//! 1. drive the converter with known DC levels (on chip this is a slow
//!    calibration DAC; here the testbench plays that role);
//! 2. record the raw per-stage decisions for each level
//!    ([`crate::converter::PipelineAdc::convert_held_raw`]);
//! 3. least-squares solve for the weight vector `w` minimizing
//!    `Σ (w·x − v_known)²` where `x` = (d₁…d₁₀, flash−1.5, 1).
//!
//! Reconstructing with the fitted weights removes the mismatch-induced
//! static nonlinearity; noise and front-end dynamic distortion remain
//! (they are not linear-in-decisions effects).

use crate::converter::{PipelineAdc, RawConversion};

/// Calibrated reconstruction weights.
///
/// ```
/// use adc_pipeline::calibration::{calibrate_foreground, training_levels};
/// use adc_pipeline::{AdcConfig, PipelineAdc};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1)?;
/// let w = calibrate_foreground(&mut adc, &training_levels(64, 1.0), 1)?;
/// // Stage 1 of an ideal converter weighs V_REF/2.
/// assert!((w.stage_weights_v[0] - 0.5).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CalibrationWeights {
    /// Per-stage weights (volts per DAC level), stage 1 first.
    pub stage_weights_v: Vec<f64>,
    /// Flash weight (volts per flash step).
    pub flash_weight_v: f64,
    /// Additive offset, volts.
    pub offset_v: f64,
    /// RMS residual of the fit over the training set, volts.
    pub fit_residual_rms_v: f64,
}

impl CalibrationWeights {
    /// The ideal (uncalibrated) weights for an `n`-stage converter with
    /// reference `v_ref_v`: stage i weighs `V_REF·2^{−i}`, the flash step
    /// `V_REF·2^{−(n+1)}`.
    pub fn ideal(stage_count: usize, v_ref_v: f64) -> Self {
        Self {
            stage_weights_v: (1..=stage_count)
                .map(|i| v_ref_v / 2f64.powi(i as i32))
                .collect(),
            flash_weight_v: v_ref_v / 2f64.powi(stage_count as i32 + 1),
            offset_v: 0.0,
            fit_residual_rms_v: 0.0,
        }
    }

    /// Reconstructs the analog input from a raw conversion.
    ///
    /// # Panics
    ///
    /// Panics if the decision vector length does not match the weights.
    pub fn reconstruct_v(&self, raw: &RawConversion) -> f64 {
        assert_eq!(
            raw.dac_levels.len(),
            self.stage_weights_v.len(),
            "stage count mismatch"
        );
        let mut v = self.offset_v + self.flash_weight_v * (f64::from(raw.flash_code) - 1.5);
        for (w, &d) in self.stage_weights_v.iter().zip(&raw.dac_levels) {
            v += w * f64::from(d);
        }
        v
    }
}

/// Errors from the calibration procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrateError {
    /// Fewer training points than unknowns.
    TooFewPoints {
        /// Points supplied.
        points: usize,
        /// Unknowns to fit.
        unknowns: usize,
    },
    /// The normal equations were singular (training levels did not
    /// exercise every stage decision).
    Singular,
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::TooFewPoints { points, unknowns } => {
                write!(f, "need more than {unknowns} training points, got {points}")
            }
            CalibrateError::Singular => {
                write!(f, "training levels do not exercise every stage decision")
            }
        }
    }
}

impl std::error::Error for CalibrateError {}

/// Solves `A·x = b` for a dense symmetric positive-definite system by
/// Gaussian elimination with partial pivoting.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-30 {
            return None;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = a[row][col] / p;
            // adc-lint: allow(float-eq) reason="exact-zero elimination skip; a zero factor contributes nothing to the row update"
            if f == 0.0 {
                continue;
            }
            let pivot_row = a[col].clone();
            for (k, cell) in a[row].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[k];
            }
            b[row] -= f * b[col];
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

/// Runs foreground calibration: drives `levels` known DC inputs
/// (averaging `repeats` conversions each to suppress noise) and fits the
/// reconstruction weights.
///
/// # Errors
///
/// Returns [`CalibrateError`] when the training set is too small or
/// degenerate.
pub fn calibrate_foreground(
    adc: &mut PipelineAdc,
    levels: &[f64],
    repeats: usize,
) -> Result<CalibrationWeights, CalibrateError> {
    let n_stages = adc.config().stage_count;
    let unknowns = n_stages + 2;
    if levels.len() < unknowns {
        return Err(CalibrateError::TooFewPoints {
            points: levels.len(),
            unknowns,
        });
    }
    let repeats = repeats.max(1);

    // Accumulate normal equations A^T·A and A^T·b over all observations.
    let mut ata = vec![vec![0.0_f64; unknowns]; unknowns];
    let mut atb = vec![0.0_f64; unknowns];
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(levels.len() * repeats);
    let mut raw = crate::converter::RawConversion::default();
    for &v in levels {
        for _ in 0..repeats {
            adc.convert_held_raw_into(v, &mut raw);
            let mut x = Vec::with_capacity(unknowns);
            for &d in &raw.dac_levels {
                x.push(f64::from(d));
            }
            x.push(f64::from(raw.flash_code) - 1.5);
            x.push(1.0);
            for r in 0..unknowns {
                for c in 0..unknowns {
                    ata[r][c] += x[r] * x[c];
                }
                atb[r] += x[r] * v;
            }
            rows.push((x, v));
        }
    }
    let w = solve_dense(ata, atb).ok_or(CalibrateError::Singular)?;

    // Fit residual.
    let mut resid2 = 0.0;
    for (x, v) in &rows {
        let est: f64 = x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum();
        resid2 += (est - v).powi(2);
    }
    let fit_residual_rms_v = (resid2 / rows.len() as f64).sqrt();

    Ok(CalibrationWeights {
        stage_weights_v: w[..n_stages].to_vec(),
        flash_weight_v: w[n_stages],
        offset_v: w[n_stages + 1],
        fit_residual_rms_v,
    })
}

/// Standard training levels: `count` points uniformly covering
/// ±`0.98·v_ref` (staying off the rails so clipping does not bias the
/// fit).
pub fn training_levels(count: usize, v_ref_v: f64) -> Vec<f64> {
    assert!(count >= 2, "need at least two levels");
    (0..count)
        .map(|i| -0.98 * v_ref_v + 1.96 * v_ref_v * i as f64 / (count - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdcConfig;

    #[test]
    fn ideal_weights_reproduce_ideal_reconstruction() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let weights = CalibrationWeights::ideal(10, 1.0);
        for i in -20..=20 {
            let v = i as f64 / 20.0 * 0.95;
            let raw = adc.convert_held_raw(v);
            let est = weights.reconstruct_v(&raw);
            // Within the flash quantization step.
            assert!((est - v).abs() <= 1.0 / 2048.0, "v {v}: est {est}");
        }
    }

    #[test]
    fn calibrating_an_ideal_converter_recovers_ideal_weights() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let w = calibrate_foreground(&mut adc, &training_levels(256, 1.0), 1).unwrap();
        let ideal = CalibrationWeights::ideal(10, 1.0);
        for (fitted, truth) in w.stage_weights_v.iter().zip(&ideal.stage_weights_v) {
            assert!((fitted - truth).abs() / truth < 0.01, "{fitted} vs {truth}");
        }
        assert!(w.fit_residual_rms_v < 1.0 / 2048.0);
    }

    #[test]
    fn calibration_reduces_static_error_on_a_mismatched_die() {
        // A die with exaggerated mismatch and no noise isolates the
        // static effect the calibration targets.
        let mut cfg = AdcConfig::ideal(110e6);
        cfg.c_sample_stage1 = adc_analog::capacitor::CapacitorSpec::new(4e-12, 0.0, 0.005);
        let mut adc = PipelineAdc::build(cfg, 3).unwrap();
        let w = calibrate_foreground(&mut adc, &training_levels(512, 1.0), 1).unwrap();
        let ideal = CalibrationWeights::ideal(10, 1.0);
        // Evaluate both reconstructions on fresh points.
        let (mut err_cal, mut err_ideal) = (0.0, 0.0);
        for i in 0..401 {
            let v = -0.95 + 1.9 * i as f64 / 400.0;
            let raw = adc.convert_held_raw(v);
            err_cal += (w.reconstruct_v(&raw) - v).powi(2);
            err_ideal += (ideal.reconstruct_v(&raw) - v).powi(2);
        }
        assert!(
            err_cal < err_ideal / 4.0,
            "calibrated {err_cal} vs ideal-weight {err_ideal}"
        );
    }

    #[test]
    fn too_few_points_is_an_error() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let err = calibrate_foreground(&mut adc, &[0.0, 0.5], 1).unwrap_err();
        assert!(matches!(err, CalibrateError::TooFewPoints { .. }));
    }

    #[test]
    fn raw_conversion_is_consistent_with_code() {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        for i in -10..=10 {
            let v = i as f64 / 10.0 * 0.9;
            let raw = adc.convert_held_raw(v);
            let decisions: Vec<crate::subconverter::StageDecision> = raw
                .dac_levels
                .iter()
                .map(|&dac_level| crate::subconverter::StageDecision { dac_level })
                .collect();
            assert_eq!(
                crate::correction::assemble_code(&decisions, raw.flash_code),
                u32::from(raw.code)
            );
        }
    }

    #[test]
    fn training_levels_cover_the_range_symmetrically() {
        let l = training_levels(11, 1.0);
        assert_eq!(l.len(), 11);
        assert!((l[0] + 0.98).abs() < 1e-12);
        assert!((l[10] - 0.98).abs() < 1e-12);
        assert!((l[5]).abs() < 1e-12);
    }
}
