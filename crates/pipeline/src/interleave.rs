//! Time-interleaved operation: running several of the paper's converters
//! ping-pong to multiply the conversion rate.
//!
//! The paper sells the ADC as an IP block; the first thing an SoC team
//! does with a rate-scalable block is instantiate two and interleave them
//! for 220 MS/s. The catch is textbook: each die's offset, gain, and
//! timing differ slightly, which creates spurs at `k·f_s/M ± f_in` and
//! offset tones at `k·f_s/M`. This module implements the interleaver and
//! a foreground offset/gain alignment, so both the pathology and its cure
//! are measurable.

use crate::config::AdcConfig;
use crate::converter::{PipelineAdc, Waveform};
use crate::error::BuildAdcError;

/// An M-way time-interleaved converter array.
///
/// ```
/// use adc_pipeline::interleave::InterleavedAdc;
/// use adc_pipeline::AdcConfig;
/// # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
/// // Two of the paper's dies ping-ponged to 220 MS/s.
/// let ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7)?;
/// assert_eq!(ilv.channel_count(), 2);
/// assert!(ilv.power_w() < 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedAdc {
    channels: Vec<PipelineAdc>,
    /// Per-channel digital offset correction, in volts (applied to the
    /// reconstructed value).
    offset_corr_v: Vec<f64>,
    /// Per-channel digital gain correction (multiplies the reconstructed
    /// value).
    gain_corr: Vec<f64>,
    /// Aggregate sample rate, hertz.
    f_s_hz: f64,
}

impl InterleavedAdc {
    /// Builds an `m`-way array: each channel is fabricated as its own
    /// die (seeds `base_seed`, `base_seed+1`, …) running at
    /// `aggregate_rate_hz / m`.
    ///
    /// # Errors
    ///
    /// Propagates converter build errors.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn build(
        config: &AdcConfig,
        m: usize,
        aggregate_rate_hz: f64,
        base_seed: u64,
    ) -> Result<Self, BuildAdcError> {
        assert!(m > 0, "need at least one channel");
        let per_channel = AdcConfig {
            f_cr_hz: aggregate_rate_hz / m as f64,
            ..config.clone()
        };
        let mut channels = Vec::with_capacity(m);
        for k in 0..m {
            channels.push(PipelineAdc::build(
                per_channel.clone(),
                base_seed + k as u64,
            )?);
        }
        Ok(Self {
            channels,
            offset_corr_v: vec![0.0; m],
            gain_corr: vec![1.0; m],
            f_s_hz: aggregate_rate_hz,
        })
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Aggregate sample rate, hertz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.f_s_hz
    }

    /// Total power of the array, watts.
    pub fn power_w(&self) -> f64 {
        self.channels.iter().map(PipelineAdc::power_w).sum()
    }

    /// The channels, for inspection.
    pub fn channels(&self) -> &[PipelineAdc] {
        &self.channels
    }

    /// Converts a waveform at the aggregate rate, returning reconstructed
    /// voltages (per-channel corrections applied).
    ///
    /// Channel `k` takes samples `k, k+M, k+2M, …` at instants
    /// `n/f_s` (+ each channel's own jitter).
    pub fn convert_waveform<W: Waveform + ?Sized>(
        &mut self,
        waveform: &W,
        n_samples: usize,
    ) -> Vec<f64> {
        let m = self.channels.len();
        let period = 1.0 / self.f_s_hz;
        let mut out = vec![0.0; n_samples];
        for (k, channel) in self.channels.iter_mut().enumerate() {
            channel.reset();
            // Each channel sees the waveform resampled at its own phase:
            // wrap it so the channel's sample index maps to the aggregate
            // timeline.
            let shifted = PhaseShifted {
                inner: waveform,
                offset_s: k as f64 * period,
            };
            let codes = channel.convert_waveform(&shifted, n_samples.div_ceil(m));
            for (j, &code) in codes.iter().enumerate() {
                let idx = k + j * m;
                if idx < n_samples {
                    let v = channel.reconstruct_v(code);
                    out[idx] = (v + self.offset_corr_v[k]) * self.gain_corr[k];
                }
            }
        }
        out
    }

    /// Foreground channel alignment: measures each channel's offset (DC
    /// input) and gain (known DC levels) and sets the digital
    /// corrections.
    pub fn align_channels(&mut self, averages: usize) {
        let averages = averages.max(1);
        // Offset: average code at a grounded input.
        for (k, channel) in self.channels.iter_mut().enumerate() {
            let mut acc = 0.0;
            for _ in 0..averages {
                let code = channel.convert_held(0.0);
                acc += channel.reconstruct_v(code);
            }
            self.offset_corr_v[k] = -acc / averages as f64;
        }
        // Gain: slope over ±0.9 of the range (a wide span averages local
        // INL out of the estimate), after offset correction.
        for (k, channel) in self.channels.iter_mut().enumerate() {
            let measure = |channel: &mut PipelineAdc, v: f64, avgs: usize| {
                let mut acc = 0.0;
                for _ in 0..avgs {
                    let code = channel.convert_held(v);
                    acc += channel.reconstruct_v(code);
                }
                acc / avgs as f64
            };
            let hi = measure(channel, 0.9, averages) + self.offset_corr_v[k];
            let lo = measure(channel, -0.9, averages) + self.offset_corr_v[k];
            let slope = (hi - lo) / 1.8;
            if slope > 0.1 {
                self.gain_corr[k] = 1.0 / slope;
            }
        }
    }

    /// Deliberately mis-aligns a channel (for demonstrating the
    /// interleave spurs).
    pub fn inject_mismatch(&mut self, channel: usize, offset_v: f64, gain: f64) {
        self.offset_corr_v[channel] = offset_v;
        self.gain_corr[channel] = gain;
    }

    /// Resets all channels' analog state.
    pub fn reset(&mut self) {
        for c in &mut self.channels {
            c.reset();
        }
    }
}

/// Adapter presenting the aggregate-timeline waveform to one channel.
/// The channel clocks at `f_s/M`, so its sample `j` already sits at
/// `j·M/f_s` in its own time base; only the channel's phase offset on
/// the aggregate timeline needs adding.
struct PhaseShifted<'a, W: ?Sized> {
    inner: &'a W,
    offset_s: f64,
}

impl<W: Waveform + ?Sized> Waveform for PhaseShifted<'_, W> {
    fn value(&self, t_s: f64) -> f64 {
        self.inner.value(t_s + self.offset_s)
    }

    fn slope(&self, t_s: f64) -> f64 {
        self.inner.slope(t_s + self.offset_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_array_doubles_the_rate() {
        let ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7).unwrap();
        assert_eq!(ilv.channel_count(), 2);
        assert_eq!(ilv.sample_rate_hz(), 220e6);
        // Each channel runs at the nominal 110 MS/s.
        assert_eq!(ilv.channels()[0].config().f_cr_hz, 110e6);
        // And burns roughly 2x the power of one die.
        assert!(
            ilv.power_w() > 0.15 && ilv.power_w() < 0.25,
            "{}",
            ilv.power_w()
        );
    }

    #[test]
    fn interleaved_samples_are_time_ordered() {
        // An ideal 2-way array digitizing a slow ramp must produce a
        // monotone record — channel samples interleave correctly.
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        let ramp = |t: f64| -0.9 + 4.0e7 * t; // spans ±0.9 over ~45 samples
        let record = ilv.convert_waveform(&ramp, 80);
        for w in record.windows(2) {
            if w[0] < 0.85 && w[1] < 0.85 {
                assert!(w[1] >= w[0] - 1e-3, "non-monotone: {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn injected_offset_mismatch_creates_fs_over_2_tone() {
        use adc_spectral::fft::power_spectrum_one_sided;
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        // 5 mV offset on channel 1 only.
        ilv.inject_mismatch(1, 5e-3, 1.0);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let ps = power_spectrum_one_sided(&record).unwrap();
        // The offset tone sits exactly at fs/2 (bin n/2), amplitude 5 mV/2
        // per side -> power (2.5e-3)² at the one-sided Nyquist bin.
        let nyq = ps[n / 2];
        assert!(
            nyq > (2.0e-3f64).powi(2),
            "expected fs/2 offset tone, got {nyq}"
        );
    }

    #[test]
    fn injected_gain_mismatch_creates_image_spur() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 0.0, 1.01); // 1 % gain error
        let n = 4096;
        let (f_in, bin) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        // Image at fs/2 − fin: bin n/2 − bin. Gain error ε splits ε/2 to
        // the image: −20·log10(0.005) ≈ 46 dB below the carrier.
        assert_eq!(a.worst_spur_bin, n / 2 - bin);
        assert!((a.sfdr_db - 46.0).abs() < 1.5, "sfdr {}", a.sfdr_db);
    }

    #[test]
    fn alignment_removes_injected_mismatch() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 5e-3, 1.01);
        ilv.align_channels(4);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        // Ideal channels after alignment: interleave spurs below the
        // quantization floor's worst bin.
        assert!(a.sfdr_db > 70.0, "sfdr {}", a.sfdr_db);
    }

    #[test]
    fn real_dies_interleave_with_expected_spur_levels() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        // Two *different* nominal dies, aligned: residual spurs remain
        // (timing and higher-order mismatches are not corrected), but the
        // array still delivers a useful converter at 220 MS/s.
        let mut ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7).unwrap();
        ilv.align_channels(64);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.98 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        assert!(a.sndr_db > 55.0, "sndr {}", a.sndr_db);
        assert!(a.enob > 9.0, "enob {}", a.enob);
    }
}
