//! Time-interleaved operation: running several of the paper's converters
//! ping-pong to multiply the conversion rate.
//!
//! The paper sells the ADC as an IP block; the first thing an SoC team
//! does with a rate-scalable block is instantiate two and interleave them
//! for 220 MS/s. The catch is textbook: each die's offset, gain, timing,
//! and front-end bandwidth differ slightly, which creates image spurs at
//! `k·f_s/M ± f_in` and offset tones at `k·f_s/M`. This module implements
//! the interleaver with the full mismatch family:
//!
//! * **offset / gain** — per-die fabrication spread, plus
//!   [`InterleavedAdc::inject_mismatch`] for controlled experiments;
//! * **timing skew** — each channel's sampling clock arrives early or
//!   late by a die-specific aperture error ([`InterleaveMismatch`] draws
//!   it Monte-Carlo style from the array seed, or
//!   [`InterleavedAdc::inject_skew`] sets it directly);
//! * **bandwidth** — each channel's sampling front end is a single-pole
//!   low-pass with its own −3 dB corner, so channels disagree in both
//!   amplitude and phase in a way that grows with `f_in`.
//!
//! The cures are digital and per channel: additive offset and
//! multiplicative gain trims (set by the foreground
//! [`InterleavedAdc::align_channels`] or by a background calibration
//! engine such as `adc-calib`), and a **fractional-delay corrector** — a
//! cubic-Lagrange interpolator over each channel's sample stream — that
//! cancels timing skew in the digital domain.

use adc_analog::noise::NoiseSource;

use crate::config::AdcConfig;
use crate::converter::{PipelineAdc, Waveform};
use crate::error::BuildAdcError;

/// Seed-derivation salt for the array-level mismatch draws (skew,
/// bandwidth). Disjoint from the per-die fabrication streams, so adding
/// array mismatch never re-rolls the dies themselves.
const MISMATCH_SEED_SALT: u64 = 41;

/// Array-level mismatch magnitudes, drawn Monte-Carlo style per channel
/// from the array's base seed (the same seed-derivation discipline as
/// the die fabrication streams).
///
/// All-zero ([`InterleaveMismatch::none`], also `Default`) disables both
/// mechanisms and makes [`InterleavedAdc::build_with_mismatch`]
/// bit-identical to [`InterleavedAdc::build`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InterleaveMismatch {
    /// Standard deviation of each channel's static sampling-clock skew,
    /// seconds. Zero disables skew.
    pub skew_sigma_s: f64,
    /// Nominal −3 dB bandwidth of each channel's sampling front end,
    /// hertz. Zero (or negative) disables the bandwidth model entirely.
    pub bandwidth_hz: f64,
    /// Relative (1-sigma) spread of the per-channel bandwidth around
    /// [`InterleaveMismatch::bandwidth_hz`].
    pub bandwidth_rel_sigma: f64,
}

impl InterleaveMismatch {
    /// No array-level mismatch: matched clocks, unlimited bandwidth.
    pub fn none() -> Self {
        Self {
            skew_sigma_s: 0.0,
            bandwidth_hz: 0.0,
            bandwidth_rel_sigma: 0.0,
        }
    }

    /// A plausible 0.18 µm SoC integration: 2 ps (1σ) clock-distribution
    /// skew and a 350 MHz ± 5 % sampling front end.
    pub fn typical() -> Self {
        Self {
            skew_sigma_s: 2e-12,
            bandwidth_hz: 350e6,
            bandwidth_rel_sigma: 0.05,
        }
    }
}

impl Default for InterleaveMismatch {
    fn default() -> Self {
        Self::none()
    }
}

/// An M-way time-interleaved converter array.
///
/// ```
/// use adc_pipeline::interleave::InterleavedAdc;
/// use adc_pipeline::AdcConfig;
/// # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
/// // Two of the paper's dies ping-ponged to 220 MS/s.
/// let ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7)?;
/// assert_eq!(ilv.channel_count(), 2);
/// assert!(ilv.power_w() < 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedAdc {
    channels: Vec<PipelineAdc>,
    /// Per-channel digital offset correction, in volts (applied to the
    /// reconstructed value).
    offset_corr_v: Vec<f64>,
    /// Per-channel digital gain correction (multiplies the reconstructed
    /// value).
    gain_corr: Vec<f64>,
    /// Per-channel digital time advance applied to the channel's sample
    /// stream by the fractional-delay corrector, seconds. To cancel an
    /// analog skew of `δ` seconds, set this to `−δ`.
    delay_corr_s: Vec<f64>,
    /// Per-channel static analog sampling-clock skew, seconds.
    skew_s: Vec<f64>,
    /// Per-channel front-end time constant `τ = 1/(2π·f_3dB)`, seconds;
    /// `0` disables the bandwidth model for that channel.
    tau_s: Vec<f64>,
    /// Aggregate sample rate, hertz.
    f_s_hz: f64,
}

impl InterleavedAdc {
    /// Builds an `m`-way array: each channel is fabricated as its own
    /// die (seeds `base_seed`, `base_seed+1`, …) running at
    /// `aggregate_rate_hz / m`, with matched clocks and front ends.
    ///
    /// # Errors
    ///
    /// Propagates converter build errors.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn build(
        config: &AdcConfig,
        m: usize,
        aggregate_rate_hz: f64,
        base_seed: u64,
    ) -> Result<Self, BuildAdcError> {
        Self::build_with_mismatch(
            config,
            m,
            aggregate_rate_hz,
            base_seed,
            &InterleaveMismatch::none(),
        )
    }

    /// Builds an `m`-way array with array-level timing-skew and
    /// bandwidth mismatch drawn per channel from `base_seed`.
    ///
    /// The dies themselves are fabricated exactly as in
    /// [`InterleavedAdc::build`] (same per-channel seeds); the skew and
    /// bandwidth draws come from *separate* derived noise streams, so
    /// enabling array mismatch never re-rolls the dies.
    ///
    /// # Errors
    ///
    /// Propagates converter build errors.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn build_with_mismatch(
        config: &AdcConfig,
        m: usize,
        aggregate_rate_hz: f64,
        base_seed: u64,
        mismatch: &InterleaveMismatch,
    ) -> Result<Self, BuildAdcError> {
        assert!(m > 0, "need at least one channel");
        let per_channel = AdcConfig {
            f_cr_hz: aggregate_rate_hz / m as f64,
            ..config.clone()
        };
        let mut channels = Vec::with_capacity(m);
        let mut skew_s = Vec::with_capacity(m);
        let mut tau_s = Vec::with_capacity(m);
        for k in 0..m {
            channels.push(PipelineAdc::build(
                per_channel.clone(),
                base_seed + k as u64,
            )?);
            // One derived stream per channel: inserting a draw for one
            // channel never re-phases another's.
            let mut draws = NoiseSource::from_seed(
                base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(MISMATCH_SEED_SALT + k as u64),
            );
            skew_s.push(draws.gaussian(0.0, mismatch.skew_sigma_s));
            let f3db = if mismatch.bandwidth_hz > 0.0 {
                mismatch.bandwidth_hz * draws.mismatch_factor(mismatch.bandwidth_rel_sigma)
            } else {
                0.0
            };
            tau_s.push(if f3db > 0.0 {
                1.0 / (2.0 * std::f64::consts::PI * f3db)
            } else {
                0.0
            });
        }
        Ok(Self {
            channels,
            offset_corr_v: vec![0.0; m],
            gain_corr: vec![1.0; m],
            delay_corr_s: vec![0.0; m],
            skew_s,
            tau_s,
            f_s_hz: aggregate_rate_hz,
        })
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Aggregate sample rate, hertz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.f_s_hz
    }

    /// Per-channel conversion rate, hertz (`f_s / M`).
    pub fn channel_rate_hz(&self) -> f64 {
        self.f_s_hz / self.channels.len() as f64
    }

    /// Total power of the array, watts.
    pub fn power_w(&self) -> f64 {
        self.channels.iter().map(PipelineAdc::power_w).sum()
    }

    /// The channels, for inspection.
    pub fn channels(&self) -> &[PipelineAdc] {
        &self.channels
    }

    /// Per-channel analog sampling-clock skews, seconds.
    pub fn channel_skews_s(&self) -> &[f64] {
        &self.skew_s
    }

    /// Converts a waveform at the aggregate rate, returning reconstructed
    /// voltages (per-channel corrections applied).
    ///
    /// Channel `k` takes samples `k, k+M, k+2M, …` at instants
    /// `n/f_s + skew_k` (+ each channel's own jitter), through its own
    /// single-pole front end when one is configured. Digital corrections
    /// are then applied per channel: offset and gain per sample, and the
    /// fractional-delay corrector over the channel's sample stream.
    pub fn convert_waveform<W: Waveform + ?Sized>(
        &mut self,
        waveform: &W,
        n_samples: usize,
    ) -> Vec<f64> {
        let m = self.channels.len();
        let period = 1.0 / self.f_s_hz;
        let channel_rate = self.f_s_hz / m as f64;
        let mut out = vec![0.0; n_samples];
        let mut lane: Vec<f64> = Vec::with_capacity(n_samples.div_ceil(m));
        for (k, channel) in self.channels.iter_mut().enumerate() {
            channel.reset();
            // Each channel sees the waveform resampled at its own phase
            // (plus its clock skew), band-limited by its own front end.
            let path = ChannelPath {
                inner: waveform,
                offset_s: k as f64 * period + self.skew_s[k],
                tau_s: self.tau_s[k],
            };
            let codes = channel.convert_waveform(&path, n_samples.div_ceil(m));
            lane.clear();
            for (j, &code) in codes.iter().enumerate() {
                if k + j * m < n_samples {
                    let v = channel.reconstruct_v(code);
                    lane.push((v + self.offset_corr_v[k]) * self.gain_corr[k]);
                }
            }
            let mu = self.delay_corr_s[k] * channel_rate;
            // adc-lint: allow(float-eq) reason="exact zero is the corrector's documented off state; the bit-compat pass-through must not interpolate"
            if mu != 0.0 {
                fractional_delay_in_place(&mut lane, mu);
            }
            for (j, &v) in lane.iter().enumerate() {
                out[k + j * m] = v;
            }
        }
        out
    }

    /// Foreground channel alignment: measures each channel's offset (DC
    /// input) and gain (known DC levels) and sets the digital
    /// corrections. Blind to timing skew and bandwidth — that is the
    /// background calibration engine's job.
    pub fn align_channels(&mut self, averages: usize) {
        let averages = averages.max(1);
        // Offset: average code at a grounded input.
        for (k, channel) in self.channels.iter_mut().enumerate() {
            let mut acc = 0.0;
            for _ in 0..averages {
                let code = channel.convert_held(0.0);
                acc += channel.reconstruct_v(code);
            }
            self.offset_corr_v[k] = -acc / averages as f64;
        }
        // Gain: slope over ±0.9 of the range (a wide span averages local
        // INL out of the estimate), after offset correction.
        for (k, channel) in self.channels.iter_mut().enumerate() {
            let measure = |channel: &mut PipelineAdc, v: f64, avgs: usize| {
                let mut acc = 0.0;
                for _ in 0..avgs {
                    let code = channel.convert_held(v);
                    acc += channel.reconstruct_v(code);
                }
                acc / avgs as f64
            };
            let hi = measure(channel, 0.9, averages) + self.offset_corr_v[k];
            let lo = measure(channel, -0.9, averages) + self.offset_corr_v[k];
            let slope = (hi - lo) / 1.8;
            if slope > 0.1 {
                self.gain_corr[k] = 1.0 / slope;
            }
        }
    }

    /// Deliberately mis-aligns a channel's digital offset/gain trims
    /// (for demonstrating the interleave spurs).
    pub fn inject_mismatch(&mut self, channel: usize, offset_v: f64, gain: f64) {
        self.offset_corr_v[channel] = offset_v;
        self.gain_corr[channel] = gain;
    }

    /// Sets a channel's analog sampling-clock skew directly, seconds
    /// (for controlled timing-spur experiments).
    pub fn inject_skew(&mut self, channel: usize, skew_s: f64) {
        self.skew_s[channel] = skew_s;
    }

    /// Sets a channel's front-end −3 dB bandwidth directly, hertz;
    /// zero or negative disables the bandwidth model for that channel.
    pub fn inject_bandwidth(&mut self, channel: usize, f3db_hz: f64) {
        self.tau_s[channel] = if f3db_hz > 0.0 {
            1.0 / (2.0 * std::f64::consts::PI * f3db_hz)
        } else {
            0.0
        };
    }

    /// Installs a full set of digital per-channel corrections: additive
    /// offsets (volts), multiplicative gains, and fractional-delay time
    /// advances (seconds). This is the interface a background
    /// calibration engine drives.
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from the channel count.
    pub fn set_corrections(&mut self, offsets_v: &[f64], gains: &[f64], delays_s: &[f64]) {
        let m = self.channels.len();
        assert_eq!(
            offsets_v.len(),
            m,
            "offset corrections: wrong channel count"
        );
        assert_eq!(gains.len(), m, "gain corrections: wrong channel count");
        assert_eq!(delays_s.len(), m, "delay corrections: wrong channel count");
        self.offset_corr_v.copy_from_slice(offsets_v);
        self.gain_corr.copy_from_slice(gains);
        self.delay_corr_s.copy_from_slice(delays_s);
    }

    /// Resets all channels' analog state.
    pub fn reset(&mut self) {
        for c in &mut self.channels {
            c.reset();
        }
    }
}

/// Evaluates `lane` at fractional index `j + mu` for every `j` via
/// cubic Lagrange interpolation (taps `j−1 ‥ j+2`, edges clamped) —
/// the digital fractional-delay corrector. `mu` is the time advance in
/// channel-period units; skews worth correcting are a small fraction of
/// a period, where the cubic's interpolation error sits far below the
/// converter's quantization floor.
fn fractional_delay_in_place(lane: &mut [f64], mu: f64) {
    // Lagrange basis at nodes {−1, 0, 1, 2} evaluated at mu.
    let h_m1 = -mu * (mu - 1.0) * (mu - 2.0) / 6.0;
    let h_0 = (mu + 1.0) * (mu - 1.0) * (mu - 2.0) / 2.0;
    let h_1 = -mu * (mu + 1.0) * (mu - 2.0) / 2.0;
    let h_2 = mu * (mu + 1.0) * (mu - 1.0) / 6.0;
    let n = lane.len();
    if n == 0 {
        return;
    }
    let at = |src: &[f64], i: isize| -> f64 { src[i.clamp(0, n as isize - 1) as usize] };
    let src = lane.to_vec();
    for (j, out) in lane.iter_mut().enumerate() {
        let j = j as isize;
        *out = h_m1 * at(&src, j - 1)
            + h_0 * at(&src, j)
            + h_1 * at(&src, j + 1)
            + h_2 * at(&src, j + 2);
    }
}

/// Adapter presenting the aggregate-timeline waveform to one channel.
/// The channel clocks at `f_s/M`, so its sample `j` already sits at
/// `j·M/f_s` in its own time base; the channel's phase offset on the
/// aggregate timeline plus its static clock skew need adding, and its
/// single-pole front end (time constant `τ`) shapes what it sees.
///
/// The front end uses the first-order expansion of `1/(1+sτ)`:
/// `v_out(t) ≈ v(t) − τ·v′(t)`, valid for `f·τ ≪ 1` — which captures
/// exactly the per-channel amplitude-and-phase disagreement that makes
/// bandwidth mismatch an interleaving spur mechanism. The reported
/// slope keeps the unfiltered value (the `τ·v″` refinement is far below
/// the jitter-error term the slope feeds).
struct ChannelPath<'a, W: ?Sized> {
    inner: &'a W,
    offset_s: f64,
    tau_s: f64,
}

impl<W: Waveform + ?Sized> Waveform for ChannelPath<'_, W> {
    fn value(&self, t_s: f64) -> f64 {
        // adc-lint: allow(float-eq) reason="exact zero means the front-end filter is disabled; the fast path must stay bit-identical to the unfiltered adapter"
        if self.tau_s == 0.0 {
            self.inner.value(t_s + self.offset_s)
        } else {
            let (v, s) = self.inner.sample_at(t_s + self.offset_s);
            v - self.tau_s * s
        }
    }

    fn slope(&self, t_s: f64) -> f64 {
        self.inner.slope(t_s + self.offset_s)
    }

    fn sample_at(&self, t_s: f64) -> (f64, f64) {
        let (v, s) = self.inner.sample_at(t_s + self.offset_s);
        // adc-lint: allow(float-eq) reason="exact zero means the front-end filter is disabled; the fast path must stay bit-identical to the unfiltered adapter"
        if self.tau_s == 0.0 {
            (v, s)
        } else {
            (v - self.tau_s * s, s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_array_doubles_the_rate() {
        let ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7).unwrap();
        assert_eq!(ilv.channel_count(), 2);
        assert_eq!(ilv.sample_rate_hz(), 220e6);
        // Each channel runs at the nominal 110 MS/s.
        assert_eq!(ilv.channels()[0].config().f_cr_hz, 110e6);
        assert_eq!(ilv.channel_rate_hz(), 110e6);
        // And burns roughly 2x the power of one die.
        assert!(
            ilv.power_w() > 0.15 && ilv.power_w() < 0.25,
            "{}",
            ilv.power_w()
        );
    }

    #[test]
    fn interleaved_samples_are_time_ordered() {
        // An ideal 2-way array digitizing a slow ramp must produce a
        // monotone record — channel samples interleave correctly.
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        let ramp = |t: f64| -0.9 + 4.0e7 * t; // spans ±0.9 over ~45 samples
        let record = ilv.convert_waveform(&ramp, 80);
        for w in record.windows(2) {
            if w[0] < 0.85 && w[1] < 0.85 {
                assert!(w[1] >= w[0] - 1e-3, "non-monotone: {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn mismatch_build_with_zero_sigmas_is_bit_identical_to_plain_build() {
        let n = 256;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let mut plain = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7).unwrap();
        let mut zeroed = InterleavedAdc::build_with_mismatch(
            &AdcConfig::nominal_110ms(),
            2,
            220e6,
            7,
            &InterleaveMismatch::none(),
        )
        .unwrap();
        let a = plain.convert_waveform(&tone, n);
        let b = zeroed.convert_waveform(&tone, n);
        let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn mismatch_draws_are_seeded_and_per_channel() {
        let mismatch = InterleaveMismatch {
            skew_sigma_s: 2e-12,
            ..InterleaveMismatch::none()
        };
        let a =
            InterleavedAdc::build_with_mismatch(&AdcConfig::ideal(110e6), 4, 440e6, 9, &mismatch)
                .unwrap();
        let b =
            InterleavedAdc::build_with_mismatch(&AdcConfig::ideal(110e6), 4, 440e6, 9, &mismatch)
                .unwrap();
        assert_eq!(a.channel_skews_s(), b.channel_skews_s(), "seeded draws");
        let skews = a.channel_skews_s();
        assert!(skews.iter().any(|s| s.abs() > 1e-14), "skew actually drawn");
        let mut sorted: Vec<u64> = skews.iter().map(|s| s.to_bits()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), skews.len(), "channels draw independently");
    }

    #[test]
    fn injected_offset_mismatch_creates_fs_over_2_tone() {
        use adc_spectral::fft::power_spectrum_one_sided;
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        // 5 mV offset on channel 1 only.
        ilv.inject_mismatch(1, 5e-3, 1.0);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let ps = power_spectrum_one_sided(&record).unwrap();
        // The offset tone sits exactly at fs/2 (bin n/2), amplitude 5 mV/2
        // per side -> power (2.5e-3)² at the one-sided Nyquist bin.
        let nyq = ps[n / 2];
        assert!(
            nyq > (2.0e-3f64).powi(2),
            "expected fs/2 offset tone, got {nyq}"
        );
    }

    #[test]
    fn injected_gain_mismatch_creates_image_spur() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 0.0, 1.01); // 1 % gain error
        let n = 4096;
        let (f_in, bin) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        // Image at fs/2 − fin: bin n/2 − bin. Gain error ε splits ε/2 to
        // the image: −20·log10(0.005) ≈ 46 dB below the carrier.
        assert_eq!(a.worst_spur_bin, n / 2 - bin);
        assert!((a.sfdr_db - 46.0).abs() < 1.5, "sfdr {}", a.sfdr_db);
    }

    #[test]
    fn injected_skew_creates_image_spur_at_predicted_level() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        // 20 ps of skew on channel 1. For a 2-way array the timing image
        // at fs/2 − fin has amplitude ω·δ/2 relative to the carrier:
        // 2π·20.05e6·20e-12/2 ≈ 1.26e-3 → ≈ 58 dB below the carrier.
        let skew = 20e-12;
        ilv.inject_skew(1, skew);
        let n = 4096;
        let (f_in, bin) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        assert_eq!(a.worst_spur_bin, n / 2 - bin, "timing image bin");
        let predicted_db = -20.0 * (std::f64::consts::PI * f_in * skew).log10();
        assert!(
            (a.sfdr_db - predicted_db).abs() < 2.0,
            "sfdr {} vs predicted {}",
            a.sfdr_db,
            predicted_db
        );
    }

    #[test]
    fn fractional_delay_corrector_cancels_injected_skew() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        let skew = 20e-12;
        ilv.inject_skew(1, skew);
        // The digital corrector advances the channel stream by −δ.
        ilv.set_corrections(&[0.0, 0.0], &[1.0, 1.0], &[0.0, -skew]);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        assert!(
            a.sfdr_db > 70.0,
            "corrector should bury the 58 dBc timing image: sfdr {}",
            a.sfdr_db
        );
    }

    #[test]
    fn bandwidth_mismatch_creates_image_spur() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        // Channel 1 gets a 200 MHz front end while channel 0 stays
        // unlimited: phase disagreement ωτ ≈ 0.1 rad at 20 MHz → a
        // strong image (≈ −26 dBc).
        ilv.inject_bandwidth(1, 200e6);
        let n = 4096;
        let (f_in, bin) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        assert_eq!(a.worst_spur_bin, n / 2 - bin, "bandwidth image bin");
        assert!(
            a.sfdr_db < 35.0,
            "expected a strong bandwidth image, sfdr {}",
            a.sfdr_db
        );
    }

    #[test]
    fn alignment_removes_injected_mismatch() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 5e-3, 1.01);
        ilv.align_channels(4);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        // Ideal channels after alignment: interleave spurs below the
        // quantization floor's worst bin.
        assert!(a.sfdr_db > 70.0, "sfdr {}", a.sfdr_db);
    }

    #[test]
    fn real_dies_interleave_with_expected_spur_levels() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        // Two *different* nominal dies, aligned: residual spurs remain
        // (timing and higher-order mismatches are not corrected), but the
        // array still delivers a useful converter at 220 MS/s.
        let mut ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7).unwrap();
        ilv.align_channels(64);
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let tone = move |t: f64| 0.98 * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let record = ilv.convert_waveform(&tone, n);
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        assert!(a.sndr_db > 55.0, "sndr {}", a.sndr_db);
        assert!(a.enob > 9.0, "enob {}", a.enob);
    }

    #[test]
    fn fractional_delay_with_zero_mu_is_identity() {
        let mut lane = vec![0.5, -0.25, 0.75, 0.125];
        let orig = lane.clone();
        fractional_delay_in_place(&mut lane, 0.0);
        let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&lane), bits(&orig));
    }

    #[test]
    fn fractional_delay_shifts_a_sine_by_the_expected_phase() {
        let n = 512;
        let cycles = 17.0;
        let w = 2.0 * std::f64::consts::PI * cycles / n as f64;
        let mut lane: Vec<f64> = (0..n).map(|j| (w * j as f64).sin()).collect();
        let mu = 0.25;
        fractional_delay_in_place(&mut lane, mu);
        for (j, &v) in lane.iter().enumerate().skip(2).take(n - 4) {
            let want = (w * (j as f64 + mu)).sin();
            assert!(
                (v - want).abs() < 2e-4,
                "sample {j}: {v} vs {want} (cubic interpolation error)"
            );
        }
    }
}
