//! Electrical derivation of a stage's operating point.
//!
//! Pure functions mapping the fabricated component values to the small set
//! of quantities the behavioral stage model consumes: the feedback factor
//! β of the closed-loop MDAC and the effective load capacitance that sets
//! the opamp's bandwidth and slew rate.
//!
//! The *fixed* parasitic component of the load is behaviorally important:
//! stage capacitors scale with the paper's 1 / 2⁄3 / 1⁄3 profile and bias
//! currents scale with conversion rate, but routing and opamp self-loading
//! do not — they are one of the effects that eventually breaks the "full
//! performance at any rate" property at the extremes.

/// Feedback factor of the MDAC during amplification.
///
/// `β = C2 / (C1 + C2 + C_par)` with the opamp input parasitic expressed
/// as `par_fraction · (C1 + C2)`.
///
/// # Panics
///
/// Panics if any capacitance is non-positive or the fraction is negative.
pub fn stage_beta(c1_f: f64, c2_f: f64, par_fraction: f64) -> f64 {
    assert!(c1_f > 0.0 && c2_f > 0.0, "capacitances must be positive");
    assert!(
        par_fraction >= 0.0,
        "parasitic fraction must be non-negative"
    );
    c2_f / (c1_f + c2_f + par_fraction * (c1_f + c2_f))
}

/// Effective load capacitance of a stage's opamp during amplification:
/// the next stage's sampling capacitors, the fixed routing/self-load
/// parasitic, and the series feedback network (≈ C1·C2/(C1+C2) = C/4 for
/// C1 = C2).
///
/// # Panics
///
/// Panics if `c_own_f` or `c_next_f` is non-positive, or the parasitic is
/// negative.
pub fn stage_load_f(c_own_f: f64, c_next_f: f64, parasitic_f: f64) -> f64 {
    assert!(
        c_own_f > 0.0 && c_next_f > 0.0,
        "capacitances must be positive"
    );
    assert!(parasitic_f >= 0.0, "parasitic must be non-negative");
    c_next_f + parasitic_f + 0.25 * c_own_f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_is_half_for_equal_caps_no_parasitic() {
        assert!((stage_beta(2e-12, 2e-12, 0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn parasitic_degrades_beta() {
        let clean = stage_beta(2e-12, 2e-12, 0.0);
        let loaded = stage_beta(2e-12, 2e-12, 0.15);
        assert!(loaded < clean);
        // β = 0.5/1.15 ≈ 0.4348
        assert!((loaded - 0.5 / 1.15).abs() < 1e-12);
    }

    #[test]
    fn load_includes_next_stage_and_parasitics() {
        // Stage 1 (4 pF) driving stage 2 (8/3 pF) with 0.3 pF parasitic:
        let l = stage_load_f(4e-12, 8e-12 / 3.0, 0.3e-12);
        let expected = 8e-12 / 3.0 + 0.3e-12 + 1e-12;
        assert!((l - expected).abs() < 1e-18);
    }

    #[test]
    fn fixed_parasitic_matters_more_for_scaled_stages() {
        // The relative load contribution of the fixed parasitic grows as
        // the stage caps shrink — the scaling-profile tax.
        let big = stage_load_f(4e-12, 4e-12, 0.3e-12);
        let small = stage_load_f(4e-12 / 3.0, 4e-12 / 3.0, 0.3e-12);
        let par_share_big = 0.3e-12 / big;
        let par_share_small = 0.3e-12 / small;
        assert!(par_share_small > 2.0 * par_share_big);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_caps() {
        let _ = stage_beta(0.0, 1e-12, 0.0);
    }
}
