//! The designer's sizing script: the hand calculations behind the
//! paper's §2–3 design decisions, as checkable functions.
//!
//! Given a resolution, rate, and full scale, these routines derive the
//! requirements the nominal configuration must satisfy — sampling
//! capacitor for the kT/C budget, opamp GBW for the settling budget,
//! slew rate for full-scale residue steps, bias current via Eq. 1 — and
//! the test suite closes the loop by checking the calibrated
//! [`crate::config::AdcConfig::nominal_110ms`] actually satisfies them.

use adc_analog::units::{undb, KT_NOMINAL};

/// The input-referred noise budget of a converter design.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseBudget {
    /// Quantization noise, volts RMS.
    pub quantization_rms_v: f64,
    /// Total thermal allocation (everything but quantization), volts RMS.
    pub thermal_rms_v: f64,
    /// The SNR this budget yields for a full-scale sine, dB.
    pub snr_db: f64,
}

/// Builds the budget for a target SNR.
///
/// * `target_snr_db` — desired full-scale sine SNR;
/// * `bits` — resolution (sets the quantization term);
/// * `v_ref_v` — full-scale amplitude (sine peak).
///
/// # Panics
///
/// Panics if the target SNR is unachievable at this resolution (the
/// quantization term alone already exceeds it).
pub fn noise_budget(target_snr_db: f64, bits: u32, v_ref_v: f64) -> NoiseBudget {
    assert!(v_ref_v > 0.0);
    let signal_power = v_ref_v * v_ref_v / 2.0;
    let total_noise_power = signal_power / undb(target_snr_db);
    let lsb = 2.0 * v_ref_v / 2f64.powi(bits as i32);
    let q_power = lsb * lsb / 12.0;
    assert!(
        q_power < total_noise_power,
        "target {target_snr_db} dB SNR is unachievable at {bits} bits"
    );
    NoiseBudget {
        quantization_rms_v: q_power.sqrt(),
        thermal_rms_v: (total_noise_power - q_power).sqrt(),
        snr_db: target_snr_db,
    }
}

/// Minimum sampling capacitance for a kT/C allocation: if the sampling
/// network may spend `ktc_share` (0..1) of the thermal *power* budget,
/// `C ≥ kT / (share·σ_th²)`.
///
/// # Panics
///
/// Panics for a non-positive share or budget.
pub fn min_sampling_cap_f(budget: &NoiseBudget, ktc_share: f64) -> f64 {
    assert!(ktc_share > 0.0 && ktc_share <= 1.0);
    assert!(budget.thermal_rms_v > 0.0, "no thermal budget allocated");
    KT_NOMINAL / (ktc_share * budget.thermal_rms_v * budget.thermal_rms_v)
}

/// Required closed-loop settling time constants for `bits`-accurate
/// settling: `N_τ = (bits + 1)·ln 2` (half-LSB criterion).
pub fn required_settling_tau_count(bits: u32) -> f64 {
    f64::from(bits + 1) * std::f64::consts::LN_2
}

/// Required opamp unity-gain bandwidth, hertz, for a stage with feedback
/// factor `beta` settling within `settle_time_s` to `bits` accuracy.
pub fn required_gbw_hz(bits: u32, settle_time_s: f64, beta: f64) -> f64 {
    assert!(settle_time_s > 0.0 && beta > 0.0 && beta <= 1.0);
    let n_tau = required_settling_tau_count(bits);
    n_tau / (2.0 * std::f64::consts::PI * beta * settle_time_s)
}

/// Required slew rate, volts/second, to cover a `v_step_v` output step
/// spending at most `slew_fraction` of the settle time slewing.
pub fn required_slew_v_per_s(v_step_v: f64, settle_time_s: f64, slew_fraction: f64) -> f64 {
    assert!(v_step_v > 0.0 && settle_time_s > 0.0);
    assert!(slew_fraction > 0.0 && slew_fraction < 1.0);
    v_step_v / (settle_time_s * slew_fraction)
}

/// Minimum DC gain for a static gain error below half an LSB at `bits`
/// resolution with feedback `beta`: `A0 ≥ 2^{bits+1}/β`.
pub fn required_dc_gain(bits: u32, beta: f64) -> f64 {
    assert!(beta > 0.0 && beta <= 1.0);
    2f64.powi(bits as i32 + 1) / beta
}

/// The bias capacitor Eq. 1 needs to produce `i_master_a` at
/// (`f_cr_hz`, `v_bias_v`): `C_B = I/(f·V)`.
pub fn required_bias_cap_f(i_master_a: f64, f_cr_hz: f64, v_bias_v: f64) -> f64 {
    assert!(i_master_a > 0.0 && f_cr_hz > 0.0 && v_bias_v > 0.0);
    i_master_a / (f_cr_hz * v_bias_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocking::TimingBudget;
    use crate::config::AdcConfig;
    use crate::converter::PipelineAdc;
    use crate::electrical;

    #[test]
    fn budget_splits_signal_power_correctly() {
        let b = noise_budget(67.1, 12, 1.0);
        // Total noise power = q + thermal.
        let total = b.quantization_rms_v.powi(2) + b.thermal_rms_v.powi(2);
        let expected = 0.5 / undb(67.1);
        assert!((total - expected).abs() / expected < 1e-12);
        // 12-bit quantization is 141 µV; the thermal share carries the rest.
        assert!((b.quantization_rms_v - 141e-6).abs() < 1e-6);
        assert!(b.thermal_rms_v > 250e-6 && b.thermal_rms_v < 300e-6);
    }

    #[test]
    #[should_panic(expected = "unachievable")]
    fn impossible_budget_is_rejected() {
        // 80 dB SNR at 12 bits: quantization alone is ~74 dB.
        let _ = noise_budget(80.0, 12, 1.0);
    }

    #[test]
    fn sampling_cap_requirement_matches_ktc() {
        let b = noise_budget(67.1, 12, 1.0);
        let c = min_sampling_cap_f(&b, 0.05);
        // Check the implied noise: kT/C = share of the thermal power.
        let sigma2 = KT_NOMINAL / c;
        assert!((sigma2 - 0.05 * b.thermal_rms_v.powi(2)).abs() / sigma2 < 1e-12);
        // The nominal design's 4 pF comfortably exceeds the requirement
        // (its kT/C spend is a small share, as the paper's "large
        // sampling capacitors" phrasing implies).
        assert!(AdcConfig::nominal_110ms().c_sample_stage1.nominal_f > c);
    }

    #[test]
    fn twelve_bit_settling_needs_nine_taus() {
        let n = required_settling_tau_count(12);
        assert!((n - 13.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!(n > 8.9 && n < 9.1);
    }

    #[test]
    fn nominal_stage1_opamp_meets_the_derived_gbw_requirement() {
        let cfg = AdcConfig::nominal_110ms();
        let timing = TimingBudget::at(cfg.f_cr_hz, cfg.clocking, cfg.logic_delay_s);
        let beta = electrical::stage_beta(2e-12, 2e-12, cfg.beta_parasitic_fraction);
        let need = required_gbw_hz(12, timing.settle_time_s, beta);
        // Build the die and inspect the actual stage-1 opamp.
        let adc = PipelineAdc::build(cfg, 7).expect("builds");
        let have = adc.stages()[0].mdac.opamp.gbw_hz();
        assert!(
            have > 0.8 * need,
            "stage 1 GBW {have:.3e} vs requirement {need:.3e}"
        );
    }

    #[test]
    fn nominal_stage1_opamp_meets_the_slew_requirement() {
        let cfg = AdcConfig::nominal_110ms();
        let timing = TimingBudget::at(cfg.f_cr_hz, cfg.clocking, cfg.logic_delay_s);
        // Full-scale residue step ≈ 2·V_REF, ≤ 35 % of the phase slewing
        // (the v_lin boundary region settles linearly, so the pure-slew
        // segment is shorter than the naive step/SR).
        let need = required_slew_v_per_s(2.0, timing.settle_time_s, 0.35);
        let adc = PipelineAdc::build(cfg, 7).expect("builds");
        let have = adc.stages()[0].mdac.opamp.slew_rate_v_per_s();
        assert!(have > need, "slew {have:.3e} vs requirement {need:.3e}");
    }

    #[test]
    fn nominal_dc_gain_meets_the_half_lsb_requirement() {
        let cfg = AdcConfig::nominal_110ms();
        let beta = electrical::stage_beta(2e-12, 2e-12, cfg.beta_parasitic_fraction);
        // The paper's stage 1 only needs ~10-bit static accuracy after
        // the first decision (later stages relax further); require 10b.
        let need = required_dc_gain(10, beta);
        assert!(
            cfg.opamp.dc_gain > need,
            "A0 {} vs requirement {need}",
            cfg.opamp.dc_gain
        );
    }

    #[test]
    fn eq1_sizing_round_trips() {
        // The nominal design: master = 99 µA at 110 MS/s, 0.9 V.
        let c_b = required_bias_cap_f(99e-6, 110e6, 0.9);
        assert!((c_b - 1e-12).abs() < 1e-18, "c_b {c_b}");
    }
}
