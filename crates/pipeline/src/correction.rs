//! Delay alignment and digital error correction (the paper's "Delay and
//! Correction Logic" block).
//!
//! Each 1.5-bit stage emits b_i = d_i + 1 ∈ {0, 1, 2}; the flash emits
//! 2 bits. The correction adds the stage words with a one-bit overlap:
//!
//! ```text
//! code = Σ_{i=1..n} b_i · 2^{n+1−i} + flash
//! ```
//!
//! For an ideal chain this reduces to `code = v_in/V_REF·2^{n+1} + (2^{n+1}
//! − 1.5)`, i.e. a perfect midtread (n+2)-bit quantizer — and, crucially,
//! the redundancy means any ADSC decision error up to ±V_REF/4 cancels
//! between a stage's word and the residue seen by its successors.
//!
//! [`CorrectionPipeline`] adds the real block's pipeline latency: codes
//! emerge `latency_samples` conversions after their input was sampled.

use std::collections::VecDeque;

use crate::subconverter::StageDecision;

/// Combines per-stage decisions and the flash code into the output code.
///
/// The result is clamped to the valid code range `0 ..= 2^(n+2) − 1`
/// (analog errors can push the arithmetic outside it; a real converter
/// saturates the same way).
///
/// # Panics
///
/// Panics if `decisions` is empty or `flash_code > 3`.
pub fn assemble_code(decisions: &[StageDecision], flash_code: u8) -> u32 {
    assert!(!decisions.is_empty(), "need at least one stage decision");
    assert!(flash_code <= 3, "flash code must be 2 bits");
    let n = decisions.len();
    let mut code: i64 = i64::from(flash_code);
    for (i, d) in decisions.iter().enumerate() {
        code += i64::from(d.bits()) << (n - i);
    }
    let max = (1i64 << (n + 2)) - 1;
    code.clamp(0, max) as u32
}

/// The number of conversion cycles between sampling an input and its code
/// appearing at D_OUT: the flash resolves at half-clock `2k + n + 2`
/// (cycle `⌊(n+2)/2⌋` after the sample) and one output register follows.
/// Matches the cycle-accurate `adc-digital` back-end exactly.
pub fn latency_samples(stage_count: usize) -> usize {
    (stage_count + 2) / 2 + 1
}

/// Stateful wrapper adding the correction block's pipeline latency.
#[derive(Debug, Clone, Default)]
pub struct CorrectionPipeline {
    queue: VecDeque<u32>,
    latency: usize,
}

impl CorrectionPipeline {
    /// Creates the block for an `n`-stage pipeline.
    pub fn new(stage_count: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            latency: latency_samples(stage_count),
        }
    }

    /// The block's latency in conversion cycles.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Pushes one conversion's decisions; returns the aligned output code
    /// once the pipeline has filled (`None` during the first
    /// [`Self::latency`] cycles).
    pub fn push(&mut self, decisions: &[StageDecision], flash_code: u8) -> Option<u32> {
        self.queue.push_back(assemble_code(decisions, flash_code));
        if self.queue.len() > self.latency {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Clears the pipeline (between measurement records).
    pub fn reset(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(levels: &[i8]) -> Vec<StageDecision> {
        levels
            .iter()
            .map(|&dac_level| StageDecision { dac_level })
            .collect()
    }

    /// The ideal decision chain for an input in [-1, 1): what a perfect
    /// 10-stage pipeline would decide.
    fn ideal_chain(v_in: f64, stages: usize) -> (Vec<StageDecision>, u8) {
        let mut v = v_in;
        let mut out = Vec::new();
        for _ in 0..stages {
            let d: i8 = if v > 0.25 {
                1
            } else if v < -0.25 {
                -1
            } else {
                0
            };
            v = 2.0 * v - f64::from(d);
            out.push(StageDecision { dac_level: d });
        }
        let flash = if v > 0.5 {
            3
        } else if v > 0.0 {
            2
        } else if v > -0.5 {
            1
        } else {
            0
        };
        (out, flash)
    }

    #[test]
    fn full_scale_extremes_map_to_code_rails() {
        let (d, f) = ideal_chain(-0.99999, 10);
        assert_eq!(assemble_code(&d, f), 0);
        let (d, f) = ideal_chain(0.99999, 10);
        assert_eq!(assemble_code(&d, f), 4095);
    }

    #[test]
    fn midscale_maps_near_2048() {
        let (d, f) = ideal_chain(1e-9, 10);
        let code = assemble_code(&d, f);
        assert!((2047..=2048).contains(&code), "code {code}");
    }

    #[test]
    fn ideal_chain_is_a_uniform_quantizer() {
        // code must equal floor(v·2048) + 2048 for the ideal chain.
        // Half-integer offsets keep v off exact decision boundaries, where
        // floor() and the comparator convention may legitimately differ.
        for i in -1000..1000 {
            let v = (i as f64 + 0.5) / 1000.0 * 0.999;
            let (d, f) = ideal_chain(v, 10);
            let code = assemble_code(&d, f);
            let expected = ((v * 2048.0).floor() + 2048.0) as u32;
            assert_eq!(code, expected, "v = {v}");
        }
    }

    #[test]
    fn redundancy_cancels_decision_errors() {
        // Force a wrong-but-in-range decision in stage 3 and re-derive the
        // remaining stages from the (now different) residues: the final
        // code may move by at most 1 (the sub-LSB re-quantization), not by
        // a stage weight.
        let v_in = 0.3137;
        let (base_d, base_f) = ideal_chain(v_in, 10);
        let base_code = assemble_code(&base_d, base_f);

        // Replay with stage 3's threshold perturbed by +0.2 V (< Vref/4).
        let mut v = v_in;
        let mut d2 = Vec::new();
        for i in 0..10 {
            let threshold_hi = if i == 2 { 0.25 + 0.2 } else { 0.25 };
            let d: i8 = if v > threshold_hi {
                1
            } else if v < -0.25 {
                -1
            } else {
                0
            };
            v = 2.0 * v - f64::from(d);
            d2.push(StageDecision { dac_level: d });
        }
        let flash = if v > 0.5 {
            3
        } else if v > 0.0 {
            2
        } else if v > -0.5 {
            1
        } else {
            0
        };
        let new_code = assemble_code(&d2, flash);
        assert!(
            (i64::from(new_code) - i64::from(base_code)).abs() <= 1,
            "codes {base_code} vs {new_code}"
        );
    }

    #[test]
    fn out_of_range_arithmetic_clamps() {
        // All stages high plus flash high: 2·(2^10+..+2^1)+3 = 4095, fine;
        // the clamp matters when decisions exceed the representable range
        // from analog overdrive — emulate by checking rails hold.
        let d = dec(&[1; 10]);
        assert_eq!(assemble_code(&d, 3), 4095);
        let d = dec(&[-1; 10]);
        assert_eq!(assemble_code(&d, 0), 0);
    }

    #[test]
    fn latency_matches_architecture() {
        // 10 stages: flash resolves 6 cycles after the sample, plus the
        // output register.
        assert_eq!(latency_samples(10), 7);
        assert_eq!(latency_samples(5), 4);
        assert_eq!(latency_samples(1), 2);
    }

    #[test]
    fn correction_pipeline_delays_codes() {
        let mut p = CorrectionPipeline::new(10);
        let (d, f) = ideal_chain(0.5, 10);
        let expected = assemble_code(&d, f);
        let mut outputs = Vec::new();
        for _ in 0..10 {
            outputs.push(p.push(&d, f));
        }
        // First `latency` pushes yield nothing.
        assert!(outputs[..p.latency()].iter().all(Option::is_none));
        assert!(outputs[p.latency()..].iter().all(|o| *o == Some(expected)));
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn rejects_wide_flash_code() {
        let _ = assemble_code(&dec(&[0]), 4);
    }
}
