//! Lane-parallel structure-of-arrays conversion: N independent dies
//! advance through each MDAC stage in lock-step.
//!
//! The scalar planned path ([`PipelineAdc::convert_waveform_into`])
//! converts one sample at a time: ten dependent stage evaluations —
//! droop, ADSC decision, one merged Gaussian draw, settling — form a
//! serial floating-point chain the CPU cannot overlap. A [`LaneBatch`]
//! carries 4–16 *independent* conversions (Monte-Carlo die variants,
//! interleaved channels, or just separate records) through the same
//! stage together, restructured from array-of-structs to
//! structure-of-arrays:
//!
//! * the hoisted [`StagePlan`]s and the MDAC settling memories are
//!   gathered once per batch into flat stage-major arrays, so the
//!   per-stage inner loops stream over contiguous state instead of
//!   chasing `lanes[l].stages[s]` pointers, and the per-sample
//!   `plans_dirty` check is amortized away;
//! * each stage becomes three short lane loops — decide (per-lane
//!   comparators), a Gaussian *draw stripe* (one merged draw per lane
//!   from that lane's own stream), and a branch-free SoA amplify
//!   kernel ([`AmpConstants::amplify_lanes`]) the compiler packs into
//!   SIMD lanes (runtime-dispatched to an AVX2 instantiation on
//!   x86-64 hosts that have it — bit-identical, just wider);
//! * the per-sample hot draws (jitter, front end, ten merged stage
//!   draws) live on each die's single-word
//!   [`SampleNoise`](adc_analog::stripe::SampleNoise) stream, so the
//!   batch pre-draws the whole sample's block for all lanes at once
//!   ([`NormalBlock`], draw-major) and each loop consumes its slot as
//!   a contiguous lane stripe;
//! * the independent per-lane FP chains give the out-of-order core real
//!   instruction-level parallelism: while lane 0's settling
//!   exponential/divide is in flight, lanes 1..N issue theirs.
//!
//! # Bit-exactness discipline
//!
//! Every lane is one [`PipelineAdc`] with its **own** noise streams,
//! and the kernel executes lanes in lock-step *sample-major,
//! stage-major, lane-minor*. The per-sample hot draws are
//! unconditional and fixed-count, so the block pre-draw consumes each
//! lane's `SampleNoise` words in exactly the scalar order; the
//! data-dependent draws (marginal comparator decisions) stay on the
//! die's fabrication-side `NoiseSource` and are taken per lane at
//! exactly the point the scalar path would take them. Interleaving
//! *between* lanes touches only other streams and is therefore
//! invisible per lane. Consequently each lane's output is
//! bit-identical to running that waveform alone through the scalar
//! planned path at the same seed — asserted by this module's tests and
//! by the `determinism` integration suite. (Splitting the hot draws
//! onto `SampleNoise` changed realizations relative to the
//! single-stream model, which is why `NUMERICS_EPOCH` is 3.) See
//! DESIGN.md §16.

use adc_analog::stripe::{standard_normal_step, standard_normal_stripe, NormalBlock};

use crate::config::AdcConfig;
use crate::converter::{PipelineAdc, StagePlan, Waveform, WARMUP_SAMPLES};
use crate::correction;
use crate::error::BuildAdcError;
use crate::mdac::AmpConstants;
use crate::subconverter::StageDecision;

/// Why a set of dies cannot form a [`LaneBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneError {
    /// A batch needs at least one lane.
    Empty,
    /// Lanes must agree on stage count so the lock-step stage loop is
    /// well-formed (configs may otherwise differ freely).
    MismatchedStageCount {
        /// Index of the offending lane.
        lane: usize,
        /// Stage count of lane 0.
        expected: usize,
        /// Stage count of the offending lane.
        got: usize,
    },
}

impl std::fmt::Display for LaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "a lane batch needs at least one lane"),
            Self::MismatchedStageCount {
                lane,
                expected,
                got,
            } => write!(
                f,
                "lane {lane} has {got} stages, lane 0 has {expected}: \
                 lock-step execution needs a uniform stage count"
            ),
        }
    }
}

impl std::error::Error for LaneError {}

/// N fabricated dies converting in lock-step (see the module docs).
///
/// ```
/// use adc_pipeline::config::AdcConfig;
/// use adc_pipeline::lanes::LaneBatch;
///
/// # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
/// // Four Monte-Carlo die variants of the paper's nominal design.
/// let mut batch = LaneBatch::build(&AdcConfig::nominal_110ms(), &[1, 2, 3, 4])?;
/// let tone = |t: f64| 0.9 * (2.0 * std::f64::consts::PI * 10.07e6 * t).sin();
/// let records = batch.convert_waveform(&tone, 256);
/// assert_eq!(records.len(), 4);
/// assert!(records.iter().all(|r| r.len() == 256));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneBatch {
    lanes: Vec<PipelineAdc>,
    stage_count: usize,
    /// Stage-major gathered plans: `plan_soa[s·N + l]` is lane `l`'s
    /// plan for stage `s`. Rebuilt at the top of every batch.
    plan_soa: Vec<StagePlan>,
    /// Stage-major gathered MDAC settling memories, scattered back into
    /// the lanes when the batch completes.
    prev_soa: Vec<f64>,
    /// Per-lane residue (the value walking down the pipeline).
    x: Vec<f64>,
    /// Per-lane stage-1 ADSC aperture-skew error for the current sample.
    adsc_err: Vec<f64>,
    /// Per-lane DAC level of the current stage, as the exact small
    /// integer `f64` the amplify kernel multiplies with (`f64::from` of
    /// the decision).
    dac: Vec<f64>,
    /// Per-lane effective reference of the current stage.
    vref: Vec<f64>,
    /// Per-lane merged noise sigma of the current stage.
    sigma: Vec<f64>,
    /// Per-lane merged Gaussian draw of the current stage (the stripe).
    noise_v: Vec<f64>,
    /// Lane-major decisions of the current sample:
    /// `decisions[l·stages + s]`.
    decisions: Vec<StageDecision>,
    /// Per-lane conversion period, seconds.
    periods: Vec<f64>,
    /// Lane-major pre-evaluated waveform values for exact-grid (jitter
    /// off) lanes: `values[l·total + k]`.
    values: Vec<f64>,
    /// Lane-major pre-evaluated waveform slopes (exact-grid lanes).
    slopes: Vec<f64>,
    /// Gathered per-lane SplitMix64 sample-noise states, advanced in
    /// vectorizable stripes and scattered back when the batch completes.
    states: Vec<u64>,
    /// Whole-sample deviate block (see [`BlockPlan`]), reused across
    /// samples.
    block: NormalBlock,
    /// Stage-major field-major gather of the per-lane amplify constants
    /// (see [`AmpConstants`]), rebuilt with `plan_soa`.
    amp: AmpConstants,
}

/// The per-sample draw schedule when every draw slot is lane-uniform:
/// which slot (if any) of the pre-drawn [`NormalBlock`] feeds jitter,
/// the front end, and each stage's merged draw.
///
/// Eligibility is decided per batch from the gathered configs and
/// plans: a slot qualifies when its sigma is positive on *every* lane
/// (consumes everywhere) or non-positive on every lane (consumes
/// nowhere). Then the number of stream words each lane spends per
/// sample is a constant, so all of them can be drawn at the top of the
/// sample in one wide block — per lane in exactly the scalar
/// consumption order, so bit-exactness is untouched. Any mixed slot
/// (sigma on for some lanes only, or a stage whose two DSB sigma
/// candidates straddle zero) makes consumption data-dependent, and the
/// batch falls back to the per-site stripes.
#[derive(Debug, Clone)]
struct BlockPlan {
    /// Block slot of the aperture-jitter draw (`None`: jitter off on
    /// every lane, no draw).
    jitter: Option<usize>,
    /// Block slot of the merged front-end draw.
    front: Option<usize>,
    /// Block slot of each stage's merged draw.
    stage: Vec<Option<usize>>,
    /// Total slots per lane per sample.
    draws: usize,
}

impl LaneBatch {
    /// Assembles a batch from already-fabricated dies (Monte-Carlo
    /// variants, interleave channels, fault-injected mutants, ...).
    ///
    /// # Errors
    ///
    /// [`LaneError::Empty`] for an empty set and
    /// [`LaneError::MismatchedStageCount`] when the dies disagree on
    /// pipeline depth.
    pub fn from_adcs(lanes: Vec<PipelineAdc>) -> Result<Self, LaneError> {
        let stage_count = lanes.first().ok_or(LaneError::Empty)?.stages.len();
        for (lane, adc) in lanes.iter().enumerate() {
            if adc.stages.len() != stage_count {
                return Err(LaneError::MismatchedStageCount {
                    lane,
                    expected: stage_count,
                    got: adc.stages.len(),
                });
            }
        }
        let n = lanes.len();
        Ok(Self {
            lanes,
            stage_count,
            plan_soa: Vec::new(),
            prev_soa: Vec::new(),
            x: vec![0.0; n],
            adsc_err: vec![0.0; n],
            dac: vec![0.0; n],
            vref: vec![0.0; n],
            sigma: vec![0.0; n],
            noise_v: vec![0.0; n],
            decisions: vec![StageDecision { dac_level: 0 }; n * stage_count],
            periods: vec![0.0; n],
            values: Vec::new(),
            slopes: Vec::new(),
            states: vec![0; n],
            block: NormalBlock::new(),
            amp: AmpConstants::default(),
        })
    }

    /// Fabricates one die per seed from a shared configuration — the
    /// Monte-Carlo shape: same design, different process draws.
    ///
    /// # Errors
    ///
    /// Propagates the first seed's [`BuildAdcError`] (the config itself
    /// is unbuildable, or `seeds` is empty — surfaced as
    /// [`BuildAdcError::NoStages`] would never be, so an empty seed set
    /// panics instead).
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty.
    pub fn build(config: &AdcConfig, seeds: &[u64]) -> Result<Self, BuildAdcError> {
        assert!(!seeds.is_empty(), "need at least one lane seed");
        let lanes = seeds
            .iter()
            .map(|&seed| PipelineAdc::build(config.clone(), seed))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_adcs(lanes).expect("uniform config implies uniform stage count"))
    }

    /// The number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when the batch has no lanes (never constructible via the
    /// public constructors; kept for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The lanes, for inspection (power readings, configs).
    pub fn lanes(&self) -> &[PipelineAdc] {
        &self.lanes
    }

    /// Disassembles the batch back into its dies. Settling and noise
    /// state carry over exactly: converting scalar-ly on a returned die
    /// continues bit-identically from where the batch left off.
    pub fn into_lanes(self) -> Vec<PipelineAdc> {
        self.lanes
    }

    /// Clears every lane's inter-sample state (settling/tracking memory,
    /// sample counter), as [`PipelineAdc::reset`] does per die.
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
    }

    /// Converts `n_samples` of one shared waveform on every lane (the
    /// Monte-Carlo case), returning one record per lane.
    pub fn convert_waveform(&mut self, waveform: &dyn Waveform, n_samples: usize) -> Vec<Vec<u16>> {
        let mut out = vec![Vec::new(); self.lanes.len()];
        self.convert_waveform_into(waveform, n_samples, &mut out);
        out
    }

    /// Like [`Self::convert_waveform`], into caller-owned buffers
    /// (cleared first) so repeated captures reuse the allocations.
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from the lane count.
    pub fn convert_waveform_into(
        &mut self,
        waveform: &dyn Waveform,
        n_samples: usize,
        out: &mut [Vec<u16>],
    ) {
        let waveforms: Vec<&dyn Waveform> = vec![waveform; self.lanes.len()];
        self.convert_waveforms_into(&waveforms, n_samples, out);
    }

    /// Converts `n_samples` of a *per-lane* waveform set (interleaved
    /// channels see phase-shifted views; sweep points see different
    /// stimuli), returning one record per lane.
    ///
    /// # Panics
    ///
    /// Panics when `waveforms.len()` differs from the lane count.
    pub fn convert_waveforms(
        &mut self,
        waveforms: &[&dyn Waveform],
        n_samples: usize,
    ) -> Vec<Vec<u16>> {
        let mut out = vec![Vec::new(); self.lanes.len()];
        self.convert_waveforms_into(waveforms, n_samples, &mut out);
        out
    }

    /// The lock-step SoA kernel (see the module docs): every lane's
    /// record is bit-identical to
    /// [`PipelineAdc::convert_waveform_into`] on that lane alone.
    ///
    /// # Panics
    ///
    /// Panics when `waveforms.len()` or `out.len()` differs from the
    /// lane count.
    pub fn convert_waveforms_into(
        &mut self,
        waveforms: &[&dyn Waveform],
        n_samples: usize,
        out: &mut [Vec<u16>],
    ) {
        let n = self.lanes.len();
        assert_eq!(waveforms.len(), n, "one waveform per lane");
        assert_eq!(out.len(), n, "one output record per lane");
        let _trace = adc_trace::span_with("lane_record", (n_samples * n) as u64);
        let total = n_samples + WARMUP_SAMPLES;
        for rec in out.iter_mut() {
            rec.clear();
            rec.reserve(n_samples);
        }

        // Gather: plans (rebuilt if fault injection dirtied them) and
        // MDAC settling memories into stage-major SoA arrays.
        for lane in &mut self.lanes {
            lane.ensure_plans();
        }
        self.plan_soa.clear();
        self.prev_soa.clear();
        self.amp.clear();
        for s in 0..self.stage_count {
            for lane in &self.lanes {
                self.plan_soa.push(lane.plans[s]);
                self.prev_soa.push(lane.stages[s].mdac.prev_output_v());
                self.amp.push(&lane.plans[s].mdac);
            }
        }
        for (l, lane) in self.lanes.iter().enumerate() {
            self.periods[l] = lane.timing.period_s;
            self.states[l] = lane.sample_noise.state();
        }
        // Decide once whether the whole sample's draws can be
        // pre-generated as one wide block (the fast shape) or must be
        // striped per site (mixed sigmas).
        let block_plan = self.plan_block();

        // Exact-grid lanes (jitter off) evaluate their whole record in
        // one batched fill, exactly as the scalar path does; jittered
        // lanes must evaluate per sample *after* their jitter draw.
        self.values.resize(total * n, 0.0);
        self.slopes.resize(total * n, 0.0);
        for (l, w) in waveforms.iter().enumerate() {
            // adc-lint: allow(float-eq) reason="feature gate: zero jitter sigma selects the exact-grid batch path, mirroring the scalar converter"
            if self.lanes[l].config.jitter.sigma_s == 0.0 {
                let span = l * total..(l + 1) * total;
                w.fill_with_slope(
                    0.0,
                    self.periods[l],
                    &mut self.values[span.clone()],
                    &mut self.slopes[span],
                );
            }
        }

        for k in 0..total {
            // Block-eligible batches generate every lane's entire
            // sample worth of deviates here, in one flat vector pass —
            // per lane in exactly the scalar consumption order.
            if let Some(bp) = &block_plan {
                if bp.draws > 0 {
                    self.block.fill(&mut self.states, bp.draws);
                }
            }
            // Front end, staged across lanes. Per-lane stream order is
            // exactly convert_one's: jitter draw, then the merged front
            // kT/C ⊕ aux draw.
            //
            // (1) Jitter stripe — jittered lanes draw their aperture
            // error; exact-grid lanes have zero sigma, which never
            // touches the stream.
            for l in 0..n {
                self.sigma[l] = self.lanes[l].config.jitter.sigma_s;
            }
            match &block_plan {
                Some(bp) => self.consume_block_slot(bp.jitter),
                None => self.gaussian_stripe(),
            }
            // (2) Waveform evaluation + deterministic tracking, adjacent
            // across lanes so independent `sample_at` chains overlap.
            #[allow(clippy::needless_range_loop)] // l indexes five parallel stripes
            for l in 0..n {
                let lane = &mut self.lanes[l];
                let period = self.periods[l];
                // adc-lint: allow(float-eq) reason="feature gate: zero jitter sigma selects the exact-grid batch path, mirroring the scalar converter"
                let (v, dvdt) = if lane.config.jitter.sigma_s == 0.0 {
                    (self.values[l * total + k], self.slopes[l * total + k])
                } else {
                    let t = k as f64 * period + self.noise_v[l];
                    waveforms[l].sample_at(t)
                };
                self.x[l] = lane.front_end.track(v, dvdt, period);
                self.adsc_err[l] = lane.adsc_skew_s * dvdt;
            }
            // (3) Front-noise stripe.
            for l in 0..n {
                self.sigma[l] = self.lanes[l].front_noise_rms_v;
            }
            match &block_plan {
                Some(bp) => self.consume_block_slot(bp.front),
                None => self.gaussian_stripe(),
            }
            // (4) Commit the held value; ripple phase; sample counter.
            for l in 0..n {
                let lane = &mut self.lanes[l];
                let mut xv = self.x[l] + self.noise_v[l];
                lane.front_end.commit_held_v(xv);
                // adc-lint: allow(float-eq) reason="feature gate: ripple injection is configured exactly 0.0 when disabled"
                if lane.ripple_referred_v != 0.0 {
                    let t = lane.sample_count as f64 * self.periods[l];
                    xv += lane.ripple_referred_v
                        * (2.0 * std::f64::consts::PI * lane.config.supply_ripple_hz * t).sin();
                }
                lane.sample_count += 1;
                self.x[l] = xv;
            }

            // Stages in lock-step: three lane loops per stage.
            for s in 0..self.stage_count {
                let plans = &self.plan_soa[s * n..(s + 1) * n];
                // Droop + ADSC decision + DSB reference/sigma select.
                // Comparator draws consume each lane's own stream only
                // for marginal decisions, exactly as in the scalar path.
                #[allow(clippy::needless_range_loop)] // l indexes seven parallel stripes
                for l in 0..n {
                    let lane = &mut self.lanes[l];
                    let plan = &plans[l];
                    let mut xv = self.x[l];
                    xv -= plan.droop_k * xv * xv * xv;
                    let adsc_error = if s == 0 { self.adsc_err[l] } else { 0.0 };
                    let decision = lane.stages[s].adsc.decide(xv + adsc_error, &mut lane.noise);
                    self.x[l] = xv;
                    self.dac[l] = f64::from(decision.dac_level);
                    self.decisions[l * self.stage_count + s] = decision;
                    let (v_ref_eff, sigma) = if decision.dac_level == 0 {
                        (plan.vref_d0, plan.sigma_d0)
                    } else {
                        (plan.vref_d1, plan.sigma_d1)
                    };
                    self.vref[l] = v_ref_eff;
                    self.sigma[l] = sigma;
                }
                // The draw stripe: one merged Gaussian per lane from that
                // lane's own stream, staged so the transcendental chains
                // of all pair-drawing lanes overlap (block-eligible
                // batches already drew it at the top of the sample).
                match &block_plan {
                    Some(bp) => self.consume_block_slot(bp.stage[s]),
                    None => self.gaussian_stripe(),
                }
                // Pure-FP amplify over the gathered field-major
                // constants: no stream access, no pointer chasing, no
                // per-lane branches — the packed loop the lane
                // restructuring exists for (see [`AmpConstants`]).
                self.amp.amplify_lanes(
                    s * n,
                    &mut self.x,
                    &self.dac,
                    &self.vref,
                    &self.noise_v,
                    &mut self.prev_soa[s * n..(s + 1) * n],
                );
            }

            // Flash + digital correction, lane by lane.
            #[allow(clippy::needless_range_loop)] // l indexes lanes, decisions, and out
            for l in 0..n {
                let lane = &mut self.lanes[l];
                let flash_code = lane.flash.decide(self.x[l], &mut lane.noise);
                lane.last_flash_code = flash_code;
                if k >= WARMUP_SAMPLES {
                    let dec = &self.decisions[l * self.stage_count..(l + 1) * self.stage_count];
                    out[l].push(correction::assemble_code(dec, flash_code) as u16);
                }
            }
        }

        // Scatter the settling memories and sample-noise streams back so
        // the lanes remain valid scalar converters mid-stream.
        for s in 0..self.stage_count {
            for (l, lane) in self.lanes.iter_mut().enumerate() {
                lane.stages[s]
                    .mdac
                    .set_prev_output_v(self.prev_soa[s * n + l]);
            }
        }
        for (l, lane) in self.lanes.iter_mut().enumerate() {
            lane.sample_noise.set_state(self.states[l]);
        }
    }

    /// Classifies the batch for whole-sample block draws: `Some` with a
    /// slot schedule when every draw site consumes lane-uniformly and
    /// data-independently, `None` (stripe fallback) otherwise. Must run
    /// after the plans are gathered — the stage sigma candidates live
    /// in [`StagePlan`].
    fn plan_block(&self) -> Option<BlockPlan> {
        let n = self.lanes.len();
        let mut draws = 0usize;
        // A slot is schedulable when its sigma is positive on all lanes
        // (always consumes) or non-positive on all lanes (never does —
        // the zero-sigma gate matches `SampleNoise::gaussian`).
        let mut slot_for = |on: usize, off: usize| -> Option<Option<usize>> {
            if on == n {
                draws += 1;
                Some(Some(draws - 1))
            } else if off == n {
                Some(None)
            } else {
                None
            }
        };
        let on = |p: bool| usize::from(p);
        let (mut j_on, mut j_off, mut f_on, mut f_off) = (0, 0, 0, 0);
        for lane in &self.lanes {
            j_on += on(lane.config.jitter.sigma_s > 0.0);
            j_off += on(lane.config.jitter.sigma_s <= 0.0);
            f_on += on(lane.front_noise_rms_v > 0.0);
            f_off += on(lane.front_noise_rms_v <= 0.0);
        }
        let jitter = slot_for(j_on, j_off)?;
        let front = slot_for(f_on, f_off)?;
        let mut stage = Vec::with_capacity(self.stage_count);
        for s in 0..self.stage_count {
            let (mut s_on, mut s_off) = (0, 0);
            for plan in &self.plan_soa[s * n..(s + 1) * n] {
                // Both DSB candidates must agree on consumption, or the
                // per-sample decision would gate the draw.
                s_on += on(plan.sigma_d0 > 0.0 && plan.sigma_d1 > 0.0);
                s_off += on(plan.sigma_d0 <= 0.0 && plan.sigma_d1 <= 0.0);
            }
            stage.push(slot_for(s_on, s_off)?);
        }
        Some(BlockPlan {
            jitter,
            front,
            stage,
            draws,
        })
    }

    /// Consumes one pre-drawn block slot into `noise_v`, exactly as
    /// `gaussian(0.0, self.sigma[l])` would: scale lane `l`'s deviate
    /// by its sigma, or zero the whole stripe for a no-draw slot. The
    /// draw-major block makes a slot one contiguous lane stripe.
    fn consume_block_slot(&mut self, slot: Option<usize>) {
        let n = self.lanes.len();
        match slot {
            Some(d) => {
                let z = &self.block.z()[d * n..][..n];
                for ((nv, &sigma), &zd) in self.noise_v.iter_mut().zip(&self.sigma).zip(z) {
                    *nv = 0.0 + sigma * zd;
                }
            }
            None => self.noise_v.fill(0.0),
        }
    }

    /// One `gaussian(0.0, self.sigma[l])` per lane, in lane order, into
    /// `self.noise_v` — bit-identical per lane to the scalar path's
    /// serial [`adc_analog::stripe::SampleNoise::gaussian`] calls, by
    /// construction: both sides delegate to
    /// [`standard_normal_step`] on the same per-lane state sequence.
    /// The stripe advances the *gathered* state array, so the whole
    /// loop — SplitMix64 mixes, polynomial `ln`/`cos`, scale — is
    /// straight-line FP/integer code over flat slices that the
    /// autovectorizer can chew; this is where the nominal-config lane
    /// speedup comes from, because the ~12 merged draws per sample were
    /// a third of scalar conversion time and overlapped not at all.
    fn gaussian_stripe(&mut self) {
        // Hot case: every lane's sigma is positive (any noise-on
        // config), so the whole batch draws through the packed stripe
        // kernel and then scales per lane.
        if self.sigma.iter().all(|&s| s > 0.0) {
            standard_normal_stripe(&mut self.states, &mut self.noise_v);
            for (nv, &sigma) in self.noise_v.iter_mut().zip(&self.sigma) {
                *nv = 0.0 + sigma * *nv;
            }
        } else {
            // Mixed/off sigmas: the zero-sigma gate returns the mean
            // without consuming the stream, exactly as `gaussian` does.
            for ((nv, &sigma), st) in self
                .noise_v
                .iter_mut()
                .zip(&self.sigma)
                .zip(&mut self.states)
            {
                *nv = if sigma <= 0.0 {
                    0.0
                } else {
                    0.0 + sigma * standard_normal_step(st)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdcConfig;

    fn tone(t: f64) -> f64 {
        0.9 * (2.0 * std::f64::consts::PI * 10.3e6 * t).sin()
    }

    fn scalar_record(config: &AdcConfig, seed: u64, wave: &dyn Waveform, n: usize) -> Vec<u16> {
        let mut adc = PipelineAdc::build(config.clone(), seed).expect("config builds");
        let mut out = Vec::new();
        adc.convert_waveform_into(wave, n, &mut out);
        out
    }

    #[test]
    fn lanes_match_scalar_with_jitter_enabled() {
        let config = AdcConfig::nominal_110ms();
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut batch = LaneBatch::build(&config, &seeds).unwrap();
        let records = batch.convert_waveform(&tone, 512);
        for (l, &seed) in seeds.iter().enumerate() {
            assert_eq!(
                records[l],
                scalar_record(&config, seed, &tone, 512),
                "lane {l} (seed {seed}) diverged from the scalar path"
            );
        }
    }

    #[test]
    fn lanes_match_scalar_on_the_exact_grid_path() {
        let mut config = AdcConfig::nominal_110ms();
        config.jitter.sigma_s = 0.0;
        let seeds = [11u64, 12, 13, 14];
        let mut batch = LaneBatch::build(&config, &seeds).unwrap();
        let records = batch.convert_waveform(&tone, 256);
        for (l, &seed) in seeds.iter().enumerate() {
            assert_eq!(
                records[l],
                scalar_record(&config, seed, &tone, 256),
                "grid lane {l} diverged"
            );
        }
    }

    #[test]
    fn lanes_match_scalar_with_ripple_and_per_lane_waveforms() {
        let config = AdcConfig {
            supply_ripple_v: 50e-3,
            supply_ripple_hz: 5.02e6,
            psrr_db: 40.0,
            ..AdcConfig::nominal_110ms()
        };
        let seeds = [3u64, 9];
        let tone2 = |t: f64| 0.7 * (2.0 * std::f64::consts::PI * 31.7e6 * t).sin();
        let mut batch = LaneBatch::build(&config, &seeds).unwrap();
        let waves: [&dyn Waveform; 2] = [&tone, &tone2];
        let records = batch.convert_waveforms(&waves, 200);
        assert_eq!(records[0], scalar_record(&config, 3, &tone, 200));
        assert_eq!(records[1], scalar_record(&config, 9, &tone2, 200));
    }

    #[test]
    fn a_single_lane_batch_is_the_scalar_path() {
        let config = AdcConfig::nominal_110ms();
        let mut batch = LaneBatch::build(&config, &[42]).unwrap();
        let records = batch.convert_waveform(&tone, 128);
        assert_eq!(records[0], scalar_record(&config, 42, &tone, 128));
    }

    #[test]
    fn lanes_stay_valid_scalar_converters_after_a_batch() {
        // Settling memory, noise-stream position, and sample counters
        // must scatter back exactly: a die pulled out of a batch
        // continues bit-identically to one that converted scalar-ly all
        // along.
        let config = AdcConfig::nominal_110ms();
        let mut batch = LaneBatch::build(&config, &[5, 6]).unwrap();
        let first = batch.convert_waveform(&tone, 96);
        let mut lanes = batch.into_lanes();
        let continued = lanes[0].convert_waveform(&tone, 64);

        let mut scalar = PipelineAdc::build(config.clone(), 5).unwrap();
        let mut out = Vec::new();
        scalar.convert_waveform_into(&tone, 96, &mut out);
        assert_eq!(first[0], out);
        assert_eq!(
            continued,
            scalar.convert_waveform(&tone, 64),
            "post-batch scalar continuation diverged"
        );
    }

    #[test]
    fn from_adcs_rejects_empty_and_mismatched_depths() {
        assert_eq!(
            LaneBatch::from_adcs(Vec::new()).unwrap_err(),
            LaneError::Empty
        );
        let a = PipelineAdc::build(AdcConfig::nominal_110ms(), 1).unwrap();
        let mut short = AdcConfig::nominal_110ms();
        short.stage_count = 8;
        let b = PipelineAdc::build(short, 2).unwrap();
        let err = LaneBatch::from_adcs(vec![a, b]).unwrap_err();
        assert_eq!(
            err,
            LaneError::MismatchedStageCount {
                lane: 1,
                expected: 10,
                got: 8
            }
        );
        assert!(err.to_string().contains("lock-step"));
    }

    #[test]
    fn reset_restores_statistical_independence_like_scalar_reset() {
        let config = AdcConfig::nominal_110ms();
        let mut batch = LaneBatch::build(&config, &[7]).unwrap();
        let first = batch.convert_waveform(&tone, 64);
        batch.reset();
        let second = batch.convert_waveform(&tone, 64);

        let mut scalar = PipelineAdc::build(config, 7).unwrap();
        let s_first = scalar.convert_waveform(&tone, 64);
        scalar.reset();
        let s_second = scalar.convert_waveform(&tone, 64);
        assert_eq!(first[0], s_first);
        assert_eq!(second[0], s_second);
    }
}
