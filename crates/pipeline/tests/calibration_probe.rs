//! Scratch calibration probe (developer tool): prints Table I metrics for
//! the nominal die. Run with `cargo test -p adc-pipeline --test
//! calibration_probe -- --nocapture --ignored`.

use adc_pipeline::{AdcConfig, PipelineAdc};
use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use adc_spectral::window::coherent_frequency;

struct Sine {
    a: f64,
    f: f64,
}
impl adc_pipeline::Waveform for Sine {
    fn value(&self, t: f64) -> f64 {
        self.a * (2.0 * std::f64::consts::PI * self.f * t).sin()
    }
    fn slope(&self, t: f64) -> f64 {
        2.0 * std::f64::consts::PI
            * self.f
            * self.a
            * (2.0 * std::f64::consts::PI * self.f * t).cos()
    }
}

#[test]
#[ignore]
fn probe_nominal_metrics() {
    let n = 8192;
    for seed in [1u64, 2, 3] {
        let cfg = AdcConfig::nominal_110ms();
        let mut adc = PipelineAdc::build(cfg, seed).unwrap();
        let (f, _) = coherent_frequency(110e6, n, 10e6);
        let wave = Sine { a: 0.999, f };
        let codes = adc.convert_waveform(&wave, n);
        let record: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
        let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).unwrap();
        println!(
            "seed {seed}: SNR {:.1}  SNDR {:.1}  SFDR {:.1}  THD {:.1}  ENOB {:.2}  power {:.1} mW",
            a.snr_db,
            a.sndr_db,
            a.sfdr_db,
            a.thd_db,
            a.enob,
            adc.power_w() * 1e3
        );
    }
}

#[test]
#[ignore]
fn probe_linearity() {
    use adc_spectral::linearity::sine_histogram;
    let n = 1 << 20;
    for seed in [1u64, 2, 3] {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), seed).unwrap();
        let (f, _) = coherent_frequency(110e6, 1 << 20, 9.7e6);
        let wave = Sine { a: 1.02, f };
        let codes: Vec<u32> = adc
            .convert_waveform(&wave, n)
            .iter()
            .map(|&c| c as u32)
            .collect();
        let lin = sine_histogram(&codes, 4096).unwrap();
        println!(
            "seed {seed}: DNL [{:+.2}, {:+.2}]  INL [{:+.2}, {:+.2}]  missing {}",
            lin.dnl_min,
            lin.dnl_max,
            lin.inl_min,
            lin.inl_max,
            lin.missing_codes.len()
        );
    }
}
