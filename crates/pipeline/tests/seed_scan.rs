//! Developer tool: scan fabrication seeds for a golden die close to the
//! paper's Table I. Run: cargo test -p adc-pipeline --test seed_scan --release -- --nocapture --ignored

use adc_pipeline::{AdcConfig, PipelineAdc, Waveform};
use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use adc_spectral::window::coherent_frequency;

struct Sine {
    a: f64,
    f: f64,
}
impl Waveform for Sine {
    fn value(&self, t: f64) -> f64 {
        self.a * (2.0 * std::f64::consts::PI * self.f * t).sin()
    }
    fn slope(&self, t: f64) -> f64 {
        2.0 * std::f64::consts::PI
            * self.f
            * self.a
            * (2.0 * std::f64::consts::PI * self.f * t).cos()
    }
}

#[test]
#[ignore]
fn scan_seeds() {
    let n = 8192;
    let mut best = (u64::MAX, f64::MAX);
    for seed in 1u64..=48 {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), seed).unwrap();
        let p_mw = adc.power_w() * 1e3;
        let (f, _) = coherent_frequency(110e6, n, 10e6);
        let codes = adc.convert_waveform(&Sine { a: 0.999, f }, n);
        let rec: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
        let a = analyze_tone(&rec, &ToneAnalysisConfig::coherent()).unwrap();
        // Distance to Table I targets.
        let d = (a.snr_db - 67.1).powi(2)
            + (a.sndr_db - 64.2).powi(2)
            + (a.sfdr_db - 69.4).powi(2)
            + ((p_mw - 97.0) / 2.0).powi(2);
        println!(
            "seed {seed:2}: SNR {:5.1} SNDR {:5.1} SFDR {:5.1} ENOB {:5.2} P {:6.1} mW  d={d:.1}",
            a.snr_db, a.sndr_db, a.sfdr_db, a.enob, p_mw
        );
        if d < best.1 {
            best = (seed, d);
        }
    }
    println!("BEST seed {} (d={:.2})", best.0, best.1);
}
