//! Developer tool: Fig. 5 / Fig. 6 shape probes.
use adc_pipeline::{AdcConfig, PipelineAdc, Waveform};
use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};

struct Sine {
    a: f64,
    f: f64,
}
impl Waveform for Sine {
    fn value(&self, t: f64) -> f64 {
        self.a * (2.0 * std::f64::consts::PI * self.f * t).sin()
    }
    fn slope(&self, t: f64) -> f64 {
        2.0 * std::f64::consts::PI
            * self.f
            * self.a
            * (2.0 * std::f64::consts::PI * self.f * t).cos()
    }
}

fn measure(f_cr: f64, fin: f64) -> (f64, f64, f64) {
    let n = 8192;
    let cfg = AdcConfig {
        f_cr_hz: f_cr,
        ..AdcConfig::nominal_110ms()
    };
    let mut adc = PipelineAdc::build(cfg, 7).unwrap();
    let (f, _) = adc_spectral::window::coherent_frequency_clear(f_cr, n, fin, 8);
    let codes = adc.convert_waveform(&Sine { a: 0.999, f }, n);
    let rec: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
    let a = analyze_tone(&rec, &ToneAnalysisConfig::coherent()).unwrap();
    (a.snr_db, a.sndr_db, a.sfdr_db)
}

#[test]
#[ignore]
fn fig5_rate_sweep() {
    println!("rate(MS/s)  SNR  SNDR  SFDR");
    for f_cr in [
        5e6, 10e6, 20e6, 40e6, 60e6, 80e6, 100e6, 110e6, 120e6, 130e6, 140e6, 150e6, 160e6, 180e6,
        200e6,
    ] {
        let (snr, sndr, sfdr) = measure(f_cr, 10e6);
        println!(
            "{:6.0}  {:5.1}  {:5.1}  {:5.1}",
            f_cr / 1e6,
            snr,
            sndr,
            sfdr
        );
    }
}

#[test]
#[ignore]
fn fig6_fin_sweep() {
    println!("fin(MHz)  SNR  SNDR  SFDR");
    for fin in [
        1e6, 5e6, 10e6, 20e6, 30e6, 40e6, 50e6, 60e6, 80e6, 100e6, 120e6, 140e6, 150e6,
    ] {
        let (snr, sndr, sfdr) = measure(110e6, fin);
        println!("{:6.0}  {:5.1}  {:5.1}  {:5.1}", fin / 1e6, snr, sndr, sfdr);
    }
}
