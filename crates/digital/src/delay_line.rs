//! Register delay lines — the "Delay" half of the paper's Delay and
//! Correction Logic block.
//!
//! Stage i of the pipeline resolves its 1.5-bit word `i` half-clocks
//! after the input was sampled; the correction logic must delay early
//! stages' words until the flash resolves so all contributions of one
//! sample are added together. In hardware that is a per-stage shift
//! register; [`DelayLine`] is that register, cycle-accurate.

use std::collections::VecDeque;

/// A fixed-depth register delay line for small digital words.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DelayLine {
    depth: usize,
    regs: VecDeque<u8>,
}

impl DelayLine {
    /// A delay line of `depth` registers (depth 0 = wire).
    pub fn new(depth: usize) -> Self {
        Self {
            depth,
            regs: VecDeque::from(vec![0u8; depth]),
        }
    }

    /// The register depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Clocks the line: shifts `input` in, returns the word falling out
    /// (the input itself for a zero-depth line).
    pub fn clock(&mut self, input: u8) -> u8 {
        if self.depth == 0 {
            return input;
        }
        self.regs.push_back(input);
        self.regs
            .pop_front()
            .expect("depth > 0 keeps the queue full")
    }

    /// Resets all registers to zero.
    pub fn reset(&mut self) {
        for r in self.regs.iter_mut() {
            *r = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_depth_is_a_wire() {
        let mut d = DelayLine::new(0);
        assert_eq!(d.clock(7), 7);
        assert_eq!(d.clock(3), 3);
    }

    #[test]
    fn depth_n_delays_by_n_clocks() {
        let mut d = DelayLine::new(3);
        let outs: Vec<u8> = (1..=6).map(|i| d.clock(i)).collect();
        assert_eq!(outs, vec![0, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn reset_clears_contents() {
        let mut d = DelayLine::new(2);
        d.clock(9);
        d.clock(9);
        d.reset();
        assert_eq!(d.clock(1), 0);
        assert_eq!(d.clock(2), 0);
        assert_eq!(d.clock(3), 1);
    }

    #[test]
    fn depth_is_reported() {
        assert_eq!(DelayLine::new(5).depth(), 5);
    }
}
