//! # adc-digital
//!
//! Cycle-accurate model of the pipeline ADC's digital back-end — the
//! "Delay and Correction Logic" block of the paper's Fig. 1 and Fig. 7,
//! at the register-transfer level:
//!
//! * [`delay_line`] — the per-stage word re-timing shift registers;
//! * [`adder`] — the one-bit-overlap correction adder, built from
//!   explicit ripple full-adders;
//! * [`backend`] — the assembled block: per-cycle word consumption,
//!   alignment, summation, output register, plus the
//!   [`backend::SampleStream`] adapter that converts per-sample
//!   behavioral decisions into the skewed per-cycle streams real
//!   hardware sees.
//!
//! The entire path is proven bit-equivalent to the behavioral
//! `adc_pipeline::correction` model by test, including latency.
//!
//! ```
//! use adc_digital::backend::{CycleWords, DigitalBackend};
//!
//! let mut backend = DigitalBackend::new(10);
//! let words = CycleWords { stage_words: vec![1; 10], flash_word: 2 };
//! // Clock until the pipeline fills; mid-scale words produce code 2048.
//! let mut out = 0;
//! for _ in 0..=backend.latency_cycles() {
//!     out = backend.clock(&words);
//! }
//! assert!(backend.output_valid());
//! assert_eq!(out, 2048);
//! ```

pub mod adder;
pub mod backend;
pub mod decimate;
pub mod delay_line;

pub use adder::correction_sum;
pub use backend::{CycleWords, DigitalBackend, SampleStream};
pub use decimate::{boxcar_decimate, CicDecimator};
pub use delay_line::DelayLine;
