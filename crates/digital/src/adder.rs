//! The correction adder — bit-level addition of the aligned stage words
//! with one bit of overlap.
//!
//! Hardware adds the stage words as a shifted column sum:
//!
//! ```text
//!   b1  b1                          (stage 1, weight 2^10: 2-bit word)
//!       b2  b2                      (stage 2, weight 2^9)
//!           ...
//!                          b10 b10  (stage 10, weight 2^1)
//!                              f f  (flash, weight 2^0)
//! ```
//!
//! This module implements that column addition with explicit carry
//! propagation (a ripple of full adders), as the synthesized block would,
//! and proves it equivalent to the behavioral
//! [`adc_pipeline::correction::assemble_code`].

/// Adds two unsigned words bit-serially with explicit full-adder carries.
/// Exists to keep the whole correction path at the bit level (a direct
/// `+` would hide the hardware).
fn ripple_add(a: u32, b: u32, width: u32) -> u32 {
    let mut carry = 0u32;
    let mut out = 0u32;
    for bit in 0..width {
        let x = (a >> bit) & 1;
        let y = (b >> bit) & 1;
        let sum = x ^ y ^ carry;
        carry = (x & y) | (x & carry) | (y & carry);
        out |= sum << bit;
    }
    out
}

/// The full correction sum: stage words (each 0..=2, stage 1 first) plus
/// the 2-bit flash code, combined with one bit of overlap per stage.
///
/// # Panics
///
/// Panics if a stage word exceeds 2 or the flash code exceeds 3 —
/// hardware would have no encoding for those.
pub fn correction_sum(stage_words: &[u8], flash_code: u8) -> u16 {
    assert!(!stage_words.is_empty(), "need at least one stage word");
    assert!(flash_code <= 3, "flash code must be 2 bits");
    let n = stage_words.len();
    assert!(n <= 14, "width limit of the 16-bit output register");
    let mut acc = u32::from(flash_code);
    let width = (n + 3) as u32;
    for (i, &w) in stage_words.iter().enumerate() {
        assert!(w <= 2, "stage word must be 0..=2, got {w}");
        acc = ripple_add(acc, u32::from(w) << (n - i), width);
    }
    acc as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_pipeline::correction::assemble_code;
    use adc_pipeline::subconverter::StageDecision;

    #[test]
    fn ripple_add_matches_native_addition() {
        for a in [0u32, 1, 2, 37, 1023, 2048, 4095] {
            for b in [0u32, 1, 511, 4095] {
                assert_eq!(ripple_add(a, b, 14), (a + b) & ((1 << 14) - 1));
            }
        }
    }

    #[test]
    fn matches_behavioral_correction_exhaustively_small() {
        // All decision combinations of a 4-stage pipeline.
        for pattern in 0..(3u32.pow(4)) {
            let mut p = pattern;
            let mut words = Vec::new();
            let mut decisions = Vec::new();
            for _ in 0..4 {
                let w = (p % 3) as u8;
                p /= 3;
                words.push(w);
                decisions.push(StageDecision {
                    dac_level: w as i8 - 1,
                });
            }
            for flash in 0..=3u8 {
                assert_eq!(
                    u32::from(correction_sum(&words, flash)),
                    assemble_code(&decisions, flash),
                    "words {words:?} flash {flash}"
                );
            }
        }
    }

    #[test]
    fn sum_never_overflows_twelve_bits_for_ten_stages() {
        // Max: all words 2, flash 3 -> 4095. The adder needs no clamp.
        assert_eq!(correction_sum(&[2u8; 10], 3), 4095);
        assert_eq!(correction_sum(&[0u8; 10], 0), 0);
    }

    #[test]
    #[should_panic(expected = "0..=2")]
    fn rejects_illegal_stage_word() {
        let _ = correction_sum(&[3u8], 0);
    }
}
