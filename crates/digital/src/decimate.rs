//! Decimation filtering — the processing-gain path an SoC hangs behind a
//! rate-scalable ADC.
//!
//! Because the paper's converter runs anywhere from 20 to 140 MS/s at
//! constant ENOB, an integrator can clock it *faster than the signal
//! needs* and decimate: each octave of oversampling plus ideal filtering
//! buys ~3 dB of in-band SNR. This module provides the standard hardware
//! shapes: a cascaded integrator–comb (CIC) decimator (multiplier-free,
//! as real front-end silicon uses) and a simple boxcar average for
//! reference.

/// A cascaded integrator–comb decimator of order `n` and rate factor `r`
/// (differential delay 1), operating on f64 samples (reconstructed codes).
///
/// ```
/// use adc_digital::decimate::CicDecimator;
/// let mut cic = CicDecimator::new(3, 4);
/// let out = cic.process_record(&vec![0.5; 64]);
/// assert_eq!(out.len(), 16);
/// assert!((out.last().unwrap() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CicDecimator {
    order: usize,
    factor: usize,
    integrators: Vec<f64>,
    combs: Vec<f64>,
    phase: usize,
}

impl CicDecimator {
    /// Creates an order-`order`, decimate-by-`factor` CIC.
    ///
    /// # Panics
    ///
    /// Panics for order 0 or factor < 2.
    pub fn new(order: usize, factor: usize) -> Self {
        assert!(order > 0, "order must be at least 1");
        assert!(factor >= 2, "decimation factor must be at least 2");
        Self {
            order,
            factor,
            integrators: vec![0.0; order],
            combs: vec![0.0; order],
            phase: 0,
        }
    }

    /// The DC gain of the filter (`factor^order`); divide outputs by this
    /// to restore scale.
    pub fn dc_gain(&self) -> f64 {
        (self.factor as f64).powi(self.order as i32)
    }

    /// Pushes one input sample; returns a (gain-normalised) output sample
    /// once per `factor` inputs.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        // Integrator chain at the input rate.
        let mut v = x;
        for acc in &mut self.integrators {
            *acc += v;
            v = *acc;
        }
        self.phase += 1;
        if self.phase < self.factor {
            return None;
        }
        self.phase = 0;
        // Comb chain at the output rate.
        let mut y = v;
        for prev in &mut self.combs {
            let diff = y - *prev;
            *prev = y;
            y = diff;
        }
        Some(y / self.dc_gain())
    }

    /// Decimates a whole record.
    pub fn process_record(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.integrators.iter_mut().for_each(|v| *v = 0.0);
        self.combs.iter_mut().for_each(|v| *v = 0.0);
        self.phase = 0;
    }
}

/// Plain boxcar (moving-average + drop) decimator — the order-1 CIC,
/// spelled out for reference and testing.
pub fn boxcar_decimate(xs: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor >= 2, "decimation factor must be at least 2");
    xs.chunks_exact(factor)
        .map(|c| c.iter().sum::<f64>() / factor as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_passes_at_unity() {
        let mut cic = CicDecimator::new(3, 4);
        let out = cic.process_record(&vec![0.7; 64]);
        // After the filter fills, outputs equal the DC input.
        assert!((out.last().unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn output_rate_is_input_over_factor() {
        let mut cic = CicDecimator::new(2, 8);
        let out = cic.process_record(&vec![1.0; 256]);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn order_one_cic_equals_boxcar() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut cic = CicDecimator::new(1, 4);
        let a = cic.process_record(&xs);
        let b = boxcar_decimate(&xs, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn near_nyquist_tones_are_attenuated() {
        // A tone near the input Nyquist aliases into the output band but
        // lands in a CIC null's neighbourhood: it must come out strongly
        // attenuated relative to a low-frequency tone.
        let n = 4096;
        let factor = 8;
        let low: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 13.0 * i as f64 / n as f64).sin())
            .collect();
        let hi: Vec<f64> = (0..n)
            .map(|i| {
                // Near the first CIC null at fs/factor.
                (2.0 * std::f64::consts::PI * (n as f64 / factor as f64 + 13.0) * i as f64
                    / n as f64)
                    .sin()
            })
            .collect();
        let rms = |xs: &[f64]| (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt();
        let mut cic = CicDecimator::new(3, factor);
        let low_out = cic.process_record(&low);
        cic.reset();
        let hi_out = cic.process_record(&hi);
        assert!(
            rms(&hi_out[4..]) < rms(&low_out[4..]) / 30.0,
            "hi {} vs low {}",
            rms(&hi_out[4..]),
            rms(&low_out[4..])
        );
    }

    #[test]
    fn decimation_buys_processing_gain_on_white_noise() {
        // White noise in, decimate by 16 with a 3rd-order CIC: the output
        // noise power drops by roughly the factor (minus the CIC's
        // in-band droop).
        let mut state = 99u64;
        let xs: Vec<f64> = (0..1 << 16)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let in_power = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        let mut cic = CicDecimator::new(3, 16);
        let ys = cic.process_record(&xs);
        let out_power = ys[8..].iter().map(|y| y * y).sum::<f64>() / (ys.len() - 8) as f64;
        let gain_db = 10.0 * (in_power / out_power).log10();
        // Ideal: 10·log10(16) = 12 dB; CIC passband shape gives a bit
        // more for white noise (it attenuates the band edges too).
        assert!(gain_db > 10.0, "gain {gain_db}");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_unit_factor() {
        let _ = CicDecimator::new(2, 1);
    }
}
