//! The complete cycle-accurate digital back-end.
//!
//! Timing model: the analog chain hands stage i's word for input sample
//! `k` to the digital domain at half-clock `2k + i + 1`. The back-end
//! runs at the conversion clock (one [`DigitalBackend::clock`] call per
//! cycle), re-times every stage's stream through a [`DelayLine`] so all
//! contributions of one sample meet at the correction adder, and
//! registers the summed code at D_OUT.
//!
//! [`DigitalBackend::latency_cycles`] matches the behavioral
//! `adc_pipeline::correction::latency_samples`, and the bit-equivalence
//! of the whole path to the behavioral model is pinned by tests.

use crate::adder::correction_sum;
use crate::delay_line::DelayLine;

/// The words the analog chain produces during one conversion cycle:
/// each stage's freshly resolved word (belonging to *different* input
/// samples — that is the point of the delay block) plus the flash code.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CycleWords {
    /// Stage words b ∈ {0, 1, 2}, stage 1 first.
    pub stage_words: Vec<u8>,
    /// The 2-bit flash word.
    pub flash_word: u8,
}

/// The cycle-accurate Delay and Correction Logic block.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DigitalBackend {
    lines: Vec<DelayLine>,
    flash_line: DelayLine,
    output_register: u16,
    cycles_run: usize,
    stage_count: usize,
}

impl DigitalBackend {
    /// Builds the block for an `n`-stage pipeline.
    ///
    /// Stage i (1-based) resolves at half-clock `2k + i + 1` for sample
    /// k (cycle `k + ⌊(i+1)/2⌋`); the flash resolves at `2k + n + 2`
    /// (cycle `k + ⌊(n+2)/2⌋`). Each stage line is sized so every word
    /// of one sample meets the flash's cycle, then one output register
    /// follows.
    ///
    /// # Panics
    ///
    /// Panics for a zero-stage pipeline.
    pub fn new(stage_count: usize) -> Self {
        assert!(stage_count > 0, "need at least one stage");
        let flash_cycle = (stage_count + 2) / 2;
        let lines = (1..=stage_count)
            .map(|i| DelayLine::new(flash_cycle - i.div_ceil(2)))
            .collect();
        Self {
            lines,
            flash_line: DelayLine::new(0),
            output_register: 0,
            cycles_run: 0,
            stage_count,
        }
    }

    /// Cycles from a sample being taken to its code appearing at D_OUT:
    /// the deepest delay line plus the sample-to-first-word half-cycle
    /// plus the output register.
    pub fn latency_cycles(&self) -> usize {
        self.lines[0].depth() + 2
    }

    /// Runs one conversion clock: consumes this cycle's words, returns
    /// the registered output code (garbage until [`Self::latency_cycles`]
    /// cycles have run — track with [`Self::output_valid`]).
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match the stage count.
    pub fn clock(&mut self, words: &CycleWords) -> u16 {
        assert_eq!(
            words.stage_words.len(),
            self.stage_count,
            "stage word count mismatch"
        );
        let aligned: Vec<u8> = self
            .lines
            .iter_mut()
            .zip(&words.stage_words)
            .map(|(line, &w)| line.clock(w))
            .collect();
        let flash = self.flash_line.clock(words.flash_word);
        let out = self.output_register;
        self.output_register = correction_sum(&aligned, flash);
        self.cycles_run += 1;
        out
    }

    /// Whether the output register carries a real code yet.
    pub fn output_valid(&self) -> bool {
        self.cycles_run >= self.latency_cycles()
    }

    /// Resets all registers.
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            l.reset();
        }
        self.flash_line.reset();
        self.output_register = 0;
        self.cycles_run = 0;
    }
}

/// Adapter: plays per-*sample* raw conversions (as the behavioral
/// [`adc_pipeline::converter::PipelineAdc::convert_held_raw`] produces
/// them) into the per-*cycle* word streams the hardware sees, with the
/// correct per-stage skew.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SampleStream {
    /// Per-stage FIFOs of words awaiting their production cycle.
    skew_fifos: Vec<std::collections::VecDeque<u8>>,
    flash_fifo: std::collections::VecDeque<u8>,
    stage_count: usize,
}

impl SampleStream {
    /// Creates the adapter for an `n`-stage pipeline.
    pub fn new(stage_count: usize) -> Self {
        assert!(stage_count > 0);
        let mut skew_fifos = Vec::with_capacity(stage_count);
        for i in 1..=stage_count {
            // Stage i's word for sample k is produced at half-clock
            // 2k + i + 1, i.e. ⌊(i+1)/2⌋ cycles after the sample:
            // pre-fill that many placeholder words.
            let skew = i.div_ceil(2);
            skew_fifos.push(std::collections::VecDeque::from(vec![0u8; skew]));
        }
        let flash_skew = (stage_count + 2) / 2;
        Self {
            skew_fifos,
            flash_fifo: std::collections::VecDeque::from(vec![0u8; flash_skew]),
            stage_count,
        }
    }

    /// Pushes one sample's raw words; pops the words the hardware sees
    /// *this* cycle.
    ///
    /// # Panics
    ///
    /// Panics if the decision count mismatches the stage count.
    pub fn push(&mut self, dac_levels: &[i8], flash_code: u8) -> CycleWords {
        assert_eq!(dac_levels.len(), self.stage_count);
        let mut stage_words = Vec::with_capacity(self.stage_count);
        for (fifo, &d) in self.skew_fifos.iter_mut().zip(dac_levels) {
            fifo.push_back((d + 1) as u8);
            stage_words.push(fifo.pop_front().expect("pre-filled"));
        }
        self.flash_fifo.push_back(flash_code);
        let flash_word = self.flash_fifo.pop_front().expect("pre-filled");
        CycleWords {
            stage_words,
            flash_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_pipeline::correction::assemble_code;
    use adc_pipeline::subconverter::StageDecision;

    /// Drives random per-sample decisions through the skew adapter and
    /// the RTL backend; checks codes match the behavioral correction,
    /// sample for sample.
    #[test]
    fn rtl_backend_is_bit_equivalent_to_behavioral_correction() {
        let n = 10;
        let mut backend = DigitalBackend::new(n);
        let mut stream = SampleStream::new(n);
        // Deterministic pseudo-random decisions.
        let mut state = 0xFEEDu64;
        let mut rand3 = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 3) as i8 - 1
        };
        let samples = 300;
        let mut expected = Vec::new();
        let mut produced = Vec::new();
        // The total delay: adapter skew + backend latency. Run extra
        // cycles with idle input to flush.
        let flush = 16;
        let mut all_levels = Vec::new();
        for _ in 0..samples {
            let levels: Vec<i8> = (0..n).map(|_| rand3()).collect();
            let flash = (levels.iter().map(|&d| d as i32).sum::<i32>().rem_euclid(4)) as u8;
            let decisions: Vec<StageDecision> = levels
                .iter()
                .map(|&dac_level| StageDecision { dac_level })
                .collect();
            expected.push(assemble_code(&decisions, flash) as u16);
            all_levels.push((levels, flash));
        }
        for (levels, flash) in &all_levels {
            let words = stream.push(levels, *flash);
            let out = backend.clock(&words);
            if backend.output_valid() {
                produced.push(out);
            }
        }
        for _ in 0..flush {
            let words = stream.push(&vec![0i8; n], 0);
            let out = backend.clock(&words);
            produced.push(out);
        }
        // The produced stream, offset by total latency, equals expected.
        assert!(produced.len() >= samples);
        let offset = produced
            .windows(4)
            .position(|w| w == &expected[..4])
            .expect("expected stream must appear in the output");
        for (i, &e) in expected.iter().enumerate().take(samples - 1) {
            assert_eq!(produced[offset + i], e, "sample {i}");
        }
    }

    #[test]
    fn latency_matches_behavioral_model() {
        let backend = DigitalBackend::new(10);
        assert_eq!(
            backend.latency_cycles(),
            adc_pipeline::correction::latency_samples(10)
        );
    }

    #[test]
    fn odd_stage_counts_also_align() {
        // Same equivalence check for a 5-stage pipeline (alignment
        // arithmetic differs between odd and even stage counts).
        let n = 5;
        let mut backend = DigitalBackend::new(n);
        let mut stream = SampleStream::new(n);
        let mut state = 0xBEEFu64;
        let mut rand3 = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 3) as i8 - 1
        };
        let mut expected = Vec::new();
        let mut produced = Vec::new();
        for _ in 0..100 {
            let levels: Vec<i8> = (0..n).map(|_| rand3()).collect();
            let flash = 1u8;
            let decisions: Vec<StageDecision> = levels
                .iter()
                .map(|&dac_level| StageDecision { dac_level })
                .collect();
            expected.push(assemble_code(&decisions, flash) as u16);
            let words = stream.push(&levels, flash);
            let out = backend.clock(&words);
            if backend.output_valid() {
                produced.push(out);
            }
        }
        for _ in 0..16 {
            let words = stream.push(&vec![0i8; n], 0);
            produced.push(backend.clock(&words));
        }
        let offset = produced
            .windows(4)
            .position(|w| w == &expected[..4])
            .expect("expected stream appears");
        for (i, &e) in expected.iter().enumerate().take(90) {
            assert_eq!(produced[offset + i], e, "sample {i}");
        }
    }

    #[test]
    fn output_invalid_until_pipeline_fills() {
        let mut backend = DigitalBackend::new(10);
        let words = CycleWords {
            stage_words: vec![1; 10],
            flash_word: 2,
        };
        for _ in 0..backend.latency_cycles() {
            assert!(!backend.output_valid());
            let _ = backend.clock(&words);
        }
        assert!(backend.output_valid());
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut backend = DigitalBackend::new(4);
        let words = CycleWords {
            stage_words: vec![2; 4],
            flash_word: 3,
        };
        for _ in 0..8 {
            let _ = backend.clock(&words);
        }
        backend.reset();
        assert!(!backend.output_valid());
        assert_eq!(backend.clock(&words), 0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_wrong_word_count() {
        let mut backend = DigitalBackend::new(10);
        let words = CycleWords {
            stage_words: vec![1; 4],
            flash_word: 0,
        };
        let _ = backend.clock(&words);
    }
}
