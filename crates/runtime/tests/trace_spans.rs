//! Tracing through the campaign engine: span nesting and ordering under
//! a real 2-thread [`adc_runtime::Campaign`], and the determinism of
//! span identity across reruns.
//!
//! The collector is process-global, so the tests in this binary share
//! one mutex — each installs its own session.

use std::sync::Mutex;

use adc_runtime::{Campaign, JobError};
use adc_trace::{Collector, EventKind, Trace};

static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

const JOBS: u64 = 8;

/// Runs a 2-thread campaign whose jobs open their own nested spans
/// inside the engine's per-job span, and drains the trace.
fn traced_campaign() -> Trace {
    let session = Collector::install().expect("no collector active");
    let values = Campaign::new("trace-probe", 0xADC)
        .jobs(0..JOBS)
        .threads(2)
        .run(|ctx, &job| {
            let _outer = adc_trace::span_with("work", job);
            for _ in 0..3 {
                let _inner = adc_trace::span("step");
            }
            ctx.record_samples(64);
            Ok::<_, JobError>(job)
        })
        .into_result()
        .expect("campaign runs");
    assert_eq!(values, (0..JOBS).collect::<Vec<_>>());
    session.finish()
}

#[test]
fn spans_nest_and_balance_on_every_lane() {
    let _guard = lock();
    let trace = traced_campaign();

    for (lane_idx, lane) in trace.lanes.iter().enumerate() {
        let mut stack: Vec<u64> = Vec::new();
        let mut last_ts = 0u64;
        for event in lane {
            assert!(
                event.ts_ns >= last_ts,
                "lane {lane_idx} timestamps must be monotonic"
            );
            last_ts = event.ts_ns;
            match event.kind {
                EventKind::Begin => stack.push(event.span_id),
                EventKind::End => {
                    // Guards drop in reverse creation order, so closes
                    // are strictly LIFO within a lane.
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("lane {lane_idx}: End of {} with no open span", event.name)
                    });
                    assert_eq!(
                        open, event.span_id,
                        "lane {lane_idx}: {} closed out of order",
                        event.name
                    );
                }
                EventKind::Instant | EventKind::Counter => {}
            }
        }
        assert!(
            stack.is_empty(),
            "lane {lane_idx}: {} span(s) never closed",
            stack.len()
        );
    }
}

#[test]
fn engine_opens_one_job_span_per_job_around_the_worker() {
    let _guard = lock();
    let trace = traced_campaign();
    let merged = trace.merged();

    // One engine-side "job" span per job, carrying the job id.
    let mut job_ids: Vec<u64> = merged
        .iter()
        .filter(|(_, e)| e.kind == EventKind::Begin && e.name == "job")
        .map(|(_, e)| e.value)
        .collect();
    job_ids.sort_unstable();
    assert_eq!(job_ids, (0..JOBS).collect::<Vec<_>>());

    // The worker's own spans sit inside it: per lane, every "work"
    // Begin appears while a "job" span is open.
    for lane in &trace.lanes {
        let mut jobs_open = 0u32;
        for event in lane {
            match (event.kind, event.name) {
                (EventKind::Begin, "job") => jobs_open += 1,
                (EventKind::End, "job") => jobs_open -= 1,
                (EventKind::Begin, "work") => {
                    assert!(jobs_open > 0, "worker span outside the engine's job span")
                }
                _ => {}
            }
        }
    }

    // record_samples feeds the trace counter too.
    let samples: u64 = merged
        .iter()
        .filter(|(_, e)| e.kind == EventKind::Counter && e.name == "samples")
        .map(|(_, e)| e.value)
        .sum();
    assert_eq!(samples, JOBS * 64);
}

#[test]
fn span_identity_is_reproducible_across_runs_and_schedules() {
    let _guard = lock();
    let ids = |trace: &Trace| -> Vec<(&'static str, u64, u64)> {
        let mut v: Vec<_> = trace
            .merged()
            .iter()
            .filter(|(_, e)| e.kind == EventKind::Begin)
            .map(|(_, e)| (e.name, e.span_id, e.value))
            .collect();
        // Lane assignment is scheduling-dependent; span identity is not.
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&traced_campaign()), ids(&traced_campaign()));
}

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COLLECTOR_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
