//! Golden-key regression pins for [`canonical_key`].
//!
//! Cache keys are FNV-1a hashes of `Debug` renderings. That makes them
//! cheap and total, but it also means an *accidental* change to how a
//! config renders — a field rename, a reorder, a future change to
//! Rust's float `Debug` formatting — silently changes every key. The
//! failure mode is not a crash: every on-disk and remote cache entry
//! quietly misses (wasted fleet-hours), or, far worse, two different
//! configs alias to one rendering and a campaign serves the wrong
//! cached numerics. This table pins the exact u64 outputs for a fixed
//! set of canonical inputs so any such drift fails loudly here first.
//!
//! If this test fails because you *intentionally* changed the key
//! schema (e.g. bumped [`NUMERICS_EPOCH`]), recompute the table and say
//! so in the commit — every cached artifact in every deployment is
//! invalidated at that moment.

use adc_runtime::{canonical_key, canonical_key_str, NUMERICS_EPOCH};

/// A stand-in for the workspace's plain-data sweep configs; its `Debug`
/// rendering shape (`Cfg { field: value, .. }`) is part of what the
/// golden values pin.
#[derive(Debug)]
#[allow(dead_code)]
struct Cfg {
    f_cr_hz: f64,
    amplitude_v: f64,
    thermal: bool,
}

/// Golden `(campaign, rendered config, key)` rows, computed at
/// `NUMERICS_EPOCH == 3`. The rendered form is exactly what
/// `format!("{config:?}")` produces for the typed values exercised in
/// [`typed_and_string_keys_match_goldens`].
const GOLDEN: &[(&str, &str, u64)] = &[
    ("monte_carlo", "1", 0x397c930b82637c11),
    ("monte_carlo", "7", 0x397c950b82637f77),
    ("fig5-rate", "(110000000.0, 4096)", 0xf6bfc77cfa12e873),
    (
        "sweep",
        "Cfg { f_cr_hz: 110000000.0, amplitude_v: 0.98, thermal: true }",
        0x3ab50c4c1e867bf4,
    ),
    (
        "die-tone-metrics",
        "(0, 10000000.0, 4096, 3)",
        0xfe90999a3275273e,
    ),
];

#[test]
fn golden_keys_are_pinned() {
    assert_eq!(
        NUMERICS_EPOCH, 3,
        "epoch changed: recompute the golden table (all caches invalidate)"
    );
    for &(campaign, rendered, key) in GOLDEN {
        assert_eq!(
            canonical_key_str(campaign, rendered),
            key,
            "key drift for campaign {campaign:?} config {rendered:?}"
        );
    }
}

/// The typed path must agree with the string path on the same logical
/// config — this is the invariant that lets remote hosts (which only
/// ever see rendered configs) share a cache namespace with in-process
/// runs (which hash typed values).
#[test]
fn typed_and_string_keys_match_goldens() {
    assert_eq!(canonical_key("monte_carlo", &1u64), GOLDEN[0].2);
    assert_eq!(canonical_key("monte_carlo", &7u64), GOLDEN[1].2);
    assert_eq!(
        canonical_key("fig5-rate", &(110_000_000.0f64, 4096u64)),
        GOLDEN[2].2
    );
    assert_eq!(
        canonical_key(
            "sweep",
            &Cfg {
                f_cr_hz: 110e6,
                amplitude_v: 0.98,
                thermal: true,
            }
        ),
        GOLDEN[3].2
    );
    assert_eq!(
        canonical_key("die-tone-metrics", &(0u64, 10e6, 4096u64, 3u64)),
        GOLDEN[4].2
    );
}

/// No two golden rows alias — a sanity floor under the "aliasing is
/// worse than missing" concern.
#[test]
fn golden_keys_are_distinct() {
    for (i, a) in GOLDEN.iter().enumerate() {
        for b in GOLDEN.iter().skip(i + 1) {
            assert_ne!(a.2, b.2, "{:?} aliases {:?}", (a.0, a.1), (b.0, b.1));
        }
    }
}
