//! Job identity, outcomes, and per-job execution context.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::seed::derive_seed;

/// Stable identity of one job inside a campaign.
///
/// Ids number the campaign's jobs `0..n` in submission order and never
/// depend on scheduling, so a job's derived seed — and therefore its
/// result — is a pure function of `(campaign_seed, JobId)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The worker returned an application-level failure.
    Failed(String),
    /// The worker panicked; the payload is the panic message. The panic
    /// was confined to the job — sibling jobs and the pool survive.
    Panicked(String),
    /// The job observed its deadline (cooperatively, via
    /// [`JobCtx::timed_out`]) and gave up.
    TimedOut,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Failed(msg) => write!(f, "failed: {msg}"),
            Self::Panicked(msg) => write!(f, "panicked: {msg}"),
            Self::TimedOut => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for JobError {}

/// What one finished job reports to observers.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's stable id.
    pub id: JobId,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall time of the final attempt.
    pub wall: Duration,
    /// Samples the worker recorded via [`JobCtx::record_samples`]
    /// (drives campaign throughput accounting).
    pub samples: u64,
    /// Logical client requests the worker completed, recorded via
    /// [`JobCtx::record_requests`]. Ordinary jobs record 1; a coalesced
    /// serving batch records one per member it actually served; 0 means
    /// the worker recorded none (rejected, failed, or a non-serving
    /// job).
    pub requests: u64,
    /// `None` on success, the terminal error otherwise.
    pub error: Option<JobError>,
}

/// Execution context handed to the worker closure for each attempt.
#[derive(Debug)]
pub struct JobCtx {
    /// The job's stable id.
    pub id: JobId,
    /// Seed derived from `(campaign_seed, id)` with SplitMix64 mixing —
    /// identical whatever thread or order runs the job.
    pub seed: u64,
    /// The attempt number, starting at 1.
    pub attempt: u32,
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    samples: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
}

impl JobCtx {
    pub(crate) fn new(
        campaign_seed: u64,
        id: JobId,
        attempt: u32,
        timeout: Option<Duration>,
        cancelled: Arc<AtomicBool>,
    ) -> Self {
        Self {
            id,
            seed: derive_seed(campaign_seed, id.0),
            attempt,
            // adc-lint: allow(no-wallclock) reason="deadline arming; a timeout aborts a job, it never alters a completed result"
            deadline: timeout.map(|t| Instant::now() + t),
            cancelled,
            samples: Arc::new(AtomicU64::new(0)),
            requests: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A standalone context (tests, serial fallbacks).
    pub fn standalone(campaign_seed: u64, id: JobId) -> Self {
        Self::new(campaign_seed, id, 1, None, Arc::new(AtomicBool::new(false)))
    }

    /// A context with the same deadline, cancel flag, and sample counter
    /// as `self` but a different identity — used when a cached campaign
    /// dispatches only its misses and must hand each worker the seed its
    /// *original* id derives, not the dense miss index.
    pub(crate) fn reassign(&self, campaign_seed: u64, id: JobId) -> Self {
        Self {
            id,
            seed: derive_seed(campaign_seed, id.0),
            attempt: self.attempt,
            deadline: self.deadline,
            cancelled: Arc::clone(&self.cancelled),
            samples: Arc::clone(&self.samples),
            requests: Arc::clone(&self.requests),
        }
    }

    /// `true` once the job's deadline has passed. Long-running workers
    /// should poll this at convenient boundaries (per die, per sweep
    /// point) and return [`JobError::TimedOut`]; the runtime cannot
    /// preempt a compute-bound thread without forfeiting determinism.
    pub fn timed_out(&self) -> bool {
        // adc-lint: allow(no-wallclock) reason="deadline polling; a timeout aborts a job, it never alters a completed result"
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` once the campaign has been cancelled as a whole.
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Credits `n` simulation samples to this job (throughput metric).
    pub fn record_samples(&self, n: u64) {
        self.samples.fetch_add(n, Ordering::Relaxed);
        // Mirror into the trace stream so the profile summary can
        // report samples/sec (no-op when tracing is disabled).
        adc_trace::counter("samples", n);
    }

    pub(crate) fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Credits `n` logical client requests to this job. Serving-layer
    /// jobs call this once per request they complete so a coalesced
    /// batch is accounted as its member count, not as one job.
    pub fn record_requests(&self, n: u64) {
        self.requests.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_a_pure_function_of_campaign_and_id() {
        let a = JobCtx::standalone(42, JobId(3));
        let b = JobCtx::standalone(42, JobId(3));
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, JobCtx::standalone(42, JobId(4)).seed);
        assert_ne!(a.seed, JobCtx::standalone(43, JobId(3)).seed);
    }

    #[test]
    fn no_deadline_never_times_out() {
        let ctx = JobCtx::standalone(1, JobId(0));
        assert!(!ctx.timed_out());
        assert!(!ctx.cancelled());
    }

    #[test]
    fn expired_deadline_times_out() {
        let ctx = JobCtx::new(
            1,
            JobId(0),
            1,
            Some(Duration::ZERO),
            Arc::new(AtomicBool::new(false)),
        );
        std::thread::sleep(Duration::from_millis(1));
        assert!(ctx.timed_out());
    }

    #[test]
    fn samples_accumulate() {
        let ctx = JobCtx::standalone(1, JobId(0));
        ctx.record_samples(100);
        ctx.record_samples(24);
        assert_eq!(ctx.samples(), 124);
    }
}
