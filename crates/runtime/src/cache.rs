//! Content-hash result caching.
//!
//! A campaign job is a pure function of its canonical configuration, so
//! its result can be keyed by a hash of that configuration and reused
//! across runs: re-running a figure binary after editing one sweep point
//! recomputes only that point. Keys are FNV-1a hashes of a canonical
//! serialization ([`canonical_key`] uses the `Debug` rendering, which
//! for the workspace's plain-data config types lists every field in
//! declaration order); values round-trip through the line-oriented
//! [`CacheCodec`], which encodes floats as IEEE-754 bit patterns so a
//! cache hit is *bit-identical* to the computation it replaced.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Version of the workspace's simulation numerics, folded into every
/// cache key.
///
/// A cached result is bit-identical to the computation it replaced
/// *only while the computation itself is unchanged*. Configuration
/// changes are already captured by the config hash, but a kernel
/// change — a refactor that reorders floating-point operations or
/// merges RNG draws — changes results under the *same* config, and a
/// stale cache would silently serve the old numerics. Any PR that
/// changes conversion or spectral numerics (even within documented
/// noise floors) must bump this constant so every persisted entry
/// misses and recomputes.
///
/// History: 1 = original per-stage sequential-draw kernels; 2 = planned
/// kernels (hoisted settling/reference/noise plans with merged
/// per-stage Gaussian draws, batched waveform sampling, planned
/// real-input FFT); 3 = lane-parallel SoA kernels (per-sample hot
/// draws split onto a dedicated SplitMix64 `SampleNoise` stream forked
/// from the die seed, select-form settling tail) — same documented
/// noise model, different realizations.
pub const NUMERICS_EPOCH: u32 = 3;

/// Hashes a job configuration's canonical serialization.
///
/// The canonical form is the `Debug` rendering: for the plain-data
/// configs used in campaigns it is a total, deterministic, field-order
/// serialization, and any change to any field changes the key. Pair it
/// with a campaign-name salt so identical configs in different
/// campaigns do not collide. The [`NUMERICS_EPOCH`] is folded in so a
/// kernel-numerics change invalidates every previously persisted
/// entry.
pub fn canonical_key<C: Debug>(campaign: &str, config: &C) -> u64 {
    let canon = format!("epoch{NUMERICS_EPOCH}\u{1f}{campaign}\u{1f}{config:?}");
    fnv1a(canon.as_bytes())
}

/// [`canonical_key`] over a *pre-rendered* canonical form.
///
/// Remote hosts receive job configurations as strings (the wire cannot
/// carry arbitrary `Debug` types), so they need to key the shared cache
/// from the rendered form alone. This hashes exactly the bytes
/// `canonical_key` would hash when `config_debug ==
/// format!("{config:?}")` — the invariant that lets a cluster peer, a
/// local on-disk cache, and an in-process run all address one
/// namespace.
pub fn canonical_key_str(campaign: &str, config_debug: &str) -> u64 {
    let canon = format!("epoch{NUMERICS_EPOCH}\u{1f}{campaign}\u{1f}{config_debug}");
    fnv1a(canon.as_bytes())
}

/// The header comment stamped at the top of every persisted cache file,
/// recording which [`NUMERICS_EPOCH`] wrote it. Keys are epoch-salted,
/// so stale-epoch entries can never *hit* — the header exists so cache
/// hygiene tooling (`cache_tool`) can identify and garbage-collect
/// files full of permanently dead entries.
pub fn epoch_header() -> String {
    format!("# adc-cache epoch {NUMERICS_EPOCH}")
}

/// Parses the epoch out of a cache-file header line, if `line` is one.
///
/// Returns `None` for data lines and for files predating the header
/// (whose entries may still be current — their keys carry the salt).
pub fn parse_epoch_header(line: &str) -> Option<u32> {
    line.strip_prefix("# adc-cache epoch ")
        .and_then(|rest| rest.trim().parse().ok())
}

/// Bit-exact, line-oriented value encoding for cache persistence.
pub trait CacheCodec: Sized {
    /// Encodes the value on one line (no `\n`).
    fn encode(&self) -> String;
    /// Decodes a line produced by [`CacheCodec::encode`].
    fn decode(line: &str) -> Option<Self>;
}

impl CacheCodec for f64 {
    fn encode(&self) -> String {
        format!("{:016x}", self.to_bits())
    }
    fn decode(line: &str) -> Option<Self> {
        u64::from_str_radix(line.trim(), 16)
            .ok()
            .map(f64::from_bits)
    }
}

impl CacheCodec for u64 {
    fn encode(&self) -> String {
        self.to_string()
    }
    fn decode(line: &str) -> Option<Self> {
        line.trim().parse().ok()
    }
}

macro_rules! codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: CacheCodec),+> CacheCodec for ($($name,)+) {
            fn encode(&self) -> String {
                let parts = [$(self.$idx.encode()),+];
                parts.join(",")
            }
            fn decode(line: &str) -> Option<Self> {
                let mut parts = line.split(',');
                let value = ($($name::decode(parts.next()?)?,)+);
                if parts.next().is_some() {
                    return None;
                }
                Some(value)
            }
        }
    };
}

codec_tuple!(A: 0, B: 1);
codec_tuple!(A: 0, B: 1, C: 2);
codec_tuple!(A: 0, B: 1, C: 2, D: 3);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<T: CacheCodec> CacheCodec for Vec<T> {
    fn encode(&self) -> String {
        self.iter().map(T::encode).collect::<Vec<_>>().join(";")
    }
    fn decode(line: &str) -> Option<Self> {
        if line.is_empty() {
            return Some(Vec::new());
        }
        line.split(';').map(T::decode).collect()
    }
}

/// A content-addressed result store: in-memory, optionally mirrored to
/// a directory of `<campaign>.cache` files (`key<TAB>value` lines).
/// Backed by a `BTreeMap`, so persistence iterates in key order with
/// no hash-seed dependence — a written cache file is byte-stable.
#[derive(Debug, Default)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<BTreeMap<u64, String>>,
}

impl ResultCache {
    /// Acquires the store, recovering from poisoning: a poisoned lock
    /// only means another thread panicked mid-operation, and every
    /// operation here leaves the map itself valid (single `insert` /
    /// `get` calls), so the data is safe to keep using. This keeps the
    /// cache panic-free by construction — a worker panic can never
    /// cascade into a cache panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, String>> {
        self.mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A process-local cache with no persistence.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A cache mirrored to `dir` (created if absent). Each campaign
    /// persists to its own file, loaded lazily on first use.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn on_disk<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: Some(dir.as_ref().to_path_buf()),
            mem: Mutex::new(BTreeMap::new()),
        })
    }

    fn campaign_file(&self, campaign: &str) -> Option<PathBuf> {
        let safe: String = campaign
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.as_ref().map(|d| d.join(format!("{safe}.cache")))
    }

    /// Loads a campaign's persisted entries into memory (idempotent).
    pub fn preload(&self, campaign: &str) {
        let Some(path) = self.campaign_file(campaign) else {
            return;
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return;
        };
        let mut mem = self.lock();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            if let Some((key, value)) = line.split_once('\t') {
                if let Ok(key) = key.parse::<u64>() {
                    mem.entry(key).or_insert_with(|| value.to_string());
                }
            }
        }
    }

    /// Looks up a previously stored value.
    pub fn get<T: CacheCodec>(&self, key: u64) -> Option<T> {
        let mem = self.lock();
        mem.get(&key).and_then(|line| T::decode(line))
    }

    /// Stores a value under `key`.
    pub fn put<T: CacheCodec>(&self, key: u64, value: &T) {
        let mut mem = self.lock();
        mem.insert(key, value.encode());
    }

    /// Looks up the raw encoded line under `key`, without decoding.
    ///
    /// The cluster layer moves values between hosts in their encoded
    /// form (the same bytes the codec persists), so cache merges are
    /// bit-exact by construction — no decode/re-encode round trip.
    pub fn get_line(&self, key: u64) -> Option<String> {
        let mem = self.lock();
        mem.get(&key).cloned()
    }

    /// Stores an already-encoded line under `key`, keeping any existing
    /// entry: under the canonical-key contract two writers for one key
    /// hold bit-identical values, so first-writer-wins is a free
    /// at-most-once-apply guarantee.
    pub fn put_line(&self, key: u64, line: &str) {
        let mut mem = self.lock();
        mem.entry(key).or_insert_with(|| line.to_string());
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes a campaign's in-memory entries back to its file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a no-op for in-memory caches.
    pub fn persist(&self, campaign: &str) -> io::Result<()> {
        let Some(path) = self.campaign_file(campaign) else {
            return Ok(());
        };
        let mem = self.lock();
        let mut out = epoch_header();
        out.push('\n');
        for (key, value) in mem.iter() {
            out.push_str(&format!("{key}\t{value}\n"));
        }
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_key_changes_with_any_field() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Cfg {
            a: f64,
            b: u64,
        }
        let base = canonical_key("camp", &Cfg { a: 1.0, b: 2 });
        assert_eq!(base, canonical_key("camp", &Cfg { a: 1.0, b: 2 }));
        assert_ne!(base, canonical_key("camp", &Cfg { a: 1.5, b: 2 }));
        assert_ne!(base, canonical_key("camp", &Cfg { a: 1.0, b: 3 }));
        assert_ne!(base, canonical_key("other", &Cfg { a: 1.0, b: 2 }));
    }

    #[test]
    fn numerics_epoch_is_folded_into_the_key() {
        let key = canonical_key("camp", &1u64);
        let unsalted = fnv1a("camp\u{1f}1".as_bytes());
        assert_ne!(key, unsalted, "epoch salt must change the key");
        let salted = fnv1a(format!("epoch{NUMERICS_EPOCH}\u{1f}camp\u{1f}1").as_bytes());
        assert_eq!(key, salted);
    }

    #[test]
    fn string_keyed_hash_matches_typed_hash() {
        // u64 Debug renders as plain digits, so a remote host holding
        // only the rendered config computes the same key.
        assert_eq!(canonical_key("mc", &7u64), canonical_key_str("mc", "7"));
        assert_eq!(
            canonical_key("mc", &(1u64, 2.5f64)),
            canonical_key_str("mc", "(1, 2.5)")
        );
        assert_ne!(
            canonical_key_str("mc", "7"),
            canonical_key_str("other", "7")
        );
    }

    #[test]
    fn raw_line_access_is_bit_exact_and_first_writer_wins() {
        let cache = ResultCache::in_memory();
        cache.put(9, &64.25f64);
        let line = cache.get_line(9).unwrap();
        assert_eq!(f64::decode(&line), Some(64.25));
        cache.put_line(9, "ffffffffffffffff");
        assert_eq!(cache.get::<f64>(9), Some(64.25), "existing entry kept");
        cache.put_line(10, &1.5f64.encode());
        assert_eq!(cache.get::<f64>(10), Some(1.5));
    }

    #[test]
    fn persisted_files_carry_an_epoch_header() {
        let dir = std::env::temp_dir().join("adc_runtime_cache_epoch_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::on_disk(&dir).unwrap();
        cache.put(1, &2.0f64);
        cache.persist("hdr_test").unwrap();
        let text = std::fs::read_to_string(dir.join("hdr_test.cache")).unwrap();
        let first = text.lines().next().unwrap();
        assert_eq!(parse_epoch_header(first), Some(NUMERICS_EPOCH));
        assert_eq!(parse_epoch_header("1\tdeadbeef"), None);
        // Reload skips the header and sees the entry.
        let reload = ResultCache::on_disk(&dir).unwrap();
        reload.preload("hdr_test");
        assert_eq!(reload.get::<f64>(1), Some(2.0));
        assert_eq!(reload.len(), 1, "header line is not an entry");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f64_codec_is_bit_exact() {
        for value in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            64.23456789012345,
        ] {
            let back = f64::decode(&value.encode()).unwrap();
            assert_eq!(back.to_bits(), value.to_bits());
        }
        let nan = f64::decode(&f64::NAN.encode()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn tuple_and_vec_codecs_round_trip() {
        let point = (1.0f64, 2.5f64, -3.25f64);
        assert_eq!(<(f64, f64, f64)>::decode(&point.encode()), Some(point));
        let series: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        assert_eq!(
            Vec::<(f64, f64)>::decode(&series.encode()),
            Some(series.clone())
        );
        assert_eq!(Vec::<f64>::decode(""), Some(vec![]));
        assert_eq!(<(f64, f64)>::decode("deadbeef"), None);
    }

    #[test]
    fn memory_cache_stores_and_misses() {
        let cache = ResultCache::in_memory();
        assert!(cache.is_empty());
        assert_eq!(cache.get::<f64>(1), None);
        cache.put(1, &64.25f64);
        assert_eq!(cache.get::<f64>(1), Some(64.25));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_cache_round_trips_across_instances() {
        let dir = std::env::temp_dir().join("adc_runtime_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            cache.put(42, &(1.5f64, 2.5f64));
            cache.persist("fig_test").unwrap();
        }
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            assert_eq!(cache.get::<(f64, f64)>(42), None, "not loaded yet");
            cache.preload("fig_test");
            assert_eq!(cache.get::<(f64, f64)>(42), Some((1.5, 2.5)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
