//! The campaign builder: fan a job set out over the pool, bit-identically
//! to serial execution.
//!
//! ```
//! use adc_runtime::{Campaign, JobError};
//!
//! let run = Campaign::new("double", 42)
//!     .jobs(0u64..8)
//!     .threads(4)
//!     .run(|_ctx, &x| Ok::<_, JobError>(2 * x));
//! assert_eq!(run.values().count(), 8);
//! assert_eq!(run.into_result().unwrap(), vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{canonical_key, CacheCodec, ResultCache};
use crate::job::{JobCtx, JobError, JobId, JobReport};
use crate::observer::{CampaignSummary, RunObserver};
use crate::pool::{self, PoolConfig};

/// A declarative, deterministic parallel campaign over a set of job
/// inputs.
///
/// Determinism contract: each job's result depends only on its input and
/// its `(campaign_seed, JobId)`-derived seed; results come back indexed
/// by [`JobId`]. Thread count, stealing order, and retry scheduling are
/// therefore invisible in the output — `threads(1)` and `threads(64)`
/// produce bit-identical campaigns.
pub struct Campaign<I> {
    name: String,
    seed: u64,
    inputs: Vec<I>,
    threads: usize,
    timeout: Option<Duration>,
    retries: u32,
    observers: Vec<Arc<dyn RunObserver>>,
}

impl<I> std::fmt::Debug for Campaign<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("jobs", &self.inputs.len())
            .field("threads", &self.threads)
            .field("timeout", &self.timeout)
            .field("retries", &self.retries)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<I> Campaign<I> {
    /// Creates an empty campaign with a label (used by observers and
    /// cache files) and a campaign seed.
    pub fn new<S: Into<String>>(name: S, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            inputs: Vec::new(),
            threads: 0,
            timeout: None,
            retries: 0,
            observers: Vec::new(),
        }
    }

    /// Appends one job input.
    pub fn job(mut self, input: I) -> Self {
        self.inputs.push(input);
        self
    }

    /// Appends a batch of job inputs; ids number them in order.
    pub fn jobs<It: IntoIterator<Item = I>>(mut self, inputs: It) -> Self {
        self.inputs.extend(inputs);
        self
    }

    /// Sets the worker-thread count; `0` (the default) uses all
    /// available hardware parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets a per-job cooperative deadline (workers poll
    /// [`JobCtx::timed_out`]).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Allows up to `retries` re-attempts after a failure or panic.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Attaches an observer.
    pub fn observe(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// The number of jobs currently queued.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            pool::default_threads()
        } else {
            self.threads
        }
    }

    /// Runs the campaign, returning per-job outcomes in id order.
    pub fn run<T, F>(self, worker: F) -> CampaignRun<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    {
        let threads = self.resolved_threads();
        for obs in &self.observers {
            obs.on_campaign_start(&self.name, self.inputs.len(), threads);
        }
        let cfg = PoolConfig {
            campaign_seed: self.seed,
            threads,
            timeout: self.timeout,
            retries: self.retries,
            observers: &self.observers,
        };
        let start = Instant::now(); // adc-lint: allow(no-wallclock) reason="campaign wall-time for the summary line; never feeds results"
        let (values, reports) = pool::execute(&cfg, &self.inputs, &worker);
        let wall = start.elapsed();
        let summary = CampaignSummary {
            name: self.name,
            jobs: reports.len(),
            succeeded: values.iter().filter(|v| v.is_some()).count(),
            threads,
            wall,
            busy: reports.iter().map(|r| r.wall).sum(),
            samples: reports.iter().map(|r| r.samples).sum(),
        };
        for obs in &self.observers {
            obs.on_campaign_finish(&summary);
        }
        CampaignRun {
            values,
            reports,
            summary,
        }
    }

    /// Runs the campaign through a content-hash cache: jobs whose
    /// canonical input (`Debug` rendering, salted with the campaign
    /// name) is already cached return their stored value without
    /// executing; fresh results are stored and, for disk-backed caches,
    /// persisted.
    ///
    /// Only the misses are dispatched, but each miss keeps its original
    /// [`JobId`] (and hence its derived seed), so a partially cached
    /// campaign returns results bit-identical to an uncached one.
    pub fn run_cached<T, F>(self, cache: &ResultCache, worker: F) -> CampaignRun<T>
    where
        I: Sync + std::fmt::Debug,
        T: Send + CacheCodec,
        F: Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    {
        cache.preload(&self.name);
        let keys: Vec<u64> = self
            .inputs
            .iter()
            .map(|input| canonical_key(&self.name, input))
            .collect();
        let mut values: Vec<Option<T>> = keys.iter().map(|&k| cache.get::<T>(k)).collect();
        let miss_indices: Vec<usize> = (0..values.len()).filter(|&i| values[i].is_none()).collect();
        let hits = values.len() - miss_indices.len();
        adc_trace::counter("cache_hits", hits as u64);
        adc_trace::counter("cache_misses", miss_indices.len() as u64);

        let name = self.name.clone();
        let campaign_seed = self.seed;
        let misses: Vec<(usize, &I)> = miss_indices.iter().map(|&i| (i, &self.inputs[i])).collect();
        let miss_campaign = Campaign {
            name: self.name.clone(),
            seed: self.seed,
            inputs: misses,
            threads: self.threads,
            timeout: self.timeout,
            retries: self.retries,
            observers: self.observers.clone(),
        };
        let miss_run = miss_campaign.run(|ctx, &(original, input)| {
            // The pool numbered the misses densely; restore the job's
            // original identity so the cache-hit pattern cannot change a
            // miss's derived seed (and hence its result).
            let ctx = ctx.reassign(campaign_seed, JobId(original as u64));
            worker(&ctx, input)
        });

        let mut reports: Vec<JobReport> = (0..values.len())
            .map(|i| JobReport {
                id: JobId(i as u64),
                attempts: 0,
                wall: Duration::ZERO,
                samples: 0,
                error: None,
            })
            .collect();
        for (&original, (value, report)) in miss_indices
            .iter()
            .zip(miss_run.values.into_iter().zip(miss_run.reports))
        {
            if let Some(v) = &value {
                cache.put(keys[original], v);
            }
            values[original] = value;
            reports[original] = JobReport {
                id: JobId(original as u64),
                ..report
            };
        }
        let _ = cache.persist(&name);

        let summary = CampaignSummary {
            name,
            jobs: values.len(),
            succeeded: values.iter().filter(|v| v.is_some()).count(),
            threads: miss_run.summary.threads,
            wall: miss_run.summary.wall,
            busy: miss_run.summary.busy,
            samples: miss_run.summary.samples,
        };
        CampaignRun {
            values,
            reports,
            summary,
        }
    }
}

/// The outcome of one campaign run, indexed by [`JobId`].
#[derive(Debug)]
pub struct CampaignRun<T> {
    /// Per-job values (`None` where the job terminally failed), in id
    /// order.
    pub values: Vec<Option<T>>,
    /// Per-job reports, in id order.
    pub reports: Vec<JobReport>,
    /// Aggregate statistics.
    pub summary: CampaignSummary,
}

impl<T> CampaignRun<T> {
    /// Iterates over the successful values in id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.values.iter().filter_map(Option::as_ref)
    }

    /// Converts into `Ok(values)` when every job succeeded, else the
    /// first failure as `Err((JobId, JobError))`.
    ///
    /// # Errors
    ///
    /// Returns the lowest-id terminal failure.
    pub fn into_result(self) -> Result<Vec<T>, (JobId, JobError)> {
        let mut out = Vec::with_capacity(self.values.len());
        for (value, report) in self.values.into_iter().zip(self.reports) {
            match value {
                Some(v) => out.push(v),
                None => {
                    let err = report
                        .error
                        .unwrap_or_else(|| JobError::Failed("unknown".to_string()));
                    return Err((report.id, err));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CollectingObserver;

    #[test]
    fn builder_runs_and_orders_results() {
        let run = Campaign::new("square", 1)
            .jobs(0u64..10)
            .threads(4)
            .run(|_, &x| Ok::<_, JobError>(x * x));
        assert_eq!(
            run.into_result().unwrap(),
            (0u64..10).map(|x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let run_with = |threads: usize| {
            Campaign::new("det", 99)
                .jobs(0u64..40)
                .threads(threads)
                .run(|ctx, _| Ok::<_, JobError>(ctx.seed))
                .into_result()
                .unwrap()
        };
        let serial = run_with(1);
        assert_eq!(serial, run_with(2));
        assert_eq!(serial, run_with(8));
    }

    #[test]
    fn observers_see_every_job_and_the_summary() {
        let obs = Arc::new(CollectingObserver::default());
        let run = Campaign::new("obs", 5)
            .jobs(0u64..12)
            .threads(3)
            .observe(obs.clone())
            .run(|_, &x| Ok::<_, JobError>(x));
        assert_eq!(obs.reports.lock().unwrap().len(), 12);
        let ticks = obs.ticks.lock().unwrap();
        assert_eq!(ticks.len(), 12);
        assert!(ticks
            .iter()
            .all(|&(done, total)| done <= total && total == 12));
        let summaries = obs.summaries.lock().unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].jobs, 12);
        assert_eq!(summaries[0].succeeded, 12);
        assert_eq!(run.summary.threads, 3);
    }

    #[test]
    fn into_result_surfaces_the_lowest_failed_id() {
        let run = Campaign::new("fail", 0)
            .jobs(0u64..10)
            .threads(2)
            .run(|_, &x| {
                if x == 3 || x == 7 {
                    Err(JobError::Failed(format!("job {x}")))
                } else {
                    Ok(x)
                }
            });
        assert_eq!(run.values().count(), 8);
        let (id, err) = run.into_result().unwrap_err();
        assert_eq!(id, JobId(3));
        assert_eq!(err, JobError::Failed("job 3".to_string()));
    }

    #[test]
    fn cached_rerun_skips_execution_and_matches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ResultCache::in_memory();
        let calls = AtomicUsize::new(0);
        let worker = |ctx: &JobCtx, &x: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok::<_, JobError>((x as f64 * 1.5, ctx.seed as f64))
        };
        let first = Campaign::new("cached", 11)
            .jobs(0u64..8)
            .threads(4)
            .run_cached(&cache, worker)
            .into_result()
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        let second = Campaign::new("cached", 11)
            .jobs(0u64..8)
            .threads(4)
            .run_cached(&cache, worker)
            .into_result()
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 8, "all hits: no recompute");
        assert_eq!(first, second);
    }

    #[test]
    fn partial_cache_hits_leave_miss_seeds_unchanged() {
        use std::sync::Mutex;
        let worker = |ctx: &JobCtx, _: &u64| Ok::<_, JobError>(ctx.seed as f64);

        // Uncached reference run.
        let reference = Campaign::new("partial", 23)
            .jobs(0u64..8)
            .threads(2)
            .run(worker)
            .into_result()
            .unwrap();

        // Pre-populate only the even jobs, then run cached: the odd jobs
        // execute with dense miss indices but must keep original seeds.
        let cache = ResultCache::in_memory();
        let executed = Mutex::new(Vec::new());
        let first = Campaign::new("partial", 23)
            .jobs((0u64..8).step_by(2))
            .threads(2)
            .run_cached(&cache, worker);
        assert_eq!(first.values().count(), 4);
        // Note: the warm-up campaign used ids 0..4 for inputs 0,2,4,6 —
        // but keys hash the *input*, so hits line up by config, and the
        // seeds of hit jobs never matter (their values come from cache).
        let cached_run = Campaign::new("partial", 23)
            .jobs(0u64..8)
            .threads(2)
            .run_cached(&cache, |ctx: &JobCtx, input: &u64| {
                executed.lock().unwrap().push(*input);
                worker(ctx, input)
            });
        let mut executed = executed.into_inner().unwrap();
        executed.sort_unstable();
        assert_eq!(executed, vec![1, 3, 5, 7], "only misses execute");
        let values = cached_run.into_result().unwrap();
        for (i, (&got, &want)) in values.iter().zip(reference.iter()).enumerate() {
            if i % 2 == 1 {
                assert_eq!(got, want, "miss job {i} must keep its original seed");
            }
        }
    }

    #[test]
    fn empty_campaign_is_fine() {
        let run = Campaign::new("empty", 0)
            .threads(4)
            .run(|_, _: &u64| Ok::<_, JobError>(0u64));
        assert!(run.values.is_empty());
        assert_eq!(run.summary.jobs, 0);
    }
}
