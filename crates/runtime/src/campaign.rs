//! The campaign builder: fan a job set out over the pool, bit-identically
//! to serial execution.
//!
//! ```
//! use adc_runtime::{Campaign, JobError};
//!
//! let run = Campaign::new("double", 42)
//!     .jobs(0u64..8)
//!     .threads(4)
//!     .run(|_ctx, &x| Ok::<_, JobError>(2 * x));
//! assert_eq!(run.values().count(), 8);
//! assert_eq!(run.into_result().unwrap(), vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{canonical_key, CacheCodec, ResultCache};
use crate::job::{JobCtx, JobError, JobId, JobReport};
use crate::observer::{CampaignSummary, RunObserver};
use crate::pool::{self, PoolConfig};

/// A declarative, deterministic parallel campaign over a set of job
/// inputs.
///
/// Determinism contract: each job's result depends only on its input and
/// its `(campaign_seed, JobId)`-derived seed; results come back indexed
/// by [`JobId`]. Thread count, stealing order, and retry scheduling are
/// therefore invisible in the output — `threads(1)` and `threads(64)`
/// produce bit-identical campaigns.
pub struct Campaign<I> {
    name: String,
    seed: u64,
    inputs: Vec<I>,
    threads: usize,
    timeout: Option<Duration>,
    retries: u32,
    observers: Vec<Arc<dyn RunObserver>>,
}

impl<I> std::fmt::Debug for Campaign<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("jobs", &self.inputs.len())
            .field("threads", &self.threads)
            .field("timeout", &self.timeout)
            .field("retries", &self.retries)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<I> Campaign<I> {
    /// Creates an empty campaign with a label (used by observers and
    /// cache files) and a campaign seed.
    pub fn new<S: Into<String>>(name: S, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            inputs: Vec::new(),
            threads: 0,
            timeout: None,
            retries: 0,
            observers: Vec::new(),
        }
    }

    /// Appends one job input.
    pub fn job(mut self, input: I) -> Self {
        self.inputs.push(input);
        self
    }

    /// Appends a batch of job inputs; ids number them in order.
    pub fn jobs<It: IntoIterator<Item = I>>(mut self, inputs: It) -> Self {
        self.inputs.extend(inputs);
        self
    }

    /// Sets the worker-thread count; `0` (the default) uses all
    /// available hardware parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets a per-job cooperative deadline (workers poll
    /// [`JobCtx::timed_out`]).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Allows up to `retries` re-attempts after a failure or panic.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Attaches an observer.
    pub fn observe(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// The number of jobs currently queued.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            pool::default_threads()
        } else {
            self.threads
        }
    }

    /// Runs the campaign, returning per-job outcomes in id order.
    pub fn run<T, F>(self, worker: F) -> CampaignRun<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    {
        let threads = self.resolved_threads();
        for obs in &self.observers {
            obs.on_campaign_start(&self.name, self.inputs.len(), threads);
        }
        let cfg = PoolConfig {
            campaign_seed: self.seed,
            threads,
            timeout: self.timeout,
            retries: self.retries,
            observers: &self.observers,
        };
        let start = Instant::now(); // adc-lint: allow(no-wallclock) reason="campaign wall-time for the summary line; never feeds results"
        let (values, reports) = pool::execute(&cfg, &self.inputs, &worker);
        let wall = start.elapsed();
        let summary = CampaignSummary {
            name: self.name,
            jobs: reports.len(),
            succeeded: values.iter().filter(|v| v.is_some()).count(),
            threads,
            wall,
            busy: reports.iter().map(|r| r.wall).sum(),
            samples: reports.iter().map(|r| r.samples).sum(),
        };
        for obs in &self.observers {
            obs.on_campaign_finish(&summary);
        }
        CampaignRun {
            values,
            reports,
            summary,
        }
    }

    /// Runs the campaign with jobs batched into groups of up to
    /// `group_size`: consecutive jobs form one pool job whose worker
    /// receives every member's [`JobCtx`] — each carrying its *member*
    /// identity and the seed that identity derives — plus the member
    /// inputs, and returns one value per member, in order.
    ///
    /// This is the execution shape lane-parallel kernels want: N
    /// independent jobs advance through shared stage math in lock-step,
    /// amortizing per-job setup, while the campaign surface (ids,
    /// seeds, reports, result order) stays exactly [`Campaign::run`]'s.
    /// Because each member's seed is a pure function of its own stable
    /// [`JobId`], a grouped campaign is bit-identical to an ungrouped
    /// one whenever the worker computes members independently — the
    /// lane kernels' contract. Observers see one pool job per *group*;
    /// per-member reports amortize the group's wall time and samples
    /// evenly across its members.
    ///
    /// # Panics
    ///
    /// Panics when `group_size == 0`, or when the worker returns a
    /// value count different from its group's size.
    pub fn run_grouped<T, F>(self, group_size: usize, worker: F) -> CampaignRun<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&[JobCtx], &[&I]) -> Result<Vec<T>, JobError> + Sync,
    {
        assert!(group_size > 0, "group_size must be at least 1");
        let total = self.inputs.len();
        let indices: Vec<usize> = (0..total).collect();
        let groups: Vec<Vec<(usize, &I)>> = indices
            .chunks(group_size)
            .map(|chunk| chunk.iter().map(|&i| (i, &self.inputs[i])).collect())
            .collect();
        run_groups(
            &GroupSpec {
                name: &self.name,
                seed: self.seed,
                threads: self.threads,
                timeout: self.timeout,
                retries: self.retries,
                observers: &self.observers,
            },
            groups,
            total,
            &worker,
        )
    }

    /// [`Campaign::run_grouped`] through a content-hash cache, in the
    /// same per-member namespace as [`Campaign::run_cached`]: each
    /// member's key hashes its *own* input, so a cache warmed by a
    /// scalar run satisfies a grouped one (and vice versa) bit-for-bit.
    /// Only the misses execute, regrouped into dense batches — legal
    /// because member results depend only on their own `(seed, input)`,
    /// never on their groupmates.
    ///
    /// # Panics
    ///
    /// Panics when `group_size == 0`, or when the worker returns a
    /// value count different from its group's size.
    pub fn run_grouped_cached<T, F>(
        self,
        cache: &ResultCache,
        group_size: usize,
        worker: F,
    ) -> CampaignRun<T>
    where
        I: Sync + std::fmt::Debug,
        T: Send + CacheCodec,
        F: Fn(&[JobCtx], &[&I]) -> Result<Vec<T>, JobError> + Sync,
    {
        assert!(group_size > 0, "group_size must be at least 1");
        cache.preload(&self.name);
        let keys: Vec<u64> = self
            .inputs
            .iter()
            .map(|input| canonical_key(&self.name, input))
            .collect();
        let mut values: Vec<Option<T>> = keys.iter().map(|&k| cache.get::<T>(k)).collect();
        let miss_indices: Vec<usize> = (0..values.len()).filter(|&i| values[i].is_none()).collect();
        adc_trace::counter("cache_hits", (values.len() - miss_indices.len()) as u64);
        adc_trace::counter("cache_misses", miss_indices.len() as u64);

        let groups: Vec<Vec<(usize, &I)>> = miss_indices
            .chunks(group_size)
            .map(|chunk| chunk.iter().map(|&i| (i, &self.inputs[i])).collect())
            .collect();
        let miss_run = run_groups(
            &GroupSpec {
                name: &self.name,
                seed: self.seed,
                threads: self.threads,
                timeout: self.timeout,
                retries: self.retries,
                observers: &self.observers,
            },
            groups,
            values.len(),
            &worker,
        );

        let mut miss_values = miss_run.values;
        for &i in &miss_indices {
            if let Some(v) = &miss_values[i] {
                cache.put(keys[i], v);
            }
            values[i] = miss_values[i].take();
        }
        let _ = cache.persist(&self.name);

        let summary = CampaignSummary {
            name: self.name,
            jobs: values.len(),
            succeeded: values.iter().filter(|v| v.is_some()).count(),
            threads: miss_run.summary.threads,
            wall: miss_run.summary.wall,
            busy: miss_run.summary.busy,
            samples: miss_run.summary.samples,
        };
        CampaignRun {
            values,
            reports: miss_run.reports,
            summary,
        }
    }

    /// Runs the campaign through a content-hash cache: jobs whose
    /// canonical input (`Debug` rendering, salted with the campaign
    /// name) is already cached return their stored value without
    /// executing; fresh results are stored and, for disk-backed caches,
    /// persisted.
    ///
    /// Only the misses are dispatched, but each miss keeps its original
    /// [`JobId`] (and hence its derived seed), so a partially cached
    /// campaign returns results bit-identical to an uncached one.
    pub fn run_cached<T, F>(self, cache: &ResultCache, worker: F) -> CampaignRun<T>
    where
        I: Sync + std::fmt::Debug,
        T: Send + CacheCodec,
        F: Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    {
        cache.preload(&self.name);
        let keys: Vec<u64> = self
            .inputs
            .iter()
            .map(|input| canonical_key(&self.name, input))
            .collect();
        let mut values: Vec<Option<T>> = keys.iter().map(|&k| cache.get::<T>(k)).collect();
        let miss_indices: Vec<usize> = (0..values.len()).filter(|&i| values[i].is_none()).collect();
        let hits = values.len() - miss_indices.len();
        adc_trace::counter("cache_hits", hits as u64);
        adc_trace::counter("cache_misses", miss_indices.len() as u64);

        let name = self.name.clone();
        let campaign_seed = self.seed;
        let misses: Vec<(usize, &I)> = miss_indices.iter().map(|&i| (i, &self.inputs[i])).collect();
        let miss_campaign = Campaign {
            name: self.name.clone(),
            seed: self.seed,
            inputs: misses,
            threads: self.threads,
            timeout: self.timeout,
            retries: self.retries,
            observers: self.observers.clone(),
        };
        let miss_run = miss_campaign.run(|ctx, &(original, input)| {
            // The pool numbered the misses densely; restore the job's
            // original identity so the cache-hit pattern cannot change a
            // miss's derived seed (and hence its result).
            let ctx = ctx.reassign(campaign_seed, JobId(original as u64));
            worker(&ctx, input)
        });

        let mut reports: Vec<JobReport> = (0..values.len())
            .map(|i| JobReport {
                id: JobId(i as u64),
                attempts: 0,
                wall: Duration::ZERO,
                samples: 0,
                requests: 0,
                error: None,
            })
            .collect();
        for (&original, (value, report)) in miss_indices
            .iter()
            .zip(miss_run.values.into_iter().zip(miss_run.reports))
        {
            if let Some(v) = &value {
                cache.put(keys[original], v);
            }
            values[original] = value;
            reports[original] = JobReport {
                id: JobId(original as u64),
                ..report
            };
        }
        let _ = cache.persist(&name);

        let summary = CampaignSummary {
            name,
            jobs: values.len(),
            succeeded: values.iter().filter(|v| v.is_some()).count(),
            threads: miss_run.summary.threads,
            wall: miss_run.summary.wall,
            busy: miss_run.summary.busy,
            samples: miss_run.summary.samples,
        };
        CampaignRun {
            values,
            reports,
            summary,
        }
    }
}

/// The campaign-level knobs [`run_groups`] re-applies to its inner
/// group campaign.
struct GroupSpec<'a> {
    name: &'a str,
    seed: u64,
    threads: usize,
    timeout: Option<Duration>,
    retries: u32,
    observers: &'a [Arc<dyn RunObserver>],
}

/// Dispatches `(original_index, input)` groups as pool jobs and
/// scatters the per-member values and reports back into `total`
/// id-ordered slots (slots no group covers stay `None` with a
/// placeholder report — the cached path's hit slots).
fn run_groups<I, T, F>(
    spec: &GroupSpec<'_>,
    groups: Vec<Vec<(usize, &I)>>,
    total: usize,
    worker: &F,
) -> CampaignRun<T>
where
    I: Sync,
    T: Send,
    F: Fn(&[JobCtx], &[&I]) -> Result<Vec<T>, JobError> + Sync,
{
    let campaign_seed = spec.seed;
    let members: Vec<Vec<usize>> = groups
        .iter()
        .map(|g| g.iter().map(|&(i, _)| i).collect())
        .collect();
    let mut campaign = Campaign::new(spec.name, spec.seed)
        .jobs(groups)
        .threads(spec.threads)
        .retries(spec.retries);
    if let Some(t) = spec.timeout {
        campaign = campaign.timeout(t);
    }
    for obs in spec.observers {
        campaign = campaign.observe(Arc::clone(obs));
    }
    let run = campaign.run(|ctx, group: &Vec<(usize, &I)>| {
        // Each member executes under its original identity, so the
        // grouping (and the cache-hit pattern that shaped it) cannot
        // change any member's derived seed.
        let ctxs: Vec<JobCtx> = group
            .iter()
            .map(|&(original, _)| ctx.reassign(campaign_seed, JobId(original as u64)))
            .collect();
        let inputs: Vec<&I> = group.iter().map(|&(_, input)| input).collect();
        let out = worker(&ctxs, &inputs)?;
        assert_eq!(
            out.len(),
            group.len(),
            "group worker must return one value per member"
        );
        Ok(out)
    });

    let mut values: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut reports: Vec<JobReport> = (0..total)
        .map(|i| JobReport {
            id: JobId(i as u64),
            attempts: 0,
            wall: Duration::ZERO,
            samples: 0,
            requests: 0,
            error: None,
        })
        .collect();
    for (group, (value, report)) in members.iter().zip(run.values.into_iter().zip(run.reports)) {
        let share = group.len().max(1);
        let member_report = |original: usize, error: Option<JobError>| JobReport {
            id: JobId(original as u64),
            attempts: report.attempts,
            wall: report.wall / share as u32,
            samples: report.samples / share as u64,
            requests: u64::from(error.is_none()),
            error,
        };
        match value {
            Some(vs) => {
                for (&original, v) in group.iter().zip(vs) {
                    values[original] = Some(v);
                    reports[original] = member_report(original, None);
                }
            }
            None => {
                for &original in group {
                    reports[original] = member_report(original, report.error.clone());
                }
            }
        }
    }
    let summary = CampaignSummary {
        name: spec.name.to_string(),
        jobs: total,
        succeeded: values.iter().filter(|v| v.is_some()).count(),
        threads: run.summary.threads,
        wall: run.summary.wall,
        busy: run.summary.busy,
        samples: run.summary.samples,
    };
    CampaignRun {
        values,
        reports,
        summary,
    }
}

/// The outcome of one campaign run, indexed by [`JobId`].
#[derive(Debug)]
pub struct CampaignRun<T> {
    /// Per-job values (`None` where the job terminally failed), in id
    /// order.
    pub values: Vec<Option<T>>,
    /// Per-job reports, in id order.
    pub reports: Vec<JobReport>,
    /// Aggregate statistics.
    pub summary: CampaignSummary,
}

impl<T> CampaignRun<T> {
    /// Iterates over the successful values in id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.values.iter().filter_map(Option::as_ref)
    }

    /// Converts into `Ok(values)` when every job succeeded, else the
    /// first failure as `Err((JobId, JobError))`.
    ///
    /// # Errors
    ///
    /// Returns the lowest-id terminal failure.
    pub fn into_result(self) -> Result<Vec<T>, (JobId, JobError)> {
        let mut out = Vec::with_capacity(self.values.len());
        for (value, report) in self.values.into_iter().zip(self.reports) {
            match value {
                Some(v) => out.push(v),
                None => {
                    let err = report
                        .error
                        .unwrap_or_else(|| JobError::Failed("unknown".to_string()));
                    return Err((report.id, err));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CollectingObserver;

    #[test]
    fn builder_runs_and_orders_results() {
        let run = Campaign::new("square", 1)
            .jobs(0u64..10)
            .threads(4)
            .run(|_, &x| Ok::<_, JobError>(x * x));
        assert_eq!(
            run.into_result().unwrap(),
            (0u64..10).map(|x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let run_with = |threads: usize| {
            Campaign::new("det", 99)
                .jobs(0u64..40)
                .threads(threads)
                .run(|ctx, _| Ok::<_, JobError>(ctx.seed))
                .into_result()
                .unwrap()
        };
        let serial = run_with(1);
        assert_eq!(serial, run_with(2));
        assert_eq!(serial, run_with(8));
    }

    #[test]
    fn observers_see_every_job_and_the_summary() {
        let obs = Arc::new(CollectingObserver::default());
        let run = Campaign::new("obs", 5)
            .jobs(0u64..12)
            .threads(3)
            .observe(obs.clone())
            .run(|_, &x| Ok::<_, JobError>(x));
        assert_eq!(obs.reports.lock().unwrap().len(), 12);
        let ticks = obs.ticks.lock().unwrap();
        assert_eq!(ticks.len(), 12);
        assert!(ticks
            .iter()
            .all(|&(done, total)| done <= total && total == 12));
        let summaries = obs.summaries.lock().unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].jobs, 12);
        assert_eq!(summaries[0].succeeded, 12);
        assert_eq!(run.summary.threads, 3);
    }

    #[test]
    fn into_result_surfaces_the_lowest_failed_id() {
        let run = Campaign::new("fail", 0)
            .jobs(0u64..10)
            .threads(2)
            .run(|_, &x| {
                if x == 3 || x == 7 {
                    Err(JobError::Failed(format!("job {x}")))
                } else {
                    Ok(x)
                }
            });
        assert_eq!(run.values().count(), 8);
        let (id, err) = run.into_result().unwrap_err();
        assert_eq!(id, JobId(3));
        assert_eq!(err, JobError::Failed("job 3".to_string()));
    }

    #[test]
    fn cached_rerun_skips_execution_and_matches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ResultCache::in_memory();
        let calls = AtomicUsize::new(0);
        let worker = |ctx: &JobCtx, &x: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok::<_, JobError>((x as f64 * 1.5, ctx.seed as f64))
        };
        let first = Campaign::new("cached", 11)
            .jobs(0u64..8)
            .threads(4)
            .run_cached(&cache, worker)
            .into_result()
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        let second = Campaign::new("cached", 11)
            .jobs(0u64..8)
            .threads(4)
            .run_cached(&cache, worker)
            .into_result()
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 8, "all hits: no recompute");
        assert_eq!(first, second);
    }

    #[test]
    fn partial_cache_hits_leave_miss_seeds_unchanged() {
        use std::sync::Mutex;
        let worker = |ctx: &JobCtx, _: &u64| Ok::<_, JobError>(ctx.seed as f64);

        // Uncached reference run.
        let reference = Campaign::new("partial", 23)
            .jobs(0u64..8)
            .threads(2)
            .run(worker)
            .into_result()
            .unwrap();

        // Pre-populate only the even jobs, then run cached: the odd jobs
        // execute with dense miss indices but must keep original seeds.
        let cache = ResultCache::in_memory();
        let executed = Mutex::new(Vec::new());
        let first = Campaign::new("partial", 23)
            .jobs((0u64..8).step_by(2))
            .threads(2)
            .run_cached(&cache, worker);
        assert_eq!(first.values().count(), 4);
        // Note: the warm-up campaign used ids 0..4 for inputs 0,2,4,6 —
        // but keys hash the *input*, so hits line up by config, and the
        // seeds of hit jobs never matter (their values come from cache).
        let cached_run = Campaign::new("partial", 23)
            .jobs(0u64..8)
            .threads(2)
            .run_cached(&cache, |ctx: &JobCtx, input: &u64| {
                executed.lock().unwrap().push(*input);
                worker(ctx, input)
            });
        let mut executed = executed.into_inner().unwrap();
        executed.sort_unstable();
        assert_eq!(executed, vec![1, 3, 5, 7], "only misses execute");
        let values = cached_run.into_result().unwrap();
        for (i, (&got, &want)) in values.iter().zip(reference.iter()).enumerate() {
            if i % 2 == 1 {
                assert_eq!(got, want, "miss job {i} must keep its original seed");
            }
        }
    }

    #[test]
    fn grouped_run_is_bit_identical_to_ungrouped() {
        let ungrouped = Campaign::new("lanes", 77)
            .jobs(0u64..13)
            .threads(2)
            .run(|ctx, &x| Ok::<_, JobError>((x, ctx.seed)))
            .into_result()
            .unwrap();
        for group_size in [1, 4, 5, 16] {
            let grouped = Campaign::new("lanes", 77)
                .jobs(0u64..13)
                .threads(2)
                .run_grouped(group_size, |ctxs, inputs| {
                    Ok::<_, JobError>(
                        ctxs.iter()
                            .zip(inputs)
                            .map(|(ctx, &&x)| (x, ctx.seed))
                            .collect(),
                    )
                })
                .into_result()
                .unwrap();
            assert_eq!(grouped, ungrouped, "group_size {group_size}");
        }
    }

    #[test]
    fn grouped_failure_fails_every_member_of_that_group() {
        let run = Campaign::new("lanes-fail", 0)
            .jobs(0u64..8)
            .threads(1)
            .run_grouped(4, |_, inputs| {
                if inputs.iter().any(|&&x| x == 5) {
                    Err(JobError::Failed("bad lane".to_string()))
                } else {
                    Ok(inputs.iter().map(|&&x| x).collect())
                }
            });
        assert_eq!(run.values().count(), 4, "first group survives");
        let (id, _) = run.into_result().unwrap_err();
        assert_eq!(id, JobId(4), "lowest member of the failed group");
    }

    #[test]
    fn grouped_worker_must_cover_its_group() {
        // The pool confines worker panics to the job, so a short return
        // surfaces as every member of the group failing with the
        // contract violation in the payload.
        let run = Campaign::new("lanes-short", 0)
            .jobs(0u64..4)
            .threads(1)
            .run_grouped(4, |_, _| Ok::<Vec<u64>, JobError>(vec![1]));
        let (id, err) = run.into_result().unwrap_err();
        assert_eq!(id, JobId(0));
        assert!(
            matches!(&err, JobError::Panicked(msg) if msg.contains("one value per member")),
            "got {err:?}"
        );
    }

    #[test]
    fn grouped_cache_shares_the_scalar_namespace() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ResultCache::in_memory();
        let scalar_calls = AtomicUsize::new(0);
        let scalar = Campaign::new("lanes-cache", 9)
            .jobs(0u64..10)
            .threads(2)
            .run_cached(&cache, |ctx, &x| {
                scalar_calls.fetch_add(1, Ordering::Relaxed);
                Ok::<_, JobError>((x as f64, ctx.seed as f64))
            })
            .into_result()
            .unwrap();
        assert_eq!(scalar_calls.load(Ordering::Relaxed), 10);

        // A grouped run over the same inputs is all hits: the lane path
        // never executes, and the values are the scalar run's.
        let grouped_calls = AtomicUsize::new(0);
        let grouped = Campaign::new("lanes-cache", 9)
            .jobs(0u64..10)
            .threads(2)
            .run_grouped_cached(&cache, 4, |ctxs, inputs| {
                grouped_calls.fetch_add(inputs.len(), Ordering::Relaxed);
                Ok(ctxs
                    .iter()
                    .zip(inputs)
                    .map(|(ctx, &&x)| (x as f64, ctx.seed as f64))
                    .collect())
            })
            .into_result()
            .unwrap();
        assert_eq!(grouped_calls.load(Ordering::Relaxed), 0, "all hits");
        assert_eq!(grouped, scalar);
    }

    #[test]
    fn grouped_cache_executes_only_misses_with_original_seeds() {
        let cache = ResultCache::in_memory();
        // Warm only the even jobs.
        let _ = Campaign::new("lanes-partial", 31)
            .jobs((0u64..12).step_by(2))
            .threads(1)
            .run_cached(&cache, |ctx, &x| Ok::<_, JobError>((x, ctx.seed)));
        let reference = Campaign::new("lanes-partial", 31)
            .jobs(0u64..12)
            .threads(1)
            .run(|ctx, &x| Ok::<_, JobError>((x, ctx.seed)))
            .into_result()
            .unwrap();
        let grouped = Campaign::new("lanes-partial", 31)
            .jobs(0u64..12)
            .threads(2)
            .run_grouped_cached(&cache, 4, |ctxs, inputs| {
                // The misses (odd jobs) arrive regrouped densely, but
                // every ctx carries its original id and seed.
                for (ctx, &&x) in ctxs.iter().zip(inputs) {
                    assert_eq!(ctx.id, JobId(x), "member identity preserved");
                }
                Ok(ctxs
                    .iter()
                    .zip(inputs)
                    .map(|(ctx, &&x)| (x, ctx.seed))
                    .collect())
            })
            .into_result()
            .unwrap();
        // Hit slots return the warm-up run's stored values (whose seeds
        // came from the warm-up's dense ids); the misses must match the
        // uncached reference exactly.
        for (i, (got, want)) in grouped.iter().zip(&reference).enumerate() {
            assert_eq!(got.0, want.0, "input {i} round-trips");
            if i % 2 == 1 {
                assert_eq!(got, want, "miss {i} must keep its original seed");
            }
        }
    }

    #[test]
    fn empty_campaign_is_fine() {
        let run = Campaign::new("empty", 0)
            .threads(4)
            .run(|_, _: &u64| Ok::<_, JobError>(0u64));
        assert!(run.values.is_empty());
        assert_eq!(run.summary.jobs, 0);
    }
}
