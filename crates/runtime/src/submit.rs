//! Long-lived job-submission pools for serving workloads.
//!
//! [`Campaign`](crate::Campaign) executes a *closed* job set and tears
//! its workers down when the set completes — the right shape for figure
//! regeneration, but not for a server that receives requests one at a
//! time over an open-ended lifetime. [`JobPool`] keeps the same
//! determinism machinery ([`JobCtx`] with a stable per-job seed,
//! cooperative deadlines, panic confinement, [`RunObserver`] hooks)
//! behind a submission handle: callers [`JobPool::submit`] individual
//! closures and receive a [`JobHandle`] to wait on.
//!
//! Two differences from the campaign engine follow from the open-ended
//! lifetime:
//!
//! * **Ids number submissions, not a fixed set.** Each submission gets
//!   the next [`JobId`] in order, so a job's derived seed is still a
//!   pure function of `(pool_seed, submission index)` — but note that
//!   serving workloads usually pass their *own* seed in the request and
//!   ignore the derived one, because request arrival order is not
//!   deterministic across server runs.
//! * **Shutdown is a drain.** [`JobPool::shutdown`] stops accepting new
//!   work, lets queued and in-flight jobs finish, and joins the workers
//!   — the graceful-drain building block `adc-server` uses.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::job::{JobCtx, JobError, JobId, JobReport};
use crate::observer::RunObserver;
use crate::pool::default_threads;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Task>>,
    task_ready: Condvar,
    draining: AtomicBool,
    pending: AtomicUsize,
}

/// A persistent worker pool accepting individual jobs over its
/// lifetime.
///
/// ```
/// use adc_runtime::{JobError, JobPool};
///
/// let pool = JobPool::new("doc", 42, 2);
/// let handle = pool.submit(None, |ctx| Ok::<_, JobError>(ctx.seed));
/// let (value, report) = handle.wait();
/// assert!(value.is_some() && report.error.is_none());
/// pool.shutdown();
/// ```
pub struct JobPool {
    name: String,
    seed: u64,
    next_id: AtomicU64,
    state: Arc<PoolState>,
    cancelled: Arc<AtomicBool>,
    observers: Arc<Vec<Arc<dyn RunObserver>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("submitted", &self.next_id.load(Ordering::Relaxed))
            .field("pending", &self.state.pending.load(Ordering::Relaxed))
            .field("draining", &self.state.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl JobPool {
    /// Spawns a pool of `threads` workers (`0` = all hardware
    /// parallelism). `seed` anchors the per-submission derived seeds.
    pub fn new<S: Into<String>>(name: S, seed: u64, threads: usize) -> Self {
        Self::with_observers(name, seed, threads, Vec::new())
    }

    /// The number of worker threads serving this pool (the resolved
    /// count — a `threads == 0` request reports the hardware width it
    /// expanded to).
    pub fn threads(&self) -> usize {
        self.workers.lock().expect("pool workers lock").len()
    }

    /// [`JobPool::new`] with [`RunObserver`]s attached: each submission
    /// reports `on_job_start` / `on_job_finish` exactly as campaign jobs
    /// do (there is no campaign summary — the pool never "finishes"
    /// until shutdown).
    pub fn with_observers<S: Into<String>>(
        name: S,
        seed: u64,
        threads: usize,
        observers: Vec<Arc<dyn RunObserver>>,
    ) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || loop {
                    let task = {
                        let mut queue = state.queue.lock().expect("pool queue lock");
                        loop {
                            if let Some(task) = queue.pop_front() {
                                break Some(task);
                            }
                            if state.draining.load(Ordering::SeqCst) {
                                break None;
                            }
                            queue = state
                                .task_ready
                                .wait(queue)
                                .expect("pool queue lock poisoned");
                        }
                    };
                    let Some(task) = task else { break };
                    task();
                    state.pending.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        Self {
            name: name.into(),
            seed,
            next_id: AtomicU64::new(0),
            state,
            cancelled: Arc::new(AtomicBool::new(false)),
            observers: Arc::new(observers),
            workers: Mutex::new(workers),
        }
    }

    /// The pool's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Jobs submitted over the pool's lifetime.
    pub fn submitted(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Jobs queued or running right now.
    pub fn pending(&self) -> usize {
        self.state.pending.load(Ordering::SeqCst)
    }

    /// `true` once [`JobPool::shutdown`] has begun.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Submits one job; the worker closure runs on a pool thread with a
    /// [`JobCtx`] whose seed derives from `(pool_seed, submission id)`
    /// and whose cooperative deadline is `timeout`. Panics are confined
    /// to the job ([`JobError::Panicked`]).
    ///
    /// After [`JobPool::shutdown`] begins, submissions are rejected: the
    /// returned handle resolves immediately to
    /// [`JobError::Failed`]`("pool is draining")` without executing.
    pub fn submit<T, F>(&self, timeout: Option<Duration>, work: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&JobCtx) -> Result<T, JobError> + Send + 'static,
    {
        let id = JobId(self.next_id.fetch_add(1, Ordering::SeqCst));
        let (tx, rx) = mpsc::channel();
        let reject_tx = tx.clone();
        let rejected = move |err: JobError| {
            let report = JobReport {
                id,
                attempts: 0,
                wall: Duration::ZERO,
                samples: 0,
                requests: 0,
                error: Some(err),
            };
            let _ = reject_tx.send((None, report));
        };
        if self.state.draining.load(Ordering::SeqCst) {
            rejected(JobError::Failed("pool is draining".to_string()));
            return JobHandle { id, rx };
        }
        let ctx = JobCtx::new(self.seed, id, 1, timeout, Arc::clone(&self.cancelled));
        let observers = Arc::clone(&self.observers);
        // Armed only while tracing so the disabled path stays free of
        // clock reads; the elapsed value feeds the trace stream only.
        // adc-lint: allow(no-wallclock) reason="queue-wait trace counter, armed only while tracing; never feeds job results"
        let queued_at = adc_trace::enabled().then(Instant::now);
        let task: Task = Box::new(move || {
            for obs in observers.iter() {
                obs.on_job_start(id, 1);
            }
            let _trace_task = adc_trace::task(ctx.seed);
            if let Some(queued_at) = queued_at {
                let waited = u64::try_from(queued_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                adc_trace::counter("queue_wait_us", waited);
            }
            let _trace_span = adc_trace::span_with("pool-job", id.0);
            let start = Instant::now(); // adc-lint: allow(no-wallclock) reason="wall-time metric for observer reports; never feeds job results"
            let outcome = catch_unwind(AssertUnwindSafe(|| work(&ctx)));
            let wall = start.elapsed();
            let (value, error) = match outcome {
                Ok(Ok(value)) => (Some(value), None),
                Ok(Err(err)) => (None, Some(err)),
                Err(payload) => {
                    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    (None, Some(JobError::Panicked(msg)))
                }
            };
            let report = JobReport {
                id,
                attempts: 1,
                wall,
                samples: ctx.samples(),
                requests: ctx.requests(),
                error,
            };
            for obs in observers.iter() {
                obs.on_job_finish(id, &report);
            }
            let _ = tx.send((value, report));
        });
        {
            let mut queue = self.state.queue.lock().expect("pool queue lock");
            // Re-check under the lock so a concurrent shutdown cannot
            // strand a task behind departing workers.
            if self.state.draining.load(Ordering::SeqCst) {
                drop(queue);
                rejected(JobError::Failed("pool is draining".to_string()));
                return JobHandle { id, rx };
            }
            self.state.pending.fetch_add(1, Ordering::SeqCst);
            queue.push_back(task);
        }
        self.state.task_ready.notify_one();
        JobHandle { id, rx }
    }

    /// Graceful drain: stops accepting submissions, runs every already
    /// queued job to completion, and joins the workers. Idempotent —
    /// later calls return immediately.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.task_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("pool worker lock"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The caller's side of one submitted job.
#[derive(Debug)]
pub struct JobHandle<T> {
    id: JobId,
    rx: mpsc::Receiver<(Option<T>, JobReport)>,
}

impl<T> JobHandle<T> {
    /// The job's stable id (submission index).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks until the job finishes, returning its value (`None` on
    /// failure) and report.
    pub fn wait(self) -> (Option<T>, JobReport) {
        self.rx
            .recv()
            .expect("pool worker dropped the result channel")
    }

    /// Blocks until the job finishes, returning `Ok(value)` or the
    /// job's terminal error.
    ///
    /// # Errors
    ///
    /// Returns the job's [`JobError`] when it failed, panicked, timed
    /// out, or was rejected by a draining pool.
    pub fn into_result(self) -> Result<T, JobError> {
        let (value, report) = self.wait();
        match value {
            Some(v) => Ok(v),
            None => Err(report
                .error
                .unwrap_or_else(|| JobError::Failed("unknown".to_string()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CollectingObserver;

    #[test]
    fn submitted_jobs_run_and_return() {
        let pool = JobPool::new("t", 1, 2);
        let handles: Vec<_> = (0..16u64)
            .map(|x| pool.submit(None, move |_| Ok::<_, JobError>(x * 3)))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.into_result().unwrap(), i as u64 * 3);
        }
        assert_eq!(pool.submitted(), 16);
        pool.shutdown();
    }

    #[test]
    fn derived_seeds_match_campaign_derivation() {
        let pool = JobPool::new("seeds", 77, 3);
        let seeds: Vec<u64> = (0..8)
            .map(|_| pool.submit(None, |ctx| Ok::<_, JobError>(ctx.seed)))
            .map(|h| h.into_result().unwrap())
            .collect();
        for (i, &seed) in seeds.iter().enumerate() {
            assert_eq!(seed, crate::derive_seed(77, i as u64));
        }
    }

    #[test]
    fn panics_are_confined_to_their_job() {
        let pool = JobPool::new("p", 0, 2);
        let bad = pool.submit(None, |_| -> Result<u64, JobError> {
            panic!("die 3 diverged")
        });
        let good = pool.submit(None, |_| Ok::<_, JobError>(5u64));
        match bad.into_result() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("die 3 diverged")),
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(good.into_result().unwrap(), 5);
        pool.shutdown();
    }

    #[test]
    fn cooperative_deadline_is_observable() {
        let pool = JobPool::new("d", 0, 1);
        let handle = pool.submit(Some(Duration::ZERO), |ctx| {
            std::thread::sleep(Duration::from_millis(2));
            if ctx.timed_out() {
                Err::<u64, _>(JobError::TimedOut)
            } else {
                Ok(1)
            }
        });
        assert_eq!(handle.into_result(), Err(JobError::TimedOut));
    }

    #[test]
    fn shutdown_drains_queued_work_then_rejects() {
        let pool = JobPool::new("s", 0, 1);
        let handles: Vec<_> = (0..8u64)
            .map(|x| {
                pool.submit(None, move |_| {
                    std::thread::sleep(Duration::from_millis(1));
                    Ok::<_, JobError>(x)
                })
            })
            .collect();
        pool.shutdown();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.into_result().unwrap(), i as u64, "queued job drained");
        }
        let late = pool.submit(None, |_| Ok::<_, JobError>(0u64));
        assert_eq!(
            late.into_result(),
            Err(JobError::Failed("pool is draining".to_string()))
        );
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn observers_see_pool_jobs() {
        let obs = Arc::new(CollectingObserver::default());
        let pool = JobPool::with_observers("o", 0, 2, vec![obs.clone()]);
        let handles: Vec<_> = (0..6u64)
            .map(|x| {
                pool.submit(None, move |ctx| {
                    ctx.record_samples(10);
                    Ok::<_, JobError>(x)
                })
            })
            .collect();
        for h in handles {
            h.wait();
        }
        pool.shutdown();
        let reports = obs.reports.lock().unwrap();
        assert_eq!(reports.len(), 6);
        assert!(reports.iter().all(|r| r.samples == 10 && r.error.is_none()));
    }
}
