//! # adc-runtime — deterministic parallel campaign execution
//!
//! The simulation workloads in this workspace — frequency/rate/power
//! sweeps, Monte-Carlo yield runs, figure regeneration — are
//! embarrassingly parallel: many independent jobs, each a pure function
//! of its configuration and a seed. This crate executes such *campaigns*
//! on a work-stealing thread pool while guaranteeing results that are
//! **bit-identical to serial execution**, whatever the thread count or
//! scheduling order.
//!
//! The determinism contract rests on three rules:
//!
//! 1. every job gets a stable [`JobId`] (its submission index);
//! 2. per-job randomness is seeded by [`derive_seed`]`(campaign_seed,
//!    job_id)` — SplitMix64-style mixing, never a shared RNG stream;
//! 3. results land in a slot indexed by id, so completion order is
//!    invisible.
//!
//! Built entirely on `std` (`std::thread` + locks): no new external
//! dependencies.
//!
//! ## Quick start
//!
//! ```
//! use adc_runtime::{Campaign, JobError};
//!
//! let run = Campaign::new("demo-sweep", 7)
//!     .jobs(vec![10.0_f64, 20.0, 30.0])
//!     .threads(2)
//!     .run(|ctx, &fin| {
//!         ctx.record_samples(1);
//!         Ok::<_, JobError>(fin * 2.0)
//!     });
//! assert_eq!(run.into_result().unwrap(), vec![20.0, 40.0, 60.0]);
//! ```
//!
//! ## Modules
//!
//! - [`campaign`] — the [`Campaign`] builder and [`CampaignRun`] result.
//! - [`pool`] — the work-stealing execution core.
//! - [`job`] — [`JobId`], [`JobCtx`], [`JobError`], [`JobReport`].
//! - [`seed`] — SplitMix64 mixing and seed derivation.
//! - [`cache`] — content-hash result cache ([`ResultCache`]).
//! - [`observer`] — [`RunObserver`] lifecycle hooks and
//!   [`CampaignSummary`] statistics.
//! - [`submit`] — [`JobPool`], the long-lived submission pool behind
//!   serving workloads (`adc-server`).

pub mod cache;
pub mod campaign;
pub mod job;
pub mod observer;
pub mod pool;
pub mod seed;
pub mod submit;

pub use cache::{
    canonical_key, canonical_key_str, epoch_header, parse_epoch_header, CacheCodec, ResultCache,
    NUMERICS_EPOCH,
};
pub use campaign::{Campaign, CampaignRun};
pub use job::{JobCtx, JobError, JobId, JobReport};
pub use observer::{CampaignSummary, CollectingObserver, RunObserver};
pub use pool::default_threads;
pub use seed::{derive_seed, split_mix64};
pub use submit::{JobHandle, JobPool};
