//! Stable per-job seed derivation.

/// One step of the SplitMix64 output function.
pub fn split_mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a job's seed from the campaign seed and its stable job id.
pub fn derive_seed(campaign_seed: u64, job_id: u64) -> u64 {
    split_mix64(campaign_seed ^ split_mix64(job_id))
}
