//! The work-stealing execution core.
//!
//! Jobs are pre-sharded round-robin across one deque per worker; a
//! worker pops from the *front* of its own deque and, when empty, steals
//! from the *back* of the most-loaded sibling. Scheduling therefore
//! adapts to imbalance (one slow Monte-Carlo die does not idle the other
//! cores) while remaining irrelevant to results: a job's output depends
//! only on its [`JobId`]-derived seed and its input, never on which
//! worker ran it or when, and each result is written to the slot its id
//! indexes.
//!
//! Panics are confined per attempt with `catch_unwind`; a diverging die
//! fails its own job (after bounded retries) and the campaign completes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::job::{JobCtx, JobError, JobId, JobReport};
use crate::observer::RunObserver;

/// Immutable run parameters the pool needs.
pub(crate) struct PoolConfig<'a> {
    pub campaign_seed: u64,
    pub threads: usize,
    pub timeout: Option<Duration>,
    pub retries: u32,
    pub observers: &'a [Arc<dyn RunObserver>],
}

/// The number of workers used when the caller asks for "hardware"
/// parallelism (`threads == 0`).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt, isolating panics and classifying the outcome.
fn run_attempt<I, T>(
    worker: &(dyn Fn(&JobCtx, &I) -> Result<T, JobError> + Sync),
    ctx: &JobCtx,
    input: &I,
) -> (Result<T, JobError>, u64) {
    let outcome = catch_unwind(AssertUnwindSafe(|| worker(ctx, input)));
    let samples = ctx.samples();
    match outcome {
        Ok(result) => (result, samples),
        Err(payload) => (Err(JobError::Panicked(panic_message(payload))), samples),
    }
}

/// Executes a job to completion: up to `1 + retries` attempts, each with
/// a fresh context (same derived seed).
fn run_job<I, T>(
    cfg: &PoolConfig<'_>,
    cancelled: &Arc<AtomicBool>,
    worker: &(dyn Fn(&JobCtx, &I) -> Result<T, JobError> + Sync),
    id: JobId,
    input: &I,
) -> (Option<T>, JobReport) {
    let max_attempts = 1 + cfg.retries;
    let mut total_samples = 0;
    for attempt in 1..=max_attempts {
        let ctx = JobCtx::new(
            cfg.campaign_seed,
            id,
            attempt,
            cfg.timeout,
            Arc::clone(cancelled),
        );
        for obs in cfg.observers {
            obs.on_job_start(id, attempt);
        }
        // Scope the trace span-id stream to this job's derived seed so
        // span identity is reproducible run-to-run, then record the
        // attempt as one span (job id attached as the span argument).
        let _trace_task = adc_trace::task(ctx.seed);
        let _trace_span = adc_trace::span_with("job", id.0);
        let start = Instant::now(); // adc-lint: allow(no-wallclock) reason="wall-time metric for observer reports; never feeds job results"
        let (result, samples) = run_attempt(worker, &ctx, input);
        let wall = start.elapsed();
        total_samples += samples;
        match result {
            Ok(value) => {
                let report = JobReport {
                    id,
                    attempts: attempt,
                    wall,
                    samples: total_samples,
                    requests: ctx.requests().max(1),
                    error: None,
                };
                return (Some(value), report);
            }
            Err(err) => {
                // A cooperative timeout is terminal: the budget is spent.
                let terminal = matches!(err, JobError::TimedOut) || attempt == max_attempts;
                if terminal {
                    let report = JobReport {
                        id,
                        attempts: attempt,
                        wall,
                        samples: total_samples,
                        requests: ctx.requests(),
                        error: Some(err),
                    };
                    return (None, report);
                }
            }
        }
    }
    unreachable!("loop returns on the final attempt");
}

/// Executes `inputs` across the pool, returning per-job values and
/// reports in job order (index == `JobId`).
pub(crate) fn execute<I, T, F>(
    cfg: &PoolConfig<'_>,
    inputs: &[I],
    worker: &F,
) -> (Vec<Option<T>>, Vec<JobReport>)
where
    I: Sync,
    T: Send,
    F: Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
{
    let n = inputs.len();
    let threads = cfg.threads.max(1).min(n.max(1));
    let cancelled = Arc::new(AtomicBool::new(false));

    // Round-robin pre-sharding: deque w gets jobs w, w+threads, ...
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..n).step_by(threads).collect()))
        .collect();

    type Slot<T> = Mutex<Option<(Option<T>, JobReport)>>;
    let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
    let done = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let done = &done;
            let cancelled = &cancelled;
            scope.spawn(move || loop {
                // Own deque first (front), then steal (back) from the
                // sibling with the most queued work.
                let job = {
                    let own = queues[w].lock().expect("queue lock").pop_front();
                    match own {
                        Some(j) => Some(j),
                        None => {
                            let victim = (0..threads)
                                .filter(|&v| v != w)
                                .max_by_key(|&v| queues[v].lock().expect("queue lock").len());
                            let stolen = victim
                                .and_then(|v| queues[v].lock().expect("queue lock").pop_back());
                            if stolen.is_some() {
                                adc_trace::instant("steal");
                            }
                            stolen
                        }
                    }
                };
                let Some(index) = job else { break };
                let (value, report) =
                    run_job(cfg, cancelled, worker, JobId(index as u64), &inputs[index]);
                for obs in cfg.observers {
                    obs.on_job_finish(report.id, &report);
                }
                *slots[index].lock().expect("slot lock") = Some((value, report));
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                for obs in cfg.observers {
                    obs.on_progress(finished, n);
                }
            });
        }
    });

    let mut values = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    for slot in slots {
        let (value, report) = slot
            .into_inner()
            .expect("slot lock")
            .expect("every job ran to completion");
        values.push(value);
        reports.push(report);
    }
    (values, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize, retries: u32) -> PoolConfig<'static> {
        PoolConfig {
            campaign_seed: 7,
            threads,
            timeout: None,
            retries,
            observers: &[],
        }
    }

    #[test]
    fn executes_every_job_in_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let (values, reports) = execute(&cfg(8, 0), &inputs, &|ctx: &JobCtx, &x: &u64| {
            Ok::<u64, JobError>(x * 2 + ctx.id.0)
        });
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, Some((i as u64) * 3));
            assert_eq!(reports[i].id, JobId(i as u64));
        }
    }

    #[test]
    fn results_independent_of_thread_count() {
        let inputs: Vec<u64> = (0..64).collect();
        let run = |threads| {
            execute(&cfg(threads, 0), &inputs, &|ctx: &JobCtx, _: &u64| {
                Ok::<u64, JobError>(ctx.seed)
            })
            .0
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_campaign() {
        let inputs: Vec<u64> = (0..16).collect();
        let (values, reports) = execute(&cfg(4, 0), &inputs, &|_: &JobCtx, &x: &u64| {
            if x == 5 {
                panic!("diverging die {x}");
            }
            Ok::<u64, JobError>(x)
        });
        assert_eq!(values[5], None);
        match &reports[5].error {
            Some(JobError::Panicked(msg)) => assert!(msg.contains("diverging die 5")),
            other => panic!("expected panic error, got {other:?}"),
        }
        for (i, v) in values.iter().enumerate() {
            if i != 5 {
                assert_eq!(*v, Some(i as u64));
            }
        }
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        use std::sync::atomic::AtomicU32;
        let attempts = AtomicU32::new(0);
        let inputs = [0u64];
        let (values, reports) = execute(&cfg(1, 3), &inputs, &|ctx: &JobCtx, _: &u64| {
            attempts.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < 3 {
                Err(JobError::Failed("flaky".to_string()))
            } else {
                Ok(99u64)
            }
        });
        assert_eq!(values[0], Some(99));
        assert_eq!(reports[0].attempts, 3);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn exhausted_retries_surface_the_last_error() {
        let inputs = [0u64];
        let (values, reports) = execute(&cfg(1, 2), &inputs, &|_: &JobCtx, _: &u64| {
            Err::<u64, _>(JobError::Failed("always".to_string()))
        });
        assert_eq!(values[0], None);
        assert_eq!(reports[0].attempts, 3);
        assert_eq!(
            reports[0].error,
            Some(JobError::Failed("always".to_string()))
        );
    }

    #[test]
    fn cooperative_timeout_is_terminal() {
        let inputs = [0u64];
        let mut config = cfg(1, 5);
        config.timeout = Some(Duration::ZERO);
        let (values, reports) = execute(&config, &inputs, &|ctx: &JobCtx, _: &u64| {
            std::thread::sleep(Duration::from_millis(1));
            if ctx.timed_out() {
                return Err::<u64, _>(JobError::TimedOut);
            }
            Ok(1)
        });
        assert_eq!(values[0], None);
        // No retries burned after a timeout: the budget is spent.
        assert_eq!(reports[0].attempts, 1);
        assert_eq!(reports[0].error, Some(JobError::TimedOut));
    }

    #[test]
    fn empty_input_is_fine() {
        let inputs: [u64; 0] = [];
        let (values, reports) =
            execute(&cfg(4, 0), &inputs, &|_: &JobCtx, _| Ok::<u64, JobError>(0));
        assert!(values.is_empty() && reports.is_empty());
    }
}
