//! Run observability: hooks for job lifecycle, progress, and campaign
//! summaries.
//!
//! The engine calls observers from worker threads; implementations must
//! be `Send + Sync` and should stay cheap — a slow observer serializes
//! the pool. `adc-testbench::report` provides a text reporter built on
//! this trait; [`CollectingObserver`] here supports tests.

use std::sync::Mutex;
use std::time::Duration;

use crate::job::{JobId, JobReport};

/// Summary statistics of one finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Campaign name (for labelling output).
    pub name: String,
    /// Total jobs submitted.
    pub jobs: usize,
    /// Jobs that produced a value.
    pub succeeded: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Sum of per-job wall times (serial-equivalent compute time).
    pub busy: Duration,
    /// Total samples recorded by workers.
    pub samples: u64,
}

impl CampaignSummary {
    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Samples converted per wall-clock second (0 when workers did not
    /// record samples).
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Ratio of serial-equivalent compute time to wall time — the
    /// effective parallel speedup achieved.
    pub fn speedup(&self) -> f64 {
        self.busy.as_secs_f64() / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Lifecycle hooks for a campaign run. All methods default to no-ops so
/// implementations override only what they need.
pub trait RunObserver: Send + Sync {
    /// The campaign is about to dispatch `jobs` jobs on `threads`
    /// workers.
    fn on_campaign_start(&self, name: &str, jobs: usize, threads: usize) {
        let _ = (name, jobs, threads);
    }

    /// Attempt `attempt` of job `id` is starting.
    fn on_job_start(&self, id: JobId, attempt: u32) {
        let _ = (id, attempt);
    }

    /// Job `id` finished (successfully or not); `report` has the
    /// attempt count, wall time, and sample credit.
    fn on_job_finish(&self, id: JobId, report: &JobReport) {
        let _ = (id, report);
    }

    /// `done` of `total` jobs have completed.
    fn on_progress(&self, done: usize, total: usize) {
        let _ = (done, total);
    }

    /// The campaign finished.
    fn on_campaign_finish(&self, summary: &CampaignSummary) {
        let _ = summary;
    }
}

/// An observer that records events for inspection (test support).
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Finished-job reports in completion order.
    pub reports: Mutex<Vec<JobReport>>,
    /// Progress ticks `(done, total)` in emission order.
    pub ticks: Mutex<Vec<(usize, usize)>>,
    /// Campaign summaries (one per observed run).
    pub summaries: Mutex<Vec<CampaignSummary>>,
}

impl RunObserver for CollectingObserver {
    fn on_job_finish(&self, _id: JobId, report: &JobReport) {
        self.reports
            .lock()
            .expect("observer lock")
            .push(report.clone());
    }

    fn on_progress(&self, done: usize, total: usize) {
        self.ticks
            .lock()
            .expect("observer lock")
            .push((done, total));
    }

    fn on_campaign_finish(&self, summary: &CampaignSummary) {
        self.summaries
            .lock()
            .expect("observer lock")
            .push(summary.clone());
    }
}
