//! Cluster end-to-end properties: a distributed campaign is
//! bit-identical to an in-process one at any host count, under host
//! loss mid-campaign, and with pre-warmed remote caches.

use std::sync::Arc;
use std::time::Duration;

use adc_cluster::{
    assemble_monte_carlo, monte_carlo_campaign, probe_mix_config, standard_registry,
    ClusterCampaign, ClusterExecutor, ClusterOptions,
};
use adc_pipeline::config::AdcConfig;
use adc_runtime::{canonical_key, ResultCache};
use adc_server::{Preset, Server, ServerConfig, ServerHandle};
use adc_testbench::{monte_carlo_plan, run_monte_carlo_with, RunPolicy};

type ServerJoin = std::thread::JoinHandle<std::io::Result<()>>;

fn spawn_host(cache_dir: Option<std::path::PathBuf>) -> (ServerHandle, ServerJoin) {
    let cfg = ServerConfig {
        job_runner: Some(standard_registry()),
        cache_dir,
        ..ServerConfig::default()
    };
    Server::spawn("127.0.0.1:0", cfg).expect("spawn host")
}

fn drain(handle: ServerHandle, join: ServerJoin) {
    handle.shutdown();
    join.join().expect("server thread").expect("serve");
}

/// Small options that force real scheduling: single-job batches, short
/// windows, fast backoff.
fn tight_options() -> ClusterOptions {
    ClusterOptions {
        window: 2,
        batch_jobs: 2,
        backoff: Duration::from_millis(5),
        io_timeout: Duration::from_secs(10),
        ..ClusterOptions::default()
    }
}

fn probe_campaign(jobs: u64) -> ClusterCampaign {
    let mut campaign = ClusterCampaign::new("probe-e2e", "probe-mix", 4242);
    for a in 0..jobs {
        campaign.push_job(probe_mix_config(a, 9), canonical_key("probe-e2e", &a));
    }
    campaign
}

#[test]
fn distributed_results_are_bit_identical_at_1_2_3_hosts() {
    let campaign = probe_campaign(25);
    let reference = ClusterExecutor::new(Vec::new(), standard_registry())
        .execute(&campaign)
        .expect("in-process reference");

    for host_count in 1..=3usize {
        let hosts: Vec<_> = (0..host_count).map(|_| spawn_host(None)).collect();
        let peers: Vec<String> = hosts.iter().map(|(h, _)| h.addr().to_string()).collect();
        let report = ClusterExecutor::new(peers, standard_registry())
            .options(tight_options())
            .execute(&campaign)
            .unwrap_or_else(|e| panic!("{host_count}-host run: {e}"));
        assert_eq!(
            report.lines, reference.lines,
            "{host_count}-host schedule changed the bits"
        );
        assert_eq!(
            report.stats.remote_computed + report.stats.remote_cached + report.stats.local_computed,
            25,
            "every job accounted for at {host_count} hosts"
        );
        for (handle, join) in hosts {
            drain(handle, join);
        }
    }
}

#[test]
fn monte_carlo_over_two_hosts_matches_in_process_and_merges_caches() {
    let config = AdcConfig::nominal_110ms();
    let plan = monte_carlo_plan(&config, 6, 10e6, 512);
    let campaign = monte_carlo_campaign(Preset::Nominal110, &plan);
    let reference = run_monte_carlo_with(&config, 6, 10e6, 512, &RunPolicy::serial()).expect("ref");

    let hosts: Vec<_> = (0..2).map(|_| spawn_host(None)).collect();
    let peers: Vec<String> = hosts.iter().map(|(h, _)| h.addr().to_string()).collect();
    let local_cache = Arc::new(ResultCache::in_memory());
    let report = ClusterExecutor::new(peers.clone(), standard_registry())
        .options(tight_options())
        .cached(Arc::clone(&local_cache))
        .execute(&campaign)
        .expect("distributed MC");
    let distributed = assemble_monte_carlo(&report.lines).expect("assemble");
    assert_eq!(distributed, reference, "2-host MC diverged from in-process");

    // The distributed run warmed the local cache in the *shared*
    // canonical namespace: a subsequent in-process cached run computes
    // nothing and reproduces the same result.
    let cached_policy = RunPolicy::serial().cached(Arc::clone(&local_cache));
    let warm = run_monte_carlo_with(&config, 6, 10e6, 512, &cached_policy).expect("warm");
    assert_eq!(warm, reference, "cache-satisfied rerun diverged");

    // And the hosts' warm caches answer a fresh executor without any
    // recompute: every job resolves via the prefetch sweep or an
    // in-batch cached hit.
    let rerun = ClusterExecutor::new(peers, standard_registry())
        .options(tight_options())
        .execute(&campaign)
        .expect("rerun");
    assert_eq!(rerun.lines, report.lines);
    assert_eq!(
        rerun.stats.prefetch_hits + rerun.stats.remote_cached,
        6,
        "rerun should be all warm-cache hits, got {:?}",
        rerun.stats
    );
    assert_eq!(rerun.stats.remote_computed, 0);

    for (handle, join) in hosts {
        drain(handle, join);
    }
}

#[test]
fn killing_a_host_mid_campaign_keeps_results_bit_identical() {
    let config = AdcConfig::nominal_110ms();
    let plan = monte_carlo_plan(&config, 10, 10e6, 1024);
    let campaign = monte_carlo_campaign(Preset::Nominal110, &plan);
    let reference =
        run_monte_carlo_with(&config, 10, 10e6, 1024, &RunPolicy::serial()).expect("ref");

    let (handle_a, join_a) = spawn_host(None);
    let (handle_b, join_b) = spawn_host(None);
    let peers = vec![handle_a.addr().to_string(), handle_b.addr().to_string()];

    let killer = {
        let handle_a = handle_a.clone();
        std::thread::spawn(move || {
            // Let the campaign get going, then take host A down. Its
            // in-flight batches either drain (graceful) or come back
            // `Rejected`; either way the executor resubmits the work
            // to host B or runs it locally.
            std::thread::sleep(Duration::from_millis(40));
            handle_a.shutdown();
        })
    };

    let report = ClusterExecutor::new(peers, standard_registry())
        .options(ClusterOptions {
            window: 1,
            batch_jobs: 1,
            backoff: Duration::from_millis(5),
            ..ClusterOptions::default()
        })
        .execute(&campaign)
        .expect("campaign survives host loss");
    killer.join().expect("killer thread");

    let distributed = assemble_monte_carlo(&report.lines).expect("assemble");
    assert_eq!(
        distributed, reference,
        "host loss mid-campaign changed the bits"
    );

    join_a.join().expect("host A thread").expect("serve A");
    drain(handle_b, join_b);
}

#[test]
fn pre_warmed_disk_cache_survives_a_host_restart() {
    let dir = std::env::temp_dir().join("adc_cluster_disk_cache_e2e");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = probe_campaign(8);

    // First host generation computes and persists.
    let (handle, join) = spawn_host(Some(dir.clone()));
    let first = ClusterExecutor::new(vec![handle.addr().to_string()], standard_registry())
        .options(tight_options())
        .execute(&campaign)
        .expect("first generation");
    assert_eq!(first.stats.remote_computed, 8);
    drain(handle, join);

    // Second generation restarts over the same directory: the campaign
    // is answered from the preloaded warm cache, bit-identically.
    let (handle, join) = spawn_host(Some(dir.clone()));
    let second = ClusterExecutor::new(vec![handle.addr().to_string()], standard_registry())
        .options(tight_options())
        .execute(&campaign)
        .expect("second generation");
    assert_eq!(second.lines, first.lines);
    assert_eq!(second.stats.remote_computed, 0, "{:?}", second.stats);
    drain(handle, join);
    let _ = std::fs::remove_dir_all(&dir);
}
