//! The declarative job list an executor runs, and the Monte-Carlo
//! bridge into `adc-testbench`'s campaign namespace.

use adc_runtime::{derive_seed, CacheCodec};
use adc_server::protocol::JobSpec;
use adc_server::Preset;
use adc_testbench::{summarize_dies, DieResult, MonteCarloPlan, MonteCarloResult};

use crate::executor::ClusterError;

/// One job: a rendered config plus its canonical cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterJob {
    /// The kind-specific `CacheCodec`-rendered config.
    pub config: String,
    /// The job's [`adc_runtime::canonical_key`] in the campaign's
    /// namespace — the address results live under, everywhere.
    pub key: u64,
}

/// A campaign ready for distribution: an ordered job list under one
/// kind, one campaign name (= cache namespace), and one campaign seed.
///
/// Job ids are list indices; per-job seeds are
/// [`derive_seed`]`(campaign seed, id)` — both stable under any
/// schedule, so results assemble identically however the jobs are
/// scattered across hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCampaign {
    /// Campaign name; also the shared cache-file namespace.
    pub name: String,
    /// The registered job kind every job in this campaign runs as.
    pub kind: String,
    /// Campaign seed feeding per-job seed derivation.
    pub seed: u64,
    /// Per-job cooperative deadline shipped to hosts; `0` disables.
    pub deadline_ms: u32,
    jobs: Vec<ClusterJob>,
}

impl ClusterCampaign {
    /// An empty campaign.
    pub fn new<S: Into<String>, K: Into<String>>(name: S, kind: K, seed: u64) -> Self {
        Self {
            name: name.into(),
            kind: kind.into(),
            seed,
            deadline_ms: 0,
            jobs: Vec::new(),
        }
    }

    /// Appends one job; its id is its position.
    pub fn push_job<S: Into<String>>(&mut self, config: S, key: u64) {
        self.jobs.push(ClusterJob {
            config: config.into(),
            key,
        });
    }

    /// The job list, in id order.
    pub fn jobs(&self) -> &[ClusterJob] {
        &self.jobs
    }

    /// Job count.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The derived seed of job `id` — schedule-independent.
    pub fn job_seed(&self, id: u64) -> u64 {
        derive_seed(self.seed, id)
    }

    /// Renders the jobs at `ids` as wire specs.
    pub(crate) fn specs(&self, ids: &[usize]) -> Vec<JobSpec> {
        ids.iter()
            .map(|&id| JobSpec {
                id: id as u64,
                key: self.jobs[id].key,
                seed: self.job_seed(id as u64),
                config: self.jobs[id].config.clone(),
            })
            .collect()
    }
}

/// The wire index of a [`Preset`] in `die-tone-metrics` configs.
pub fn preset_index(preset: Preset) -> u64 {
    match preset {
        Preset::Nominal110 => 0,
        Preset::Ideal => 1,
        Preset::Sibling220 => 2,
    }
}

/// Lowers a [`MonteCarloPlan`] over `preset` into a distributable
/// campaign: one `die-tone-metrics` job per die, keyed exactly where
/// the in-process cached run would look its result up. A distributed
/// run therefore *warms the same cache* a later local
/// [`adc_testbench::run_monte_carlo_with`] reads, and vice versa.
pub fn monte_carlo_campaign(preset: Preset, plan: &MonteCarloPlan) -> ClusterCampaign {
    let mut campaign = ClusterCampaign::new(&plan.campaign, "die-tone-metrics", plan.seed);
    for &die_seed in &plan.die_seeds {
        campaign.push_job(
            (
                preset_index(preset),
                plan.f_in_target_hz,
                plan.record_len as u64,
                die_seed,
            )
                .encode(),
            plan.cache_key(die_seed),
        );
    }
    campaign
}

/// Decodes per-die result lines (in job order) back into the campaign
/// result — the distributed counterpart of the assembly inside
/// [`adc_testbench::run_monte_carlo_with`].
///
/// # Errors
///
/// [`ClusterError::BadResult`] when a line does not decode as a
/// [`DieResult`].
pub fn assemble_monte_carlo(lines: &[String]) -> Result<MonteCarloResult, ClusterError> {
    let dies = lines
        .iter()
        .enumerate()
        .map(|(id, line)| {
            CacheCodec::decode(line).ok_or_else(|| ClusterError::BadResult {
                id: id as u64,
                detail: format!("undecodable die line {line:?}"),
            })
        })
        .collect::<Result<Vec<DieResult>, _>>()?;
    Ok(summarize_dies(dies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_pipeline::config::AdcConfig;
    use adc_testbench::monte_carlo_plan;

    #[test]
    fn campaign_ids_and_seeds_are_positional_and_stable() {
        let mut c = ClusterCampaign::new("n", "probe-mix", 42);
        c.push_job("0,1", 100);
        c.push_job("0,2", 200);
        assert_eq!(c.len(), 2);
        assert_eq!(c.job_seed(1), derive_seed(42, 1));
        let specs = c.specs(&[1, 0]);
        assert_eq!(specs[0].id, 1);
        assert_eq!(specs[0].key, 200);
        assert_eq!(specs[0].seed, c.job_seed(1));
        assert_eq!(specs[1].config, "0,1");
    }

    #[test]
    fn monte_carlo_lowering_keeps_the_plan_namespace() {
        let config = AdcConfig::nominal_110ms();
        let plan = monte_carlo_plan(&config, 3, 10e6, 1024);
        let campaign = monte_carlo_campaign(Preset::Nominal110, &plan);
        assert_eq!(campaign.name, plan.campaign);
        assert_eq!(campaign.seed, plan.seed);
        assert_eq!(campaign.len(), 3);
        for (job, &die_seed) in campaign.jobs().iter().zip(&plan.die_seeds) {
            assert_eq!(job.key, plan.cache_key(die_seed));
            let (p, f, n, s): (u64, f64, u64, u64) = CacheCodec::decode(&job.config).unwrap();
            assert_eq!((p, f, n, s), (0, 10e6, 1024, die_seed));
        }
    }

    #[test]
    fn monte_carlo_assembly_round_trips_dies() {
        let dies: Vec<DieResult> = (1..=4)
            .map(|seed| DieResult {
                seed,
                snr_db: 67.0 + seed as f64,
                sndr_db: 65.0,
                sfdr_db: 80.0,
                enob: 10.5,
                power_w: 0.097,
            })
            .collect();
        let lines: Vec<String> = dies.iter().map(CacheCodec::encode).collect();
        let assembled = assemble_monte_carlo(&lines).unwrap();
        assert_eq!(assembled.dies, dies);
        assert!(matches!(
            assemble_monte_carlo(&["junk".to_string()]),
            Err(ClusterError::BadResult { id: 0, .. })
        ));
    }
}
