//! # adc-cluster
//!
//! Distributed campaign execution for the pipeline-ADC reproduction:
//! farm measurement jobs out to remote `adc-server` hosts over the
//! framed protocol, merge warm results through the content-addressed
//! shared cache, and assemble a final result **bit-identical** to an
//! in-process run — regardless of host count, scheduling, retries, or
//! mid-campaign host loss.
//!
//! ## Why this is safe
//!
//! The whole layer leans on three invariants the lower crates already
//! enforce:
//!
//! 1. **Schedule-independent seeds.** A job's randomness comes from
//!    [`adc_runtime::derive_seed`]`(campaign_seed, job_id)` — a pure
//!    function of stable identifiers, never of which host or thread ran
//!    the job.
//! 2. **One implementation per computation.** Remote hosts execute the
//!    *same functions* the in-process path calls (e.g.
//!    [`adc_testbench::measure_die`]), reached through a named
//!    [`JobRegistry`] — there is no second implementation to diverge.
//! 3. **Canonical results.** Values travel and persist as
//!    [`adc_runtime::CacheCodec`] lines under
//!    [`adc_runtime::canonical_key`] keys — the exact bytes
//!    `adc-runtime` writes to disk — so a remote fill, a peer's warm
//!    cache, and a local computation are interchangeable bit-for-bit,
//!    and applying a result twice (hedged resubmission) is idempotent.
//!
//! ## Layers
//!
//! * [`registry`] — named job kinds a serving host can execute; plugs
//!   into [`adc_server::ServerConfig::job_runner`].
//! * [`campaign`] — the declarative job list ([`ClusterCampaign`]) and
//!   the Monte-Carlo bridge into `adc-testbench`'s campaign namespace.
//! * [`executor`] — [`ClusterExecutor`]: per-host outstanding-window
//!   scheduling, cross-host work stealing of unacked batches, typed
//!   retry/timeout/backoff with hedged resubmission on host loss, and
//!   graceful degradation to local execution when no peer is reachable.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use adc_cluster::{standard_registry, ClusterCampaign, ClusterExecutor};
//! use adc_server::{Server, ServerConfig};
//!
//! // A serving host opts into cluster duty by installing a registry.
//! let registry = standard_registry();
//! let cfg = ServerConfig {
//!     job_runner: Some(registry.clone()),
//!     ..ServerConfig::default()
//! };
//! let (handle, join) = Server::spawn("127.0.0.1:0", cfg).unwrap();
//!
//! // A peer farms a campaign to it.
//! let mut campaign = ClusterCampaign::new("probe", "probe-mix", 42);
//! for a in 0u64..8 {
//!     campaign.push_job(adc_cluster::probe_mix_config(a, 3), a);
//! }
//! let executor = ClusterExecutor::new(vec![handle.addr().to_string()], standard_registry());
//! let report = executor.execute(&campaign).unwrap();
//! assert_eq!(report.lines.len(), 8);
//!
//! handle.shutdown();
//! join.join().unwrap().unwrap();
//! ```

pub mod campaign;
pub mod executor;
pub mod registry;

pub use campaign::{
    assemble_monte_carlo, monte_carlo_campaign, preset_index, ClusterCampaign, ClusterJob,
};
pub use executor::{ClusterError, ClusterExecutor, ClusterOptions, ClusterReport, ClusterStats};
pub use registry::{probe_mix_config, standard_registry, JobRegistry};
