//! Named job kinds a serving host can execute.
//!
//! The wire ships jobs as `(kind, rendered config, derived seed)`; the
//! registry maps that triple back onto real computations. Both sides of
//! a cluster hold the *same* registry — the server runs jobs through it
//! via [`adc_server::JobRunner`], and the executor runs through it
//! locally when degrading to in-process execution — so every execution
//! site shares one implementation per kind.

use std::collections::BTreeMap;
use std::sync::Arc;

use adc_runtime::{split_mix64, CacheCodec};
use adc_server::{JobRunError, JobRunner, Preset};
use adc_testbench::measure_die;

/// One job kind's handler: `(rendered config, derived seed)` to a
/// `CacheCodec`-encoded result line.
type Handler = dyn Fn(&str, u64) -> Result<String, JobRunError> + Send + Sync;

/// A named map of job kinds, shared by servers (via [`JobRunner`]) and
/// the executor's local-execution fallback.
///
/// Handlers must be pure functions of `(config, seed)` — the cluster's
/// bit-identity guarantee holds exactly as far as this contract does.
#[derive(Default)]
pub struct JobRegistry {
    handlers: BTreeMap<String, Arc<Handler>>,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the handler for `kind`.
    pub fn register<F>(&mut self, kind: &str, handler: F)
    where
        F: Fn(&str, u64) -> Result<String, JobRunError> + Send + Sync + 'static,
    {
        self.handlers.insert(kind.to_string(), Arc::new(handler));
    }

    /// The registered kind names, sorted.
    pub fn kinds(&self) -> Vec<&str> {
        self.handlers.keys().map(String::as_str).collect()
    }
}

impl JobRunner for JobRegistry {
    fn run(&self, kind: &str, config: &str, seed: u64) -> Result<String, JobRunError> {
        match self.handlers.get(kind) {
            Some(handler) => handler(config, seed),
            None => Err(JobRunError::UnknownKind(kind.to_string())),
        }
    }
}

/// Renders a `probe-mix` job config from its two operands.
pub fn probe_mix_config(a: u64, b: u64) -> String {
    (a, b).encode()
}

/// The standard registry every cluster host installs:
///
/// * `"die-tone-metrics"` — fabricate die `die_seed` from the preset
///   config and measure the test tone; config is the `CacheCodec`
///   4-tuple `(preset_index, f_target_hz, record_len, die_seed)`, the
///   result a [`adc_testbench::DieResult`] line. The derived seed is
///   unused: a die's identity *is* its fabrication seed, which travels
///   in the config (and therefore in the cache key).
/// * `"probe-mix"` — a microsecond-scale SplitMix64 mix of
///   `(a, b, seed)`, used by tests and `bench_cluster` to exercise
///   scheduling and prove the per-job seed plumbing is
///   schedule-independent without paying for die fabrication.
pub fn standard_registry() -> Arc<JobRegistry> {
    let mut registry = JobRegistry::new();
    registry.register("die-tone-metrics", |config, _seed| {
        let (preset, f_target_hz, record_len, die_seed): (u64, f64, u64, u64) =
            CacheCodec::decode(config)
                .ok_or_else(|| JobRunError::BadConfig(format!("die-tone-metrics {config:?}")))?;
        let preset = match preset {
            0 => Preset::Nominal110,
            1 => Preset::Ideal,
            2 => Preset::Sibling220,
            other => return Err(JobRunError::BadConfig(format!("preset index {other}"))),
        };
        let config = adc_server::preset_config(preset);
        let die = measure_die(&config, die_seed, f_target_hz, record_len as usize)
            .map_err(|e| JobRunError::Failed(e.to_string()))?;
        Ok(die.encode())
    });
    registry.register("probe-mix", |config, seed| {
        let (a, b): (u64, u64) = CacheCodec::decode(config)
            .ok_or_else(|| JobRunError::BadConfig(format!("probe-mix {config:?}")))?;
        Ok(split_mix64(a ^ split_mix64(b ^ seed)).encode())
    });
    Arc::new(registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kinds_and_bad_configs_are_typed() {
        let registry = standard_registry();
        assert_eq!(
            registry.run("no-such-kind", "", 0),
            Err(JobRunError::UnknownKind("no-such-kind".to_string()))
        );
        assert!(matches!(
            registry.run("probe-mix", "not a tuple", 0),
            Err(JobRunError::BadConfig(_))
        ));
        assert!(matches!(
            registry.run("die-tone-metrics", &(9u64, 10e6, 64u64, 1u64).encode(), 0),
            Err(JobRunError::BadConfig(_))
        ));
    }

    #[test]
    fn probe_mix_depends_on_config_and_seed_only() {
        let registry = standard_registry();
        let line = registry
            .run("probe-mix", &probe_mix_config(3, 4), 99)
            .unwrap();
        assert_eq!(
            registry.run("probe-mix", &probe_mix_config(3, 4), 99),
            Ok(line.clone())
        );
        assert_ne!(
            registry.run("probe-mix", &probe_mix_config(3, 4), 100),
            Ok(line.clone())
        );
        assert_ne!(
            registry.run("probe-mix", &probe_mix_config(4, 3), 99),
            Ok(line.clone())
        );
        let mixed: u64 = CacheCodec::decode(&line).expect("u64 line");
        assert_eq!(mixed, split_mix64(3 ^ split_mix64(4 ^ 99)));
    }

    #[test]
    fn die_tone_metrics_matches_the_in_process_measurement() {
        use adc_testbench::DieResult;
        let registry = standard_registry();
        let config = (0u64, 10e6, 512u64, 7u64).encode();
        let line = registry.run("die-tone-metrics", &config, 0).unwrap();
        let remote: DieResult = CacheCodec::decode(&line).expect("die line");
        let local = measure_die(
            &adc_pipeline::config::AdcConfig::nominal_110ms(),
            7,
            10e6,
            512,
        )
        .unwrap();
        assert_eq!(remote, local, "one implementation, one result");
        assert_eq!(line, local.encode(), "and one encoding");
    }
}
