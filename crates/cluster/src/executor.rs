//! The distributed campaign executor.
//!
//! [`ClusterExecutor::execute`] is the cluster counterpart of
//! [`adc_runtime::Campaign::run`]: it fans a [`ClusterCampaign`]'s jobs
//! out — here across remote `adc-server` hosts instead of local pool
//! threads — and assembles per-job result lines in id order. The
//! determinism contract is the same: scheduling, stealing, retries,
//! hedging, and host loss are invisible in the output.
//!
//! ## Scheduling
//!
//! Each host gets [`ClusterOptions::window`] worker connections; each
//! worker keeps at most one batch in flight (the per-host outstanding
//! window is therefore `window` batches). Idle workers first drain the
//! shared pending queue, then **steal**: an unacked batch outstanding
//! on another host is hedged — resubmitted under a fresh batch id —
//! so a stalled or dying host delays the campaign by at most one I/O
//! timeout. Duplicated results are harmless: completion slots are
//! first-writer-wins keyed by job id, and every execution of a job is
//! bit-identical by construction.
//!
//! ## Failure taxonomy
//!
//! * Transport / wire / timeout errors: the worker's in-flight batch is
//!   requeued for any worker, the connection is rebuilt with bounded
//!   backoff, and the host is declared lost after
//!   [`ClusterOptions::connect_retries`] failures.
//! * [`JobStatus::Rejected`] (transient: pool draining, deadline,
//!   worker panic): the job is resubmitted up to
//!   [`ClusterOptions::job_attempts`] times, then executed locally.
//! * [`JobStatus::Failed`] (deterministic): the campaign fails with a
//!   typed [`ClusterError::JobFailed`] — retrying elsewhere would fail
//!   identically.
//! * No peer reachable (at start or mid-run): remaining jobs degrade
//!   gracefully to local execution through the same [`JobRegistry`]
//!   the hosts run.
//!
//! ## Cache merging
//!
//! Before computing, worker 0 of each host probes the host's warm
//! cache for every still-undone key (*query-before-compute*); after a
//! successful campaign it pushes the computed lines back
//! (*fill-after-compute*), so caches converge across the cluster
//! through the shared canonical-key namespace. An attached local
//! [`ResultCache`] participates the same way.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use adc_runtime::ResultCache;
use adc_server::protocol::{JobBatchRequest, JobStatus, MAX_CACHE_ENTRIES};
use adc_server::{Client, ClientError, JobRunner};

use crate::campaign::ClusterCampaign;
use crate::registry::JobRegistry;

/// Tunables for one executor.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Worker connections (= outstanding batch window) per host.
    pub window: usize,
    /// Jobs per batch frame.
    pub batch_jobs: usize,
    /// Transient rejections tolerated per job before the executor runs
    /// it locally.
    pub job_attempts: u32,
    /// Connection (re)build attempts per worker before the host is
    /// declared lost.
    pub connect_retries: u32,
    /// Sleep between connection attempts (scaled by attempt number).
    pub backoff: Duration,
    /// Socket read timeout; bounds how long a dead host can sit on an
    /// unacked batch before the worker requeues it.
    pub io_timeout: Duration,
    /// Threads for local (fallback) execution; `0` uses all hardware
    /// parallelism.
    pub local_threads: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            window: 2,
            batch_jobs: 8,
            job_attempts: 3,
            connect_retries: 2,
            backoff: Duration::from_millis(50),
            io_timeout: Duration::from_secs(30),
            local_threads: 0,
        }
    }
}

/// Why a distributed campaign could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A job failed deterministically (same inputs fail on any host).
    JobFailed {
        /// The failing job's id.
        id: u64,
        /// The host-side failure rendering.
        detail: String,
    },
    /// A host returned a result line that does not decode as the
    /// expected type.
    BadResult {
        /// The job whose line was undecodable.
        id: u64,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::JobFailed { id, detail } => write!(f, "job {id} failed: {detail}"),
            Self::BadResult { id, detail } => write!(f, "job {id} bad result: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Where/how the campaign's work actually ran — for logs, benches, and
/// the tests that assert scheduling is invisible in the results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Total jobs in the campaign.
    pub jobs: u64,
    /// Peers the executor was configured with.
    pub hosts: u64,
    /// Jobs computed fresh on a remote host.
    pub remote_computed: u64,
    /// Jobs answered from a remote host's warm cache inside a batch.
    pub remote_cached: u64,
    /// Jobs satisfied by the pre-compute `CacheQuery` sweep.
    pub prefetch_hits: u64,
    /// Jobs satisfied by the attached local cache before any dispatch.
    pub local_cache_hits: u64,
    /// Jobs computed locally (no peers, lost hosts, or rejection cap).
    pub local_computed: u64,
    /// Batches resubmitted after transport failure or rejection.
    pub resubmitted: u64,
    /// Batches hedged by stealing another host's unacked work.
    pub stolen: u64,
    /// Hosts declared lost mid-campaign.
    pub hosts_lost: u64,
}

/// A completed distributed campaign.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-job `CacheCodec` result lines, in job-id order —
    /// bit-identical to what an in-process run computes.
    pub lines: Vec<String>,
    /// Execution accounting.
    pub stats: ClusterStats,
}

/// One batch in flight on some host's worker.
#[derive(Debug, Clone)]
struct Flight {
    host: usize,
    jobs: Vec<usize>,
    hedged: bool,
}

/// The shared scheduler state. Everything that decides *what runs
/// where* lives behind this one lock; everything that decides *what the
/// results are* lives in the jobs themselves — which is why the lock
/// can be this coarse without touching determinism.
#[derive(Debug)]
struct Sched {
    pending: VecDeque<Vec<usize>>,
    outstanding: BTreeMap<u64, Flight>,
    done: Vec<Option<String>>,
    attempts: Vec<u32>,
    remaining: usize,
    failed: Option<ClusterError>,
    next_batch_id: u64,
    host_down: Vec<bool>,
    stats: ClusterStats,
}

#[derive(Debug)]
struct Shared {
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// What a worker should do next.
enum Work {
    Batch(u64, Vec<usize>),
    Finished,
}

/// How one remote job outcome was settled.
enum Settle {
    Applied,
    RunLocally(usize),
}

/// Farms [`ClusterCampaign`]s out to `adc-server` peers.
///
/// Construction is cheap; connections are opened per [`execute`] call.
///
/// [`execute`]: ClusterExecutor::execute
pub struct ClusterExecutor {
    peers: Vec<String>,
    options: ClusterOptions,
    registry: Arc<JobRegistry>,
    cache: Option<Arc<ResultCache>>,
}

impl std::fmt::Debug for ClusterExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterExecutor")
            .field("peers", &self.peers)
            .field("options", &self.options)
            .field("cached", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

impl ClusterExecutor {
    /// An executor over `peers` (`host:port` strings; empty means
    /// all-local execution) sharing `registry` with the hosts.
    pub fn new(peers: Vec<String>, registry: Arc<JobRegistry>) -> Self {
        Self {
            peers,
            options: ClusterOptions::default(),
            registry,
            cache: None,
        }
    }

    /// Replaces the tunables (builder style).
    #[must_use]
    pub fn options(mut self, options: ClusterOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a local result cache (builder style): consulted before
    /// any dispatch, filled after the campaign, merged with host caches
    /// through the shared canonical-key namespace.
    #[must_use]
    pub fn cached(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the campaign to completion and returns per-job result
    /// lines in id order.
    ///
    /// # Errors
    ///
    /// [`ClusterError::JobFailed`] when any job fails deterministically
    /// (transient host trouble is retried, hedged, or absorbed by local
    /// execution instead).
    pub fn execute(&self, campaign: &ClusterCampaign) -> Result<ClusterReport, ClusterError> {
        let _task = adc_trace::task(campaign.seed);
        let _span = adc_trace::span_with("cluster-campaign", campaign.len() as u64);
        let n = campaign.len();
        let mut sched = Sched {
            pending: VecDeque::new(),
            outstanding: BTreeMap::new(),
            done: (0..n).map(|_| None).collect(),
            attempts: vec![0; n],
            remaining: n,
            failed: None,
            next_batch_id: 0,
            host_down: vec![false; self.peers.len()],
            stats: ClusterStats {
                jobs: n as u64,
                hosts: self.peers.len() as u64,
                ..ClusterStats::default()
            },
        };

        // Local cache first: anything already known never leaves home.
        if let Some(cache) = &self.cache {
            cache.preload(&campaign.name);
            for (id, job) in campaign.jobs().iter().enumerate() {
                if let Some(line) = cache.get_line(job.key) {
                    sched.done[id] = Some(line);
                    sched.remaining -= 1;
                    sched.stats.local_cache_hits += 1;
                }
            }
        }

        let misses: Vec<usize> = (0..n).filter(|&i| sched.done[i].is_none()).collect();
        for chunk in misses.chunks(self.options.batch_jobs.max(1)) {
            sched.pending.push_back(chunk.to_vec());
        }
        let shared = Shared {
            sched: Mutex::new(sched),
            cv: Condvar::new(),
        };

        std::thread::scope(|scope| {
            for (host, addr) in self.peers.iter().enumerate() {
                for slot in 0..self.options.window.max(1) {
                    let shared = &shared;
                    scope.spawn(move || {
                        let _task = adc_trace::task(campaign.seed);
                        let _lane = adc_trace::span_with("cluster-host", host as u64);
                        host_worker(
                            shared,
                            campaign,
                            &self.options,
                            self.registry.as_ref(),
                            host,
                            addr,
                            slot,
                        );
                    });
                }
            }
        });

        // Whatever the peers did not finish — because there were none,
        // or they were lost — runs right here, bit-identically.
        self.run_remaining_locally(&shared, campaign);

        let sched = shared
            .sched
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(err) = sched.failed {
            return Err(err);
        }
        let lines: Vec<String> = sched
            .done
            .into_iter()
            .enumerate()
            .map(|(id, line)| {
                line.unwrap_or_else(|| unreachable!("job {id} unfinished with remaining == 0"))
            })
            .collect();

        // Fill-after-compute for the attached local cache.
        if let Some(cache) = &self.cache {
            for (job, line) in campaign.jobs().iter().zip(&lines) {
                cache.put_line(job.key, line);
            }
            let _ = cache.persist(&campaign.name);
        }
        Ok(ClusterReport {
            lines,
            stats: sched.stats,
        })
    }

    /// Drains every still-undone job through the local registry.
    fn run_remaining_locally(&self, shared: &Shared, campaign: &ClusterCampaign) {
        let todo: Vec<usize> = {
            let sched = shared.lock();
            if sched.failed.is_some() {
                return;
            }
            (0..campaign.len())
                .filter(|&i| sched.done[i].is_none())
                .collect()
        };
        if todo.is_empty() {
            return;
        }
        let threads = if self.options.local_threads == 0 {
            adc_runtime::default_threads()
        } else {
            self.options.local_threads
        };
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1).min(todo.len()) {
                scope.spawn(|| loop {
                    let at = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&id) = todo.get(at) else { break };
                    run_local_job(shared, campaign, self.registry.as_ref(), id);
                    if shared.lock().failed.is_some() {
                        break;
                    }
                });
            }
        });
    }
}

/// Executes job `id` through the registry and applies the outcome.
fn run_local_job(shared: &Shared, campaign: &ClusterCampaign, registry: &JobRegistry, id: usize) {
    let job = &campaign.jobs()[id];
    let outcome = registry.run(&campaign.kind, &job.config, campaign.job_seed(id as u64));
    let mut sched = shared.lock();
    match outcome {
        Ok(line) => {
            if sched.done[id].is_none() {
                sched.done[id] = Some(line);
                sched.remaining -= 1;
                sched.stats.local_computed += 1;
            }
        }
        Err(e) => {
            if sched.done[id].is_none() && sched.failed.is_none() {
                sched.failed = Some(ClusterError::JobFailed {
                    id: id as u64,
                    detail: e.to_string(),
                });
            }
        }
    }
    shared.cv.notify_all();
}

/// Connects to `addr` with bounded, backed-off retries.
fn connect(addr: &str, options: &ClusterOptions) -> Option<Client> {
    for attempt in 0..=options.connect_retries {
        if attempt > 0 {
            std::thread::sleep(options.backoff * attempt);
        }
        if let Ok(client) = Client::connect(addr) {
            if client.set_read_timeout(Some(options.io_timeout)).is_ok() {
                return Some(client);
            }
        }
    }
    None
}

/// Picks this worker's next action: drain pending, else steal an
/// unacked batch from another host, else wait for state to change.
fn take_work(shared: &Shared, options: &ClusterOptions, host: usize) -> Work {
    let mut sched = shared.lock();
    loop {
        if sched.failed.is_some() || sched.remaining == 0 {
            return Work::Finished;
        }
        while let Some(batch) = sched.pending.pop_front() {
            let jobs: Vec<usize> = batch
                .into_iter()
                .filter(|&i| sched.done[i].is_none())
                .collect();
            if jobs.is_empty() {
                continue;
            }
            let batch_id = sched.next_batch_id;
            sched.next_batch_id += 1;
            sched.outstanding.insert(
                batch_id,
                Flight {
                    host,
                    jobs: jobs.clone(),
                    hedged: false,
                },
            );
            return Work::Batch(batch_id, jobs);
        }
        // Steal: hedge the oldest unacked batch sitting on another
        // host. The victim flight is marked so each batch is hedged at
        // most once at a time; if both executions die, requeueing
        // clears the mark and the cycle restarts.
        let victim = sched
            .outstanding
            .iter()
            .filter(|(_, f)| !f.hedged && f.host != host)
            .map(|(&id, f)| (id, f.jobs.clone()))
            .next();
        if let Some((victim_id, jobs)) = victim {
            let jobs: Vec<usize> = jobs
                .into_iter()
                .filter(|&i| sched.done[i].is_none())
                .collect();
            if let Some(f) = sched.outstanding.get_mut(&victim_id) {
                f.hedged = true;
            }
            if jobs.is_empty() {
                continue;
            }
            let batch_id = sched.next_batch_id;
            sched.next_batch_id += 1;
            sched.outstanding.insert(
                batch_id,
                Flight {
                    host,
                    jobs: jobs.clone(),
                    hedged: true,
                },
            );
            sched.stats.stolen += 1;
            return Work::Batch(batch_id, jobs);
        }
        let (guard, _timeout) = shared
            .cv
            .wait_timeout(sched, options.backoff.max(Duration::from_millis(10)))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sched = guard;
    }
}

/// Removes a flight and requeues its undone jobs for any worker.
fn requeue_flight(shared: &Shared, batch_id: u64) {
    let mut sched = shared.lock();
    if let Some(flight) = sched.outstanding.remove(&batch_id) {
        let jobs: Vec<usize> = flight
            .jobs
            .into_iter()
            .filter(|&i| sched.done[i].is_none())
            .collect();
        if !jobs.is_empty() {
            sched.pending.push_back(jobs);
            sched.stats.resubmitted += 1;
        }
    }
    shared.cv.notify_all();
}

/// Applies one result batch: first-writer-wins per job slot, typed
/// failure on deterministic errors, requeue-or-local on rejections.
fn apply_batch(
    shared: &Shared,
    options: &ClusterOptions,
    batch_id: u64,
    outcomes: &[adc_server::JobOutcome],
) -> Vec<Settle> {
    let mut sched = shared.lock();
    sched.outstanding.remove(&batch_id);
    let mut settled = Vec::with_capacity(outcomes.len());
    let mut requeue = Vec::new();
    for outcome in outcomes {
        let id = outcome.id as usize;
        if id >= sched.done.len() {
            if sched.failed.is_none() {
                sched.failed = Some(ClusterError::BadResult {
                    id: outcome.id,
                    detail: "job id out of range".to_string(),
                });
            }
            break;
        }
        match outcome.status {
            JobStatus::Computed | JobStatus::Cached => {
                if sched.done[id].is_none() {
                    sched.done[id] = Some(outcome.value.clone());
                    sched.remaining -= 1;
                    if outcome.status == JobStatus::Computed {
                        sched.stats.remote_computed += 1;
                    } else {
                        sched.stats.remote_cached += 1;
                    }
                }
                settled.push(Settle::Applied);
            }
            JobStatus::Failed => {
                if sched.done[id].is_none() && sched.failed.is_none() {
                    sched.failed = Some(ClusterError::JobFailed {
                        id: outcome.id,
                        detail: outcome.value.clone(),
                    });
                }
                settled.push(Settle::Applied);
            }
            JobStatus::Rejected => {
                if sched.done[id].is_none() {
                    sched.attempts[id] += 1;
                    if sched.attempts[id] >= options.job_attempts {
                        settled.push(Settle::RunLocally(id));
                    } else {
                        requeue.push(id);
                        settled.push(Settle::Applied);
                    }
                } else {
                    settled.push(Settle::Applied);
                }
            }
        }
    }
    if !requeue.is_empty() {
        sched.pending.push_back(requeue);
        sched.stats.resubmitted += 1;
    }
    drop(sched);
    shared.cv.notify_all();
    settled
}

/// Marks `host` lost (once) for the stats.
fn host_lost(shared: &Shared, host: usize) {
    let mut sched = shared.lock();
    if !sched.host_down[host] {
        sched.host_down[host] = true;
        sched.stats.hosts_lost += 1;
    }
    drop(sched);
    shared.cv.notify_all();
}

/// Pre-compute cache sweep: asks the host for every still-undone key
/// and applies the hits (query-before-compute).
fn prefetch(shared: &Shared, campaign: &ClusterCampaign, client: &mut Client) {
    let wanted: Vec<(usize, u64)> = {
        let sched = shared.lock();
        campaign
            .jobs()
            .iter()
            .enumerate()
            .filter(|&(id, _)| sched.done[id].is_none())
            .map(|(id, job)| (id, job.key))
            .collect()
    };
    let by_key: BTreeMap<u64, usize> = wanted.iter().map(|&(id, key)| (key, id)).collect();
    for chunk in wanted.chunks(MAX_CACHE_ENTRIES as usize) {
        let keys: Vec<u64> = chunk.iter().map(|&(_, key)| key).collect();
        let Ok(hits) = client.cache_query(&campaign.name, &keys) else {
            return; // best-effort: a failed sweep just means computing
        };
        let mut sched = shared.lock();
        for (key, line) in hits {
            if let Some(&id) = by_key.get(&key) {
                if sched.done[id].is_none() {
                    sched.done[id] = Some(line);
                    sched.remaining -= 1;
                    sched.stats.prefetch_hits += 1;
                }
            }
        }
        drop(sched);
        shared.cv.notify_all();
    }
}

/// Post-campaign cache merge: pushes every computed line to the host
/// (fill-after-compute). Best-effort; the host dedups.
fn backfill(shared: &Shared, campaign: &ClusterCampaign, client: &mut Client) {
    let entries: Vec<(u64, String)> = {
        let sched = shared.lock();
        if sched.failed.is_some() || sched.remaining != 0 {
            return;
        }
        campaign
            .jobs()
            .iter()
            .enumerate()
            .filter_map(|(id, job)| sched.done[id].clone().map(|line| (job.key, line)))
            .collect()
    };
    for chunk in entries.chunks(MAX_CACHE_ENTRIES as usize) {
        if client.cache_fill(&campaign.name, chunk).is_err() {
            return;
        }
    }
}

/// One worker connection's life: connect, prefetch (slot 0), then pull
/// batches until the campaign settles; on transport trouble requeue,
/// reconnect, and eventually declare the host lost.
fn host_worker(
    shared: &Shared,
    campaign: &ClusterCampaign,
    options: &ClusterOptions,
    registry: &JobRegistry,
    host: usize,
    addr: &str,
    slot: usize,
) {
    let Some(mut client) = connect(addr, options) else {
        host_lost(shared, host);
        return;
    };
    if slot == 0 {
        prefetch(shared, campaign, &mut client);
    }
    loop {
        let (batch_id, ids) = match take_work(shared, options, host) {
            Work::Finished => break,
            Work::Batch(batch_id, ids) => (batch_id, ids),
        };
        let request = JobBatchRequest {
            batch_id,
            campaign: campaign.name.clone(),
            kind: campaign.kind.clone(),
            deadline_ms: campaign.deadline_ms,
            jobs: campaign.specs(&ids),
        };
        match client.job_batch(&request) {
            Ok(result) => {
                for settle in apply_batch(shared, options, batch_id, &result.outcomes) {
                    if let Settle::RunLocally(id) = settle {
                        run_local_job(shared, campaign, registry, id);
                    }
                }
            }
            Err(ClientError::Server { .. }) => {
                // Typed refusal (no runner, draining, ...): this host
                // cannot serve this campaign — route its work
                // elsewhere and retire the connection.
                requeue_flight(shared, batch_id);
                host_lost(shared, host);
                return;
            }
            Err(_) => {
                // Transport/wire trouble: the batch's fate on the host
                // is unknown — requeueing is safe because completion
                // slots are first-writer-wins and job results are
                // bit-identical wherever they run.
                requeue_flight(shared, batch_id);
                match connect(addr, options) {
                    Some(fresh) => client = fresh,
                    None => {
                        host_lost(shared, host);
                        return;
                    }
                }
            }
        }
    }
    if slot == 0 {
        backfill(shared, campaign, &mut client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{probe_mix_config, standard_registry};

    fn probe_campaign(jobs: u64) -> ClusterCampaign {
        let mut campaign = ClusterCampaign::new("probe-test", "probe-mix", 77);
        for a in 0..jobs {
            campaign.push_job(
                probe_mix_config(a, 5),
                adc_runtime::canonical_key("probe-test", &a),
            );
        }
        campaign
    }

    #[test]
    fn no_peers_degrades_to_local_execution() {
        let campaign = probe_campaign(17);
        let executor = ClusterExecutor::new(Vec::new(), standard_registry());
        let report = executor.execute(&campaign).expect("local run");
        assert_eq!(report.lines.len(), 17);
        assert_eq!(report.stats.local_computed, 17);
        assert_eq!(report.stats.remote_computed, 0);
        // And the lines are the registry's own outputs.
        let registry = standard_registry();
        for (id, line) in report.lines.iter().enumerate() {
            let want = registry
                .run(
                    "probe-mix",
                    &campaign.jobs()[id].config,
                    campaign.job_seed(id as u64),
                )
                .unwrap();
            assert_eq!(line, &want);
        }
    }

    #[test]
    fn unreachable_peers_degrade_to_local_execution() {
        let campaign = probe_campaign(5);
        // Reserved port on localhost that nothing listens on: bind and
        // drop to learn a free port, then point the executor at it.
        let dead = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().to_string()
        };
        let executor =
            ClusterExecutor::new(vec![dead], standard_registry()).options(ClusterOptions {
                connect_retries: 0,
                backoff: Duration::from_millis(1),
                ..ClusterOptions::default()
            });
        let report = executor.execute(&campaign).expect("degraded run");
        assert_eq!(report.stats.local_computed, 5);
        assert_eq!(report.stats.hosts_lost, 1);
    }

    #[test]
    fn local_cache_hits_skip_execution_and_fills_persist() {
        let cache = Arc::new(ResultCache::in_memory());
        let campaign = probe_campaign(6);
        let executor =
            ClusterExecutor::new(Vec::new(), standard_registry()).cached(Arc::clone(&cache));
        let first = executor.execute(&campaign).expect("first run");
        assert_eq!(first.stats.local_computed, 6);
        let executor =
            ClusterExecutor::new(Vec::new(), standard_registry()).cached(Arc::clone(&cache));
        let second = executor.execute(&campaign).expect("second run");
        assert_eq!(second.stats.local_cache_hits, 6);
        assert_eq!(second.stats.local_computed, 0);
        assert_eq!(first.lines, second.lines);
    }

    #[test]
    fn deterministic_failures_are_typed_not_retried() {
        let mut campaign = ClusterCampaign::new("bad", "no-such-kind", 0);
        campaign.push_job("x", 1);
        let executor = ClusterExecutor::new(Vec::new(), standard_registry());
        let err = executor.execute(&campaign).unwrap_err();
        assert!(
            matches!(err, ClusterError::JobFailed { id: 0, ref detail } if detail.contains("unknown job kind")),
            "{err}"
        );
    }

    #[test]
    fn empty_campaigns_are_fine() {
        let campaign = ClusterCampaign::new("empty", "probe-mix", 0);
        let executor = ClusterExecutor::new(Vec::new(), standard_registry());
        let report = executor.execute(&campaign).expect("empty");
        assert!(report.lines.is_empty());
        assert_eq!(report.stats.jobs, 0);
    }
}
