//! Criterion benches for the bias/power subsystem: Eq. 1 evaluation and
//! full Fig. 4 sweeps.

use adc_testbench::sweep::SweepRunner;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_power_sweep(c: &mut Criterion) {
    let rates: Vec<f64> = (1..=26).map(|i| i as f64 * 5e6).collect();
    c.bench_function("fig4_power_sweep_26pts", |b| {
        let runner = SweepRunner::nominal();
        b.iter(|| runner.power_sweep(&rates).expect("all rates build"));
    });
}

fn bench_eq1(c: &mut Criterion) {
    use adc_analog::capacitor::Capacitor;
    use adc_bias::generator::{BiasGenerator, ScBiasGenerator};
    let gen = ScBiasGenerator::new(Capacitor::ideal(1e-12), 0.9);
    c.bench_function("eq1_master_current", |b| {
        let mut f = 1e6;
        b.iter(|| {
            f += 1.0;
            gen.master_current_a(f)
        });
    });
}

criterion_group!(benches, bench_power_sweep, bench_eq1);
criterion_main!(benches);
