//! Criterion benches for the cycle-accurate digital back-end.

use adc_digital::backend::{CycleWords, DigitalBackend};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_backend_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("digital_backend");
    group.throughput(Throughput::Elements(1));
    group.bench_function("clock_10_stage", |b| {
        let mut backend = DigitalBackend::new(10);
        let words = CycleWords {
            stage_words: vec![1, 2, 0, 1, 2, 1, 0, 2, 1, 1],
            flash_word: 2,
        };
        b.iter(|| backend.clock(&words));
    });
    group.finish();
}

fn bench_correction_sum(c: &mut Criterion) {
    use adc_digital::adder::correction_sum;
    c.bench_function("ripple_correction_sum", |b| {
        let words = [1u8, 2, 0, 1, 2, 1, 0, 2, 1, 1];
        b.iter(|| correction_sum(&words, 3));
    });
}

criterion_group!(benches, bench_backend_clock, bench_correction_sum);
criterion_main!(benches);
