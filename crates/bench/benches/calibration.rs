//! Criterion benches for foreground calibration: the training-solve cost
//! an on-chip engine (or production test) pays.

use adc_pipeline::calibration::{calibrate_foreground, training_levels};
use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("calibrate_256_levels", |b| {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).expect("builds");
        let levels = training_levels(256, 1.0);
        b.iter(|| calibrate_foreground(&mut adc, &levels, 1).expect("calibrates"));
    });
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
