//! Criterion benches for the from-scratch radix-2 FFT: throughput across
//! the record sizes the measurement bench uses.

use adc_spectral::complex::Complex64;
use adc_spectral::fft::{fft_in_place, power_spectrum_one_sided};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_in_place");
    for &n in &[1024usize, 8192, 65536] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut work = data.clone();
                fft_in_place(&mut work).expect("power-of-two length");
                work[1]
            });
        });
    }
    group.finish();
}

fn bench_power_spectrum(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_spectrum");
    for &n in &[8192usize, 65536] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
            b.iter(|| power_spectrum_one_sided(&signal).expect("power-of-two length"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_power_spectrum);
criterion_main!(benches);
