//! Criterion benches for the metrology layer: single-tone analysis and
//! the sine-histogram linearity test.

use adc_spectral::linearity::sine_histogram;
use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_analyze_tone(c: &mut Criterion) {
    let n = 8192;
    let signal: Vec<f64> = (0..n)
        .map(|i| {
            (2.0 * std::f64::consts::PI * 745.0 * i as f64 / n as f64).sin()
                + 1e-4 * (2.0 * std::f64::consts::PI * 2235.0 * i as f64 / n as f64).sin()
        })
        .collect();
    let cfg = ToneAnalysisConfig::coherent();
    let mut group = c.benchmark_group("analyze_tone");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("8192pt", |b| {
        b.iter(|| analyze_tone(&signal, &cfg).expect("valid record"))
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let n = 1 << 18;
    let codes: Vec<u32> = (0..n)
        .map(|i| {
            let v = 1.02 * (0.317_233_091 * i as f64).sin();
            (((v + 1.0) / 2.0 * 4096.0).floor() as i64).clamp(0, 4095) as u32
        })
        .collect();
    let mut group = c.benchmark_group("sine_histogram");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("262144x12b", |b| {
        b.iter(|| sine_histogram(&codes, 4096).expect("overdriven record"))
    });
    group.finish();
}

criterion_group!(benches, bench_analyze_tone, bench_histogram);
criterion_main!(benches);
