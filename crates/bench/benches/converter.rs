//! Criterion benches for the behavioral converter: conversion throughput
//! (samples/second of simulated ADC) and die fabrication cost.

use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_testbench::signal::SineSource;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert_waveform");
    for (label, config) in [
        ("ideal", AdcConfig::ideal(110e6)),
        ("nominal", AdcConfig::nominal_110ms()),
    ] {
        let n = 4096usize;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            let mut adc = PipelineAdc::build(cfg.clone(), 7).expect("config builds");
            let tone = SineSource::clean(0.999, 10.07e6);
            b.iter(|| adc.convert_waveform(&tone, n));
        });
    }
    group.finish();
}

fn bench_fabrication(c: &mut Criterion) {
    c.bench_function("build_nominal_die", |b| {
        let cfg = AdcConfig::nominal_110ms();
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            PipelineAdc::build(cfg.clone(), seed).expect("config builds")
        });
    });
}

criterion_group!(benches, bench_conversion, bench_fabrication);
criterion_main!(benches);
