//! The shared command line of the campaign binaries.
//!
//! Every campaign binary accepts the same knobs, as flags or
//! environment variables (flags win):
//!
//! | flag | env | default | meaning |
//! |---|---|---|---|
//! | `--threads N` | `ADC_THREADS` | `0` (all cores) | campaign worker threads |
//! | `--cache-dir PATH` | `ADC_CACHE_DIR` | `target/campaign-cache` | point-cache directory (empty disables) |
//! | `--trace-out PATH` | `ADC_TRACE_OUT` | off | write a Chrome trace-event JSON profile |
//! | `--peers H:P,...` | `ADC_PEERS` | none | farm supported campaigns to remote `adc-server` hosts |
//!
//! Parsing is a total function over the argument list
//! ([`CampaignArgs::parse_from`]) so the precedence rules are unit
//! tested; the binaries call [`CampaignArgs::parse`], which applies the
//! process environment and turns errors and `--help` into the usual
//! exit codes.

use std::sync::Arc;

use adc_runtime::ResultCache;
use adc_testbench::{CampaignReporter, RunPolicy};

/// Usage text printed for `--help` (binary name substituted in).
const USAGE: &str = "\
usage: {bin} [--threads N] [--cache-dir PATH] [--trace-out PATH]

  --threads N      campaign worker threads (0 = all cores)
                   [env: ADC_THREADS]
  --cache-dir PATH persistent point-cache directory; pass an empty
                   string to disable caching
                   [env: ADC_CACHE_DIR] [default: target/campaign-cache]
  --trace-out PATH profile the run: write Chrome trace-event JSON to
                   PATH (open in chrome://tracing or Perfetto) and
                   print a per-span summary to stderr on exit
                   [env: ADC_TRACE_OUT] [default: disabled]
  --peers LIST     comma-separated HOST:PORT adc-server peers; campaigns
                   that support distribution farm their jobs out and
                   fall back to local execution when no peer answers
                   (empty string disables)
                   [env: ADC_PEERS] [default: none]
  -h, --help       print this help
";

/// The parsed campaign knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignArgs {
    /// Worker threads; `0` means all hardware parallelism.
    pub threads: usize,
    /// Point-cache directory; empty disables caching.
    pub cache_dir: String,
    /// Chrome trace-event JSON output path; empty disables tracing.
    pub trace_out: String,
    /// `HOST:PORT` adc-server peers to farm supported campaigns to;
    /// empty runs everything in-process.
    pub peers: Vec<String>,
}

impl Default for CampaignArgs {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_dir: "target/campaign-cache".to_string(),
            trace_out: String::new(),
            peers: Vec::new(),
        }
    }
}

/// Splits a `HOST:PORT,HOST:PORT,...` list; empty items are dropped,
/// so `""` cleanly disables distribution.
fn parse_peers(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// What an argument list parsed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// Knobs resolved (flags over env over defaults).
    Args(CampaignArgs),
    /// `--help` / `-h` was requested.
    Help,
}

impl CampaignArgs {
    /// Parses the process arguments and environment; prints usage and
    /// exits for `--help`, prints the error and exits non-zero for a
    /// malformed command line.
    pub fn parse() -> Self {
        let bin = std::env::args().next().unwrap_or_else(|| "bench".into());
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from(&args, |name| std::env::var(name).ok()) {
            Ok(ParseOutcome::Args(parsed)) => parsed,
            Ok(ParseOutcome::Help) => {
                print!("{}", USAGE.replace("{bin}", &bin));
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("{bin}: {msg}");
                eprint!("{}", USAGE.replace("{bin}", &bin));
                std::process::exit(2);
            }
        }
    }

    /// The pure parser: `args` are the arguments after the binary name,
    /// `env` resolves environment variables. Flags override env values,
    /// which override defaults.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing flag
    /// values, or unparsable numbers.
    pub fn parse_from<E>(args: &[String], env: E) -> Result<ParseOutcome, String>
    where
        E: Fn(&str) -> Option<String>,
    {
        let mut parsed = Self {
            threads: match env("ADC_THREADS") {
                Some(v) => parse_threads(&v)
                    .map_err(|e| format!("invalid ADC_THREADS value {v:?}: {e}"))?,
                None => 0,
            },
            cache_dir: env("ADC_CACHE_DIR").unwrap_or_else(|| CampaignArgs::default().cache_dir),
            trace_out: env("ADC_TRACE_OUT").unwrap_or_default(),
            peers: env("ADC_PEERS")
                .as_deref()
                .map(parse_peers)
                .unwrap_or_default(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (arg.as_str(), None),
            };
            let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value")),
                }
            };
            match flag {
                "--threads" => {
                    let v = value(&mut it)?;
                    parsed.threads =
                        parse_threads(&v).map_err(|e| format!("invalid --threads {v:?}: {e}"))?;
                }
                "--cache-dir" => parsed.cache_dir = value(&mut it)?,
                "--trace-out" => parsed.trace_out = value(&mut it)?,
                "--peers" => parsed.peers = parse_peers(&value(&mut it)?),
                "--help" | "-h" => return Ok(ParseOutcome::Help),
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(ParseOutcome::Args(parsed))
    }

    /// Builds the execution policy these knobs describe: the worker
    /// count, progress narration on stderr, and (unless disabled) the
    /// on-disk point cache.
    pub fn policy(&self) -> RunPolicy {
        let mut policy =
            RunPolicy::parallel(self.threads).observe(Arc::new(CampaignReporter::stderr()));
        if !self.cache_dir.is_empty() {
            match ResultCache::on_disk(&self.cache_dir) {
                Ok(cache) => policy = policy.cached(Arc::new(cache)),
                Err(e) => eprintln!("point cache disabled ({}: {e})", self.cache_dir),
            }
        }
        policy
    }

    /// Starts the tracing session these knobs describe: a live
    /// collector writing to `trace_out` on drop, or an inert session
    /// when no path was given. Keep the returned guard alive for the
    /// part of the run that should be profiled (typically all of it).
    pub fn trace_session(&self) -> TraceSession {
        if self.trace_out.is_empty() {
            TraceSession::disabled()
        } else {
            TraceSession::to_file(&self.trace_out)
        }
    }
}

/// A profiling scope: installs the global trace collector on creation
/// and, on drop, drains it, writes the Chrome trace-event JSON file,
/// and prints the per-span summary table to stderr.
#[derive(Debug)]
pub struct TraceSession {
    out: Option<(String, adc_trace::ActiveTrace)>,
}

impl TraceSession {
    /// An inert session: no collector, no output, zero recording cost.
    pub fn disabled() -> Self {
        Self { out: None }
    }

    /// Installs the collector and arranges for the trace to land at
    /// `path` when the session drops. If another collector is already
    /// active the session degrades to disabled with a warning.
    pub fn to_file(path: &str) -> Self {
        match adc_trace::Collector::install() {
            Some(active) => Self {
                out: Some((path.to_string(), active)),
            },
            None => {
                eprintln!("trace: a collector is already active; --trace-out ignored");
                Self::disabled()
            }
        }
    }

    /// `true` when this session is actively recording.
    pub fn is_recording(&self) -> bool {
        self.out.is_some()
    }

    /// Ends the session now (drop does the same implicitly).
    pub fn finish(self) {}
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        let Some((path, active)) = self.out.take() else {
            return;
        };
        let trace = active.finish();
        let summary = adc_trace::Summary::compute(&trace);
        match std::fs::write(&path, adc_trace::chrome_json(&trace)) {
            Ok(()) => eprintln!(
                "trace: {} events -> {path} (open in chrome://tracing or https://ui.perfetto.dev)",
                trace.len()
            ),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
        eprint!("{}", summary.render());
    }
}

fn parse_threads(v: &str) -> Result<usize, String> {
    v.trim()
        .parse()
        .map_err(|_| "expected a number".to_string())
}

/// Reads a positive sizing knob from the environment, falling back to
/// `default` when the variable is unset, unparsable, or zero.
///
/// Benchmarks and load generators take their workload dimensions
/// through this helper so every environment read in the workspace
/// lives in this one module (the `no-env-read` lint rule points here).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The cache directory a campaign binary resolves when no flag is
/// given: `ADC_CACHE_DIR` when set, else the built-in default. Lives
/// here for the same single-environment-read-site reason as
/// [`env_usize`].
pub fn default_cache_dir() -> String {
    std::env::var("ADC_CACHE_DIR").unwrap_or_else(|_| CampaignArgs::default().cache_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_without_flags_or_env() {
        let out = CampaignArgs::parse_from(&[], no_env).unwrap();
        assert_eq!(out, ParseOutcome::Args(CampaignArgs::default()));
    }

    #[test]
    fn env_overrides_defaults_and_flags_override_env() {
        let env = |name: &str| match name {
            "ADC_THREADS" => Some("3".to_string()),
            "ADC_CACHE_DIR" => Some("/tmp/env-cache".to_string()),
            _ => None,
        };
        let ParseOutcome::Args(from_env) = CampaignArgs::parse_from(&[], env).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(from_env.threads, 3);
        assert_eq!(from_env.cache_dir, "/tmp/env-cache");

        let args = strings(&["--threads", "8", "--cache-dir=/tmp/flag-cache"]);
        let ParseOutcome::Args(from_flags) = CampaignArgs::parse_from(&args, env).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(from_flags.threads, 8);
        assert_eq!(from_flags.cache_dir, "/tmp/flag-cache");
    }

    #[test]
    fn empty_cache_dir_disables_the_cache() {
        let args = strings(&["--cache-dir", ""]);
        let ParseOutcome::Args(parsed) = CampaignArgs::parse_from(&args, no_env).unwrap() else {
            panic!("expected args");
        };
        assert!(parsed.cache_dir.is_empty());
        assert!(parsed.policy().cache.is_none());
    }

    #[test]
    fn help_and_errors_are_reported() {
        assert_eq!(
            CampaignArgs::parse_from(&strings(&["-h"]), no_env),
            Ok(ParseOutcome::Help)
        );
        assert!(CampaignArgs::parse_from(&strings(&["--threads"]), no_env)
            .unwrap_err()
            .contains("needs a value"));
        assert!(
            CampaignArgs::parse_from(&strings(&["--threads", "many"]), no_env)
                .unwrap_err()
                .contains("invalid --threads")
        );
        assert!(
            CampaignArgs::parse_from(&strings(&["--frobnicate"]), no_env)
                .unwrap_err()
                .contains("unknown argument")
        );
        let bad_env = |name: &str| (name == "ADC_THREADS").then(|| "NaN".to_string());
        assert!(CampaignArgs::parse_from(&[], bad_env)
            .unwrap_err()
            .contains("ADC_THREADS"));
    }

    #[test]
    fn policy_reflects_thread_knob() {
        let args = CampaignArgs {
            threads: 5,
            cache_dir: String::new(),
            trace_out: String::new(),
            peers: Vec::new(),
        };
        assert_eq!(args.policy().threads, 5);
        assert!(!args.trace_session().is_recording());
    }

    #[test]
    fn peers_parse_from_flag_and_env_with_flag_priority() {
        let env = |name: &str| (name == "ADC_PEERS").then(|| "a:1, b:2,,".to_string());
        let ParseOutcome::Args(from_env) = CampaignArgs::parse_from(&[], env).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(
            from_env.peers,
            vec!["a:1", "b:2"],
            "trimmed, empties dropped"
        );

        let args = strings(&["--peers", "c:3"]);
        let ParseOutcome::Args(from_flag) = CampaignArgs::parse_from(&args, env).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(from_flag.peers, vec!["c:3"]);

        let args = strings(&["--peers", ""]);
        let ParseOutcome::Args(disabled) = CampaignArgs::parse_from(&args, env).unwrap() else {
            panic!("expected args");
        };
        assert!(disabled.peers.is_empty(), "empty flag disables env peers");
    }

    #[test]
    fn trace_out_parses_from_flag_and_env() {
        let env = |name: &str| (name == "ADC_TRACE_OUT").then(|| "/tmp/env.json".to_string());
        let ParseOutcome::Args(from_env) = CampaignArgs::parse_from(&[], env).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(from_env.trace_out, "/tmp/env.json");
        let args = strings(&["--trace-out", "/tmp/flag.json"]);
        let ParseOutcome::Args(from_flag) = CampaignArgs::parse_from(&args, env).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(from_flag.trace_out, "/tmp/flag.json");
        assert!(CampaignArgs::parse_from(&strings(&["--trace-out"]), no_env)
            .unwrap_err()
            .contains("needs a value"));
    }
}
