//! Cluster load generator, written to `BENCH_cluster.json`.
//!
//! Spins up one and then two in-process `adc-server` hosts (one worker
//! thread each) on the loopback and drives die-tone-metrics campaigns
//! through [`adc_cluster::ClusterExecutor`], measuring end-to-end
//! campaign throughput in jobs per second — protocol framing, batch
//! scheduling, remote execution, and result assembly included. Every
//! measurement window uses a fresh block of die seeds so the servers'
//! warm caches never short-circuit the compute being timed (each window
//! asserts `remote_computed == jobs`).
//!
//! Each figure is the best window out of many covering at least
//! [`MIN_WALL_S`] of wall time (minimum-time estimator, same rationale
//! as `bench_dsp`). The 2-host/1-host speedup is printed as an advisory
//! figure: on a single-core runner both hosts share one CPU and the
//! ratio stays near 1.0, which is exactly the case `bench_compare`'s
//! `host_cpus` provenance exemption covers.
//!
//! Workload knobs: `ADC_CLUSTER_JOBS` (jobs per window, default 8),
//! `ADC_CLUSTER_RECORD` (record length per die, default 512).

use std::time::{Duration, Instant};

use adc_bench::cli::env_usize;
use adc_cluster::{
    preset_index, standard_registry, ClusterCampaign, ClusterExecutor, ClusterOptions,
};
use adc_runtime::{canonical_key, CacheCodec};
use adc_server::{Preset, Server, ServerConfig, ServerHandle};

/// Minimum total wall time per measurement, seconds.
const MIN_WALL_S: f64 = 0.3;

/// One host-count measurement.
struct ClusterFigure {
    name: String,
    hosts: usize,
    jobs_per_sec: f64,
    windows: usize,
}

type ServerJoin = std::thread::JoinHandle<std::io::Result<()>>;

/// Spawns one loopback host with a single worker thread, so the
/// 1-vs-2-host comparison scales servers, not threads per server.
fn spawn_host() -> (ServerHandle, ServerJoin) {
    let cfg = ServerConfig {
        threads: 1,
        job_runner: Some(standard_registry()),
        ..ServerConfig::default()
    };
    Server::spawn("127.0.0.1:0", cfg).expect("spawn loopback host")
}

/// Builds one campaign window of die-tone-metrics jobs over a fresh
/// seed block, so no server-side cache entry from a previous window can
/// answer it.
fn window_campaign(first_seed: u64, jobs: usize, record_len: usize) -> ClusterCampaign {
    let mut campaign = ClusterCampaign::new("bench-cluster", "die-tone-metrics", 0xBE7C);
    for die_seed in first_seed..first_seed + jobs as u64 {
        let config = (
            preset_index(Preset::Nominal110),
            10e6f64,
            record_len as u64,
            die_seed,
        )
            .encode();
        campaign.push_job(config, canonical_key("bench-cluster", &die_seed));
    }
    campaign
}

/// Measures best-window campaign throughput against `host_count`
/// freshly spawned servers. `next_seed` advances across calls so every
/// window (and every host count) sees cold keys.
fn bench_hosts(
    host_count: usize,
    jobs: usize,
    record_len: usize,
    next_seed: &mut u64,
) -> ClusterFigure {
    let hosts: Vec<_> = (0..host_count).map(|_| spawn_host()).collect();
    let peers: Vec<String> = hosts.iter().map(|(h, _)| h.addr().to_string()).collect();
    let executor = ClusterExecutor::new(peers, standard_registry()).options(ClusterOptions {
        window: 2,
        batch_jobs: 2,
        backoff: Duration::from_millis(5),
        io_timeout: Duration::from_secs(30),
        ..ClusterOptions::default()
    });

    let run_window = |next_seed: &mut u64| {
        let campaign = window_campaign(*next_seed, jobs, record_len);
        *next_seed += jobs as u64;
        let report = executor.execute(&campaign).expect("bench campaign");
        // Every key is cold, so all jobs were computed this window; a
        // result may still be *applied* through the prefetch sweep when
        // the reply races the batch ack. Only local fallback would mean
        // the cluster path was not measured.
        let s = &report.stats;
        assert_eq!(
            s.remote_computed + s.remote_cached + s.prefetch_hits,
            jobs as u64,
            "window must be compute-bound, got {s:?}"
        );
        assert_eq!(s.local_computed, 0, "local fallback in bench window: {s:?}");
    };

    // Warm up connections, code paths, and the servers' worker pools.
    run_window(next_seed);

    let mut windows = 0usize;
    let mut best_window_s = f64::INFINITY;
    let start = Instant::now();
    loop {
        let window = Instant::now();
        run_window(next_seed);
        best_window_s = best_window_s.min(window.elapsed().as_secs_f64());
        windows += 1;
        if start.elapsed().as_secs_f64() >= MIN_WALL_S && windows >= 4 {
            break;
        }
    }

    for (handle, join) in hosts {
        handle.shutdown();
        join.join().expect("server thread").expect("serve");
    }
    ClusterFigure {
        name: format!("hosts{host_count}"),
        hosts: host_count,
        jobs_per_sec: jobs as f64 / best_window_s.max(1e-12),
        windows,
    }
}

fn main() {
    adc_bench::banner(
        "Cluster executor -- distributed campaign throughput",
        "loopback 1-vs-2-host scaling of the framed job protocol (BENCH_cluster.json)",
    );

    let jobs = env_usize("ADC_CLUSTER_JOBS", 8);
    let record_len = env_usize("ADC_CLUSTER_RECORD", 512);
    let mut next_seed = 1u64;

    let figures = vec![
        bench_hosts(1, jobs, record_len, &mut next_seed),
        bench_hosts(2, jobs, record_len, &mut next_seed),
    ];
    for f in &figures {
        println!(
            "cluster {:<8} {:>10.1} jobs/sec  (best of {} windows of {} jobs, record {})",
            f.name, f.jobs_per_sec, f.windows, jobs, record_len
        );
    }

    let speedup = figures[1].jobs_per_sec / figures[0].jobs_per_sec.max(1e-12);
    println!(
        "2-host speedup: {speedup:.2}x (advisory; near 1.0x is expected when both \
         hosts share one CPU -- see the host_cpus exemption in bench_compare)"
    );

    let rows: Vec<String> = figures
        .iter()
        .map(|f| {
            format!(
                "    {{ \"name\": \"{}\", \"hosts\": {}, \"jobs_per_sec\": {:.1}, \"windows\": {} }}",
                f.name, f.hosts, f.jobs_per_sec, f.windows
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"cluster distributed campaign throughput\",\n  {},\n  \"jobs_per_window\": {},\n  \"record_len\": {},\n  \"speedup_2v1\": {:.3},\n  \"cluster\": [\n{}\n  ]\n}}\n",
        adc_bench::Provenance::capture().json_entry(),
        jobs,
        record_len,
        speedup,
        rows.join(",\n"),
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    println!("\nwrote BENCH_cluster.json");
}
