//! Extension: the 1.5-bit stage residue transfer function — the textbook
//! sawtooth behind the paper's Fig. 2 — extracted from the fabricated
//! stage 1 of the golden die, with its decision boundaries and the
//! redundancy margin marked.

use adc_analog::bandgap::ReferenceBuffer;
use adc_analog::noise::NoiseSource;
use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;

fn main() {
    adc_bench::banner(
        "Extension -- stage-1 residue transfer (paper Fig. 2 behaviour)",
        "V_out = 2*V_in - d*V_REF with the fabricated non-idealities",
    );

    let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), adc_testbench::GOLDEN_SEED)
        .expect("nominal builds");
    let settle = adc.timing().settle_time_s;
    let reference = ReferenceBuffer::ideal(1.0);
    let mut noise = NoiseSource::from_seed(0);

    // Sweep the stage input, record (decision, residue).
    let cols = 81usize;
    let rows = 21usize;
    let mut grid = vec![vec![' '; cols]; rows];
    let mut boundaries = Vec::new();
    let mut last_d = -2i8;
    #[allow(clippy::needless_range_loop)] // c maps to both v_in and the column
    for c in 0..cols {
        let v_in = -1.0 + 2.0 * c as f64 / (cols - 1) as f64;
        let stage = adc.stage_mut(0);
        stage.reset();
        let (decision, residue) = stage.process(v_in, &reference, settle, 1e-9, &mut noise);
        if decision.dac_level != last_d && c > 0 {
            boundaries.push((c, decision.dac_level));
        }
        last_d = decision.dac_level;
        // Map residue in [-1, 1] to a row.
        let r = ((1.0 - residue.clamp(-1.0, 1.0)) / 2.0 * (rows - 1) as f64).round() as usize;
        grid[r][c] = '*';
    }

    println!("\nresidue (V)  +1 to -1 vertically, V_in -1 to +1 horizontally:");
    for (i, row) in grid.iter().enumerate() {
        let label = match i {
            0 => "+1.0 |",
            r if r == (rows - 1) / 2 => " 0.0 |",
            r if r == rows - 1 => "-1.0 |",
            _ => "     |",
        };
        let line: String = row.iter().collect();
        println!("{label}{line}");
    }
    println!("     +{}", "-".repeat(cols));
    println!("      -1.0{:>pad$}", "+1.0", pad = cols - 4);

    for (c, d) in &boundaries {
        let v = -1.0 + 2.0 * *c as f64 / (cols - 1) as f64;
        println!("decision boundary near V_in = {v:+.3} V (d -> {d:+})");
    }
    println!("\nideal boundaries at ±V_REF/4 = ±0.250 V; offsets shift them,");
    println!("and the residue never leaves ±V_REF — the redundancy at work.");
}
