//! Extension: per-stage operating-point report and noise budget of the
//! golden die — the numbers behind §2–3's design narrative (stage
//! scaling, high stage-1 bias, large sampling capacitors) made explicit.

use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_pipeline::diagnostics::Diagnostics;

fn main() {
    adc_bench::banner(
        "Extension -- stage operating points and noise budget",
        "the design narrative of sections 2-3 as numbers",
    );

    let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), adc_testbench::GOLDEN_SEED)
        .expect("nominal builds");
    let d = Diagnostics::of(&adc);
    println!("\n{d}");
    println!(
        "\npredicted SNR at -0.01 dBFS: {:.1} dB (Table I: 67.1; measured: 67.9)",
        d.noise.predicted_snr_db(0.999)
    );
    println!("note stage 1's bias and capacitance dominating (the paper's");
    println!("\"highest specifications\"), and the 1/3-scaled back end.");
}
