//! Regenerates Fig. 5: SFDR, SNR and SNDR versus conversion rate at
//! f_in = 10 MHz, 2 V_P-P.
//!
//! Paper claims: SNDR > 64 dB from 20 to 120 MS/s, > 62 dB to 140 MS/s,
//! SFDR > 69 dB from 5 to 140 MS/s, collapsing beyond — the flat band is
//! the SC bias generator scaling the opamp operating points with rate.

use adc_testbench::report::{db_cell, mhz_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn main() {
    adc_bench::banner(
        "Fig. 5 -- SFDR, SNR, SNDR vs conversion rate",
        "fin = 10 MHz, 2 Vp-p, 8192-pt coherent FFT",
    );

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let runner = SweepRunner {
        policy,
        ..SweepRunner::nominal()
    };
    let rates: Vec<f64> = [
        5.0, 10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0, 110.0, 120.0, 130.0, 140.0, 150.0, 160.0,
        180.0, 200.0,
    ]
    .iter()
    .map(|m| m * 1e6)
    .collect();
    let points = runner.rate_sweep(&rates, 10e6).expect("all rates build");

    let mut table = TextTable::new(["rate (MS/s)", "SFDR (dB)", "SNR (dB)", "SNDR (dB)", "ENOB"]);
    for p in &points {
        table.push_row([
            mhz_cell(p.x_hz),
            db_cell(p.sfdr_db),
            db_cell(p.snr_db),
            db_cell(p.sndr_db),
            format!("{:.2}", p.enob),
        ]);
    }
    println!("\n{}", table.render());

    let in_band = |lo: f64, hi: f64| {
        points
            .iter()
            .filter(|p| p.x_hz >= lo && p.x_hz <= hi)
            .map(|p| p.sndr_db)
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "min SNDR 20-120 MS/s: {:.1} dB (paper: > 64)",
        in_band(20e6, 120e6)
    );
    println!(
        "min SNDR 20-140 MS/s: {:.1} dB (paper: > 62)",
        in_band(20e6, 140e6)
    );
    let min_sfdr = points
        .iter()
        .filter(|p| p.x_hz >= 5e6 && p.x_hz <= 140e6)
        .map(|p| p.sfdr_db)
        .fold(f64::INFINITY, f64::min);
    println!("min SFDR 5-140 MS/s:  {min_sfdr:.1} dB (paper: > 69)");
}
