//! Extension experiment: the aperture-jitter budget behind Fig. 6's
//! high-frequency SNR claim.
//!
//! The paper: "Above 100MHz, jitter is the main noise contribution and
//! SNR is falling with increasing input frequency." This experiment
//! sweeps the clock jitter across realistic values and shows where each
//! budget pins the SNR-vs-fin curve — including the textbook
//! `SNR = −20·log10(2π·f_in·σ_t)` limit for reference.

use adc_analog::noise::ApertureJitter;
use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, mhz_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn main() {
    adc_bench::banner(
        "Extension -- SNR vs input frequency across jitter budgets",
        "the mechanism behind Fig. 6's >100 MHz roll-off",
    );

    let sigmas = [0.0, 0.45e-12, 1e-12, 2e-12];
    let fins: Vec<f64> = [10.0, 50.0, 100.0, 150.0].iter().map(|m| m * 1e6).collect();

    // All four budget sweeps share one campaign policy: points fan out
    // across ADC_THREADS workers and persist in the ADC_CACHE_DIR cache.
    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let mut sweeps = Vec::new();
    for &sigma in &sigmas {
        let runner = SweepRunner {
            config: AdcConfig {
                jitter: ApertureJitter::new(sigma),
                ..AdcConfig::nominal_110ms()
            },
            policy: policy.clone(),
            ..SweepRunner::nominal()
        };
        sweeps.push(runner.frequency_sweep(&fins).expect("sweep runs"));
    }

    let mut table = TextTable::new([
        "fin (MHz)",
        "no jitter",
        "0.45 ps (paper cal.)",
        "1 ps",
        "2 ps",
        "limit @1ps (theory)",
    ]);
    for (i, &fin) in fins.iter().enumerate() {
        let theory = ApertureJitter::new(1e-12).snr_limit_db(fin);
        table.push_row([
            mhz_cell(fin),
            db_cell(sweeps[0][i].snr_db),
            db_cell(sweeps[1][i].snr_db),
            db_cell(sweeps[2][i].snr_db),
            db_cell(sweeps[3][i].snr_db),
            db_cell(theory),
        ]);
    }
    println!("\nSNR (dB):\n{}", table.render());
    println!("expected: at low fin all columns agree (thermal-limited); above");
    println!("~100 MHz each jitter column bends toward its theoretical line.");
}
