//! Exports every figure's data series as CSV (for replotting with
//! external tools). Writes `fig4.csv`, `fig5.csv`, `fig6.csv`, and
//! `fig8.csv` into `./paper_csv/`.

use adc_testbench::experiments;
use adc_testbench::report::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    adc_bench::banner(
        "Export -- figure series as CSV",
        "fig4/fig5/fig6/fig8 data for external replotting",
    );
    let dir = std::path::Path::new("paper_csv");
    std::fs::create_dir_all(dir)?;

    let fig4 = experiments::run_fig4()?;
    let mut t = TextTable::new(["rate_hz", "power_w"]);
    for (f, p) in &fig4.series {
        t.push_row([format!("{f}"), format!("{p}")]);
    }
    t.save_csv(dir.join("fig4.csv"))?;

    let fig5 = experiments::run_fig5(8192)?;
    let mut t = TextTable::new(["rate_hz", "snr_db", "sndr_db", "sfdr_db"]);
    for p in &fig5.points {
        t.push_row([
            format!("{}", p.x_hz),
            format!("{}", p.snr_db),
            format!("{}", p.sndr_db),
            format!("{}", p.sfdr_db),
        ]);
    }
    t.save_csv(dir.join("fig5.csv"))?;

    let fig6 = experiments::run_fig6(8192)?;
    let mut t = TextTable::new(["fin_hz", "snr_db", "sndr_db", "sfdr_db"]);
    for p in &fig6.points {
        t.push_row([
            format!("{}", p.x_hz),
            format!("{}", p.snr_db),
            format!("{}", p.sndr_db),
            format!("{}", p.sfdr_db),
        ]);
    }
    t.save_csv(dir.join("fig6.csv"))?;

    let fig8 = experiments::run_fig8();
    let mut t = TextTable::new(["name", "supply_group", "inv_area_per_mm2", "fm"]);
    for e in &fig8.ranked {
        t.push_row([
            e.name.replace(',', ";"),
            e.supply_group().to_string(),
            format!("{}", e.inverse_area()),
            format!("{}", e.figure_of_merit()),
        ]);
    }
    t.save_csv(dir.join("fig8.csv"))?;

    println!("wrote paper_csv/fig4.csv, fig5.csv, fig6.csv, fig8.csv");
    println!(
        "claim checks: fig4 {} fig5 {} fig6 {} fig8 {}",
        fig4.claims_hold(),
        fig5.claims_hold(),
        fig6.claims_hold(),
        fig8.claims_hold()
    );
    Ok(())
}
