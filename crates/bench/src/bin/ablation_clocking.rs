//! Ablation B: locally generated clocks (no non-overlap dead time, the
//! paper's scheme) versus conventional global non-overlap clocking.
//!
//! The §3 argument: removing the non-overlap margin lengthens the
//! settling window, so the same SNDR is reached with a lower opamp
//! gain-bandwidth — i.e. lower bias current and power. The experiment
//! sweeps a bias de-rating factor at 110 MS/s for both clocking schemes
//! and reports SNDR: the local scheme should hold specification further
//! down the bias axis.
//!
//! The (scheme, derating) grid runs as one campaign under
//! [`adc_bench::campaign_setup`]: points fan out across `ADC_THREADS`
//! workers and land in the `ADC_CACHE_DIR` point cache, so re-running
//! after touching one derating recomputes only that point.

use adc_pipeline::clocking::ClockScheme;
use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::{MeasurementSession, GOLDEN_SEED};

fn main() {
    adc_bench::banner(
        "Ablation B -- local clock generation vs non-overlap clocking",
        "paper section 3: removed non-overlap margin lowers required GBW/power",
    );

    let deratings = [1.0, 0.8, 0.6, 0.5, 0.4, 0.3];
    let base = AdcConfig::nominal_110ms();

    let grid: Vec<(ClockScheme, f64)> = deratings
        .iter()
        .flat_map(|&d| {
            [
                (ClockScheme::LocalGenerated, d),
                (ClockScheme::conventional(), d),
            ]
        })
        .collect();

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let points = policy
        .measure_campaign(
            "ablation-clocking",
            &(GOLDEN_SEED, &base),
            GOLDEN_SEED,
            grid,
            |_ctx, &(clocking, derating)| {
                let config = AdcConfig {
                    clocking,
                    mirror_base_ratio: base.mirror_base_ratio * derating,
                    ..base.clone()
                };
                let mut s = MeasurementSession::new(config, GOLDEN_SEED)?;
                let power_w = s.adc().power_w();
                Ok((s.measure_tone(10e6).analysis.sndr_db, power_w))
            },
        )
        .expect("all grid points build");

    let mut table = TextTable::new([
        "bias derating",
        "local SNDR (dB)",
        "non-ovl SNDR (dB)",
        "power (mW)",
    ]);
    for (i, &d) in deratings.iter().enumerate() {
        let (local, power) = points[2 * i];
        let (conv, _) = points[2 * i + 1];
        table.push_row([
            format!("{d:.2}"),
            db_cell(local),
            db_cell(conv),
            format!("{:.1}", power * 1e3),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: as bias shrinks, the non-overlap column falls off first;");
    println!("the local-clock design meets the same SNDR at lower bias power.");
}
