//! Ablation B: locally generated clocks (no non-overlap dead time, the
//! paper's scheme) versus conventional global non-overlap clocking.
//!
//! The §3 argument: removing the non-overlap margin lengthens the
//! settling window, so the same SNDR is reached with a lower opamp
//! gain-bandwidth — i.e. lower bias current and power. The experiment
//! sweeps a bias de-rating factor at 110 MS/s for both clocking schemes
//! and reports SNDR: the local scheme should hold specification further
//! down the bias axis.

use adc_pipeline::clocking::ClockScheme;
use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::{MeasurementSession, GOLDEN_SEED};

fn sndr_at(clocking: ClockScheme, bias_derating: f64) -> (f64, f64) {
    let base = AdcConfig::nominal_110ms();
    let config = AdcConfig {
        clocking,
        mirror_base_ratio: base.mirror_base_ratio * bias_derating,
        ..base
    };
    let mut s = MeasurementSession::new(config, GOLDEN_SEED).expect("config builds");
    let power_w = s.adc().power_w();
    (s.measure_tone(10e6).analysis.sndr_db, power_w)
}

fn main() {
    adc_bench::banner(
        "Ablation B -- local clock generation vs non-overlap clocking",
        "paper section 3: removed non-overlap margin lowers required GBW/power",
    );

    let deratings = [1.0, 0.8, 0.6, 0.5, 0.4, 0.3];
    let mut table = TextTable::new([
        "bias derating",
        "local SNDR (dB)",
        "non-ovl SNDR (dB)",
        "power (mW)",
    ]);
    for &d in &deratings {
        let (local, power) = sndr_at(ClockScheme::LocalGenerated, d);
        let (conv, _) = sndr_at(ClockScheme::conventional(), d);
        table.push_row([
            format!("{d:.2}"),
            db_cell(local),
            db_cell(conv),
            format!("{:.1}", power * 1e3),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: as bias shrinks, the non-overlap column falls off first;");
    println!("the local-clock design meets the same SNDR at lower bias power.");
}
