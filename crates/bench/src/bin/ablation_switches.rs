//! Ablation D: input switch topology versus high-frequency linearity
//! (the paper's §4 discussion of Fig. 6).
//!
//! The paper attributes the SFDR fall-off above ~40 MHz to the
//! unbootstrapped input transmission gates and notes bootstrapping "can
//! solve" it but was rejected for lifetime reasons. This experiment runs
//! the Fig. 6 frequency sweep for each switch topology.

use adc_analog::switch::SwitchTopology;
use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, mhz_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn main() {
    adc_bench::banner(
        "Ablation D -- input switch topology vs SFDR(f_in)",
        "paper section 4: TG distortion limits high-frequency SFDR; bootstrap would fix it",
    );

    let topologies = [
        SwitchTopology::TransmissionGate {
            bulk_switched: true,
        },
        SwitchTopology::TransmissionGate {
            bulk_switched: false,
        },
        SwitchTopology::Bootstrapped,
    ];
    let fins: Vec<f64> = [5.0, 10.0, 20.0, 40.0, 60.0, 100.0, 150.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();

    let mut sweeps = Vec::new();
    for &topology in &topologies {
        let runner = SweepRunner {
            config: AdcConfig {
                input_switch: topology,
                ..AdcConfig::nominal_110ms()
            },
            ..SweepRunner::nominal()
        };
        sweeps.push(runner.frequency_sweep(&fins).expect("sweep runs"));
    }

    let mut table = TextTable::new([
        "fin (MHz)",
        "TG bulk-sw SFDR",
        "TG conventional SFDR",
        "bootstrapped SFDR",
    ]);
    for (i, &fin) in fins.iter().enumerate() {
        table.push_row([
            mhz_cell(fin),
            db_cell(sweeps[0][i].sfdr_db),
            db_cell(sweeps[1][i].sfdr_db),
            db_cell(sweeps[2][i].sfdr_db),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected ordering at high fin: bootstrapped > bulk-switched TG >");
    println!("conventional TG — the paper's design point is the middle column.");
}
