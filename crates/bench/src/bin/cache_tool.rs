//! Point-cache maintenance: inspects and garbage-collects a campaign
//! cache directory (`--cache-dir` / `ADC_CACHE_DIR`, the same knob the
//! campaign binaries use).
//!
//! ```text
//! cache_tool [--cache-dir DIR] [--gc] [--gc-legacy]
//! ```
//!
//! The report lists every `<campaign>.cache` file with its entry count,
//! size, and the [`NUMERICS_EPOCH`] stamped in its header, plus an
//! epoch histogram of the directory. Files written under an older
//! epoch are dead weight — their keys are epoch-salted, so the current
//! code can never hit them — and `--gc` deletes them. Files with no
//! header at all predate the epoch stamp; they are reported as
//! `legacy` and only deleted under the separate `--gc-legacy` flag,
//! since their vintage cannot be proven from the file alone.
//!
//! Exit status: `0` on success (including an absent directory, which
//! just means there is nothing cached yet), `2` on usage errors.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adc_bench::cli::default_cache_dir;
use adc_runtime::{parse_epoch_header, NUMERICS_EPOCH};

/// What one `<campaign>.cache` file holds.
#[derive(Debug, PartialEq, Eq)]
struct CacheFile {
    path: PathBuf,
    entries: usize,
    bytes: u64,
    /// Epoch from the header line; `None` for legacy headerless files.
    epoch: Option<u32>,
}

impl CacheFile {
    fn stale(&self) -> bool {
        self.epoch.is_some_and(|e| e != NUMERICS_EPOCH)
    }

    fn legacy(&self) -> bool {
        self.epoch.is_none()
    }
}

/// Reads one cache file's vital signs.
fn inspect(path: &Path) -> std::io::Result<CacheFile> {
    let text = std::fs::read_to_string(path)?;
    let epoch = text.lines().next().and_then(parse_epoch_header);
    let entries = text
        .lines()
        .filter(|l| !l.starts_with('#') && l.contains('\t'))
        .count();
    Ok(CacheFile {
        path: path.to_path_buf(),
        entries,
        bytes: text.len() as u64,
        epoch,
    })
}

/// Scans a cache directory for `.cache` files, sorted by name.
fn scan(dir: &Path) -> std::io::Result<Vec<CacheFile>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "cache") && path.is_file() {
            files.push(inspect(&path)?);
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Buckets files by epoch label (`legacy` for headerless), counting
/// files and entries per bucket.
fn epoch_histogram(files: &[CacheFile]) -> BTreeMap<String, (usize, usize)> {
    let mut hist = BTreeMap::new();
    for f in files {
        let label = match f.epoch {
            Some(e) => format!("epoch {e}"),
            None => "legacy (no header)".to_string(),
        };
        let (count, entries) = hist.entry(label).or_insert((0usize, 0usize));
        *count += 1;
        *entries += f.entries;
    }
    hist
}

struct Options {
    cache_dir: String,
    gc: bool,
    gc_legacy: bool,
}

fn usage() -> String {
    "usage: cache_tool [--cache-dir DIR] [--gc] [--gc-legacy]".to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        cache_dir: default_cache_dir(),
        gc: false,
        gc_legacy: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                opts.cache_dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("--cache-dir needs a value\n{}", usage()))?;
            }
            "--gc" => opts.gc = true,
            "--gc-legacy" => opts.gc_legacy = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let dir = Path::new(&opts.cache_dir);
    if opts.cache_dir.is_empty() || !dir.is_dir() {
        println!(
            "cache dir {} does not exist -- nothing cached",
            opts.cache_dir
        );
        return ExitCode::SUCCESS;
    }
    let files = match scan(dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cache_tool: cannot scan {}: {e}", opts.cache_dir);
            return ExitCode::from(2);
        }
    };

    println!(
        "cache dir {} (current epoch {NUMERICS_EPOCH}):",
        opts.cache_dir
    );
    let mut total_entries = 0usize;
    let mut total_bytes = 0u64;
    for f in &files {
        let name = f.path.file_name().map(|n| n.to_string_lossy().into_owned());
        let epoch = match f.epoch {
            Some(e) if e == NUMERICS_EPOCH => format!("epoch {e}"),
            Some(e) => format!("epoch {e} STALE"),
            None => "legacy".to_string(),
        };
        println!(
            "  {:<40} {:>8} entries {:>10} bytes  {}",
            name.unwrap_or_default(),
            f.entries,
            f.bytes,
            epoch
        );
        total_entries += f.entries;
        total_bytes += f.bytes;
    }
    println!(
        "  {} file(s), {total_entries} entries, {total_bytes} bytes",
        files.len()
    );
    println!("epoch histogram:");
    for (label, (count, entries)) in epoch_histogram(&files) {
        println!("  {label:<20} {count:>4} file(s) {entries:>8} entries");
    }

    let mut removed = 0usize;
    for f in &files {
        let doomed = (opts.gc && f.stale()) || (opts.gc_legacy && f.legacy());
        if doomed {
            match std::fs::remove_file(&f.path) {
                Ok(()) => {
                    println!("gc: removed {}", f.path.display());
                    removed += 1;
                }
                Err(e) => eprintln!("gc: cannot remove {}: {e}", f.path.display()),
            }
        }
    }
    if opts.gc || opts.gc_legacy {
        println!("gc: {removed} file(s) removed");
    } else {
        let dead = files.iter().filter(|f| f.stale()).count();
        let legacy = files.iter().filter(|f| f.legacy()).count();
        if dead + legacy > 0 {
            println!(
                "{dead} stale and {legacy} legacy file(s) present; \
                 pass --gc / --gc-legacy to remove"
            );
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_runtime::epoch_header;

    fn fixture_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adc_cache_tool_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(
            dir.join("current.cache"),
            format!("{}\n1\tdeadbeef\n2\tfeedface\n", epoch_header()),
        )
        .expect("current");
        std::fs::write(
            dir.join("old.cache"),
            format!("# adc-cache epoch {}\n3\tcafe\n", NUMERICS_EPOCH - 1),
        )
        .expect("old");
        std::fs::write(dir.join("legacy.cache"), "4\tbeef\n").expect("legacy");
        std::fs::write(dir.join("notes.txt"), "not a cache file").expect("other");
        dir
    }

    #[test]
    fn scan_reports_entries_epochs_and_histogram() {
        let dir = fixture_dir("scan");
        let files = scan(&dir).expect("scan");
        assert_eq!(files.len(), 3, "only .cache files count");
        let by_name = |n: &str| {
            files
                .iter()
                .find(|f| f.path.file_name().is_some_and(|p| p == n))
                .expect("file present")
        };
        let current = by_name("current.cache");
        assert_eq!((current.entries, current.epoch), (2, Some(NUMERICS_EPOCH)));
        assert!(!current.stale() && !current.legacy());
        let old = by_name("old.cache");
        assert!(old.stale() && old.epoch == Some(NUMERICS_EPOCH - 1));
        let legacy = by_name("legacy.cache");
        assert!(legacy.legacy() && legacy.entries == 1);

        let hist = epoch_histogram(&files);
        assert_eq!(hist[&format!("epoch {NUMERICS_EPOCH}")], (1, 2));
        assert_eq!(hist[&format!("epoch {}", NUMERICS_EPOCH - 1)], (1, 1));
        assert_eq!(hist["legacy (no header)"], (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_flags_select_stale_and_legacy_independently() {
        let dir = fixture_dir("gc");
        // Mimic main's gc loop: --gc removes stale only.
        for f in scan(&dir).expect("scan") {
            if f.stale() {
                std::fs::remove_file(&f.path).expect("gc stale");
            }
        }
        let after_gc = scan(&dir).expect("rescan");
        assert_eq!(after_gc.len(), 2);
        assert!(after_gc.iter().all(|f| !f.stale()), "stale file gone");
        assert!(
            after_gc.iter().any(|f| f.legacy()),
            "--gc leaves legacy files alone"
        );
        // --gc-legacy removes the headerless remainder.
        for f in after_gc {
            if f.legacy() {
                std::fs::remove_file(&f.path).expect("gc legacy");
            }
        }
        let survivors = scan(&dir).expect("rescan");
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].epoch, Some(NUMERICS_EPOCH));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn options_parse_and_reject_unknown_flags() {
        let opts = parse_options(&[
            "--cache-dir".into(),
            "/tmp/x".into(),
            "--gc".into(),
            "--gc-legacy".into(),
        ])
        .expect("parses");
        assert_eq!(opts.cache_dir, "/tmp/x");
        assert!(opts.gc && opts.gc_legacy);
        assert!(parse_options(&["--bogus".into()]).is_err());
        assert!(parse_options(&["--cache-dir".into()]).is_err());
    }
}
