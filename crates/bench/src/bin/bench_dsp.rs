//! DSP hot-path kernel benchmark, written to `BENCH_dsp.json`.
//!
//! Two figure families (DESIGN.md §12):
//!
//! * **conversion** — single-thread `convert_waveform_into` samples/sec
//!   on the capture path (RF generator → band-pass filter → ADC) with
//!   each non-ideality toggled, so a regression in any specialized path
//!   (jitter-off, thermal-off, ripple-on) is visible on its own row;
//! * **lanes** — the lane-parallel SoA kernel (`LaneBatch`) at 1, 4,
//!   and 8 lanes on the same capture path, total samples/sec across all
//!   lanes plus the speedup over the scalar `nominal` row measured in
//!   the same run (the figure the CI lanes gate holds);
//! * **fft** — `fft_real_into` microseconds per call and per point at
//!   the record lengths the testbench actually uses (1k..16k), the
//!   figure the planned real-input FFT is accountable to.
//!
//! All loops are single-threaded and run through the allocation-free
//! `_into` APIs (the capture hot path since the planned-kernel rework).
//! Each figure is the **best window** out of many short measurement
//! windows covering at least `MIN_WALL_S` of wall time: the minimum-time
//! estimator reports the kernel's actual cost and discards scheduler
//! preemption and noisy-neighbor stalls, which on shared hosts can
//! inflate a single-window mean by 2-4x. The report carries the same
//! provenance stamp as the other `BENCH_*.json` artifacts so
//! `bench_compare` can refuse cross-host comparisons.

use std::time::Instant;

use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_pipeline::lanes::LaneBatch;
use adc_spectral::fft::fft_real_into;
use adc_spectral::plan::SpectralScratch;
use adc_spectral::window::coherent_frequency_clear;
use adc_testbench::filter::BandpassFilter;
use adc_testbench::signal::SineSource;
use adc_testbench::GOLDEN_SEED;

/// Minimum total wall time per measurement, seconds.
const MIN_WALL_S: f64 = 0.3;

/// Record length for the conversion benchmark (the session default).
const RECORD_LEN: usize = 8192;

/// Calls per FFT timing window (one window is timed as a unit).
const FFT_WINDOW_CALLS: usize = 16;

/// One conversion-loop measurement.
struct ConversionFigure {
    name: &'static str,
    samples_per_sec: f64,
    records: usize,
}

/// One lane-batch measurement: N nominal dies (seeds `1..=N`)
/// converting the shared capture waveform in lock-step through the SoA
/// lane kernel. `samples_per_sec` counts every lane's samples;
/// `speedup_vs_scalar` divides by the scalar `nominal` row measured in
/// the same run, so the figure is host-relative by construction.
struct LaneFigure {
    lanes: usize,
    samples_per_sec: f64,
    speedup_vs_scalar: f64,
    records: usize,
}

/// One FFT measurement.
struct FftFigure {
    n: usize,
    us_per_call: f64,
    us_per_point: f64,
    calls: usize,
}

/// The non-ideality toggles of the conversion benchmark: the default
/// configuration first (the acceptance figure), then each specialized
/// path on its own row.
fn conversion_configs() -> Vec<(&'static str, AdcConfig)> {
    let nominal = AdcConfig::nominal_110ms();
    let jitter_off = AdcConfig {
        jitter: adc_analog::noise::ApertureJitter::none(),
        ..nominal.clone()
    };
    let thermal_off = AdcConfig {
        thermal_noise: false,
        ..nominal.clone()
    };
    let ripple_on = AdcConfig {
        supply_ripple_v: 50e-3,
        supply_ripple_hz: 5.02e6,
        psrr_db: 40.0,
        ..nominal.clone()
    };
    vec![
        ("nominal", nominal),
        ("jitter_off", jitter_off),
        ("thermal_noise_off", thermal_off),
        ("ripple_on", ripple_on),
        ("ideal", AdcConfig::ideal(110e6)),
    ]
}

/// Times the capture path of one configuration: RF generator →
/// band-pass filter → `convert_waveform_into`, single thread. One
/// record is one timing window; the fastest record is the figure.
fn bench_conversion(name: &'static str, config: AdcConfig) -> ConversionFigure {
    let f_cr = config.f_cr_hz;
    let mut adc = PipelineAdc::build(config, GOLDEN_SEED).expect("benchmark config builds");
    let (f_in, _) = coherent_frequency_clear(f_cr, RECORD_LEN, 10e6, 8);
    let generator = SineSource::rf_generator(0.995 * adc.config().v_ref_v, f_in);
    let filtered = BandpassFilter::passive_high_order(f_in).clean(&generator);

    // Warm up settling/tracking memory, code paths, and buffers.
    let mut codes = Vec::new();
    adc.reset();
    adc.convert_waveform_into(&filtered, 1024, &mut codes);
    assert_eq!(codes.len(), 1024);

    let mut records = 0usize;
    let mut best_record_s = f64::INFINITY;
    let start = Instant::now();
    loop {
        adc.reset();
        let window = Instant::now();
        adc.convert_waveform_into(&filtered, RECORD_LEN, &mut codes);
        best_record_s = best_record_s.min(window.elapsed().as_secs_f64());
        assert_eq!(codes.len(), RECORD_LEN);
        records += 1;
        if start.elapsed().as_secs_f64() >= MIN_WALL_S && records >= 4 {
            break;
        }
    }
    ConversionFigure {
        name,
        samples_per_sec: RECORD_LEN as f64 / best_record_s.max(1e-12),
        records,
    }
}

/// Times the lane-batched capture path at one lane count: the same RF
/// generator → band-pass filter stimulus as [`bench_conversion`]'s
/// nominal row, converted by `n_lanes` Monte-Carlo dies in lock-step.
/// One batch record (all lanes) is one timing window; the fastest
/// window is the figure.
fn bench_lanes(n_lanes: usize, scalar_samples_per_sec: f64) -> LaneFigure {
    let config = AdcConfig::nominal_110ms();
    let f_cr = config.f_cr_hz;
    let seeds: Vec<u64> = (1..=n_lanes as u64).collect();
    let mut batch = LaneBatch::build(&config, &seeds).expect("benchmark config builds");
    let (f_in, _) = coherent_frequency_clear(f_cr, RECORD_LEN, 10e6, 8);
    let generator = SineSource::rf_generator(0.995 * batch.lanes()[0].config().v_ref_v, f_in);
    let filtered = BandpassFilter::passive_high_order(f_in).clean(&generator);

    // Warm up settling/tracking memory, code paths, and buffers.
    let mut outs = vec![Vec::new(); n_lanes];
    batch.reset();
    batch.convert_waveform_into(&filtered, 1024, &mut outs);
    assert!(outs.iter().all(|o| o.len() == 1024));

    let mut records = 0usize;
    let mut best_record_s = f64::INFINITY;
    let start = Instant::now();
    loop {
        batch.reset();
        let window = Instant::now();
        batch.convert_waveform_into(&filtered, RECORD_LEN, &mut outs);
        best_record_s = best_record_s.min(window.elapsed().as_secs_f64());
        records += 1;
        if start.elapsed().as_secs_f64() >= MIN_WALL_S && records >= 4 {
            break;
        }
    }
    let samples_per_sec = (n_lanes * RECORD_LEN) as f64 / best_record_s.max(1e-12);
    LaneFigure {
        lanes: n_lanes,
        samples_per_sec,
        speedup_vs_scalar: samples_per_sec / scalar_samples_per_sec.max(1e-12),
        records,
    }
}

/// Times `fft_real_into` at one record length on a deterministic
/// signal, warm scratch. Windows of [`FFT_WINDOW_CALLS`] calls are
/// timed as a unit; the fastest window is the figure.
fn bench_fft(n: usize) -> FftFigure {
    // Deterministic broadband test signal (tone + LCG dither).
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let signal: Vec<f64> = (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dither = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            (2.0 * std::f64::consts::PI * 479.0 * i as f64 / n as f64).sin() + 1e-3 * dither
        })
        .collect();

    // Warm-up call: populates the plan cache and sizes the scratch.
    let mut scratch = SpectralScratch::new();
    let mut spectrum = Vec::new();
    fft_real_into(&signal, &mut scratch, &mut spectrum).expect("power-of-two length");
    assert_eq!(spectrum.len(), n);

    let mut calls = 0usize;
    let mut sink = 0.0f64;
    let mut best_window_s = f64::INFINITY;
    let start = Instant::now();
    loop {
        let window = Instant::now();
        for _ in 0..FFT_WINDOW_CALLS {
            fft_real_into(&signal, &mut scratch, &mut spectrum).expect("power-of-two length");
            sink += spectrum[1].re;
        }
        best_window_s = best_window_s.min(window.elapsed().as_secs_f64());
        calls += FFT_WINDOW_CALLS;
        if start.elapsed().as_secs_f64() >= MIN_WALL_S && calls >= 4 * FFT_WINDOW_CALLS {
            break;
        }
    }
    assert!(sink.is_finite());
    let us_per_call = best_window_s * 1e6 / FFT_WINDOW_CALLS as f64;
    FftFigure {
        n,
        us_per_call,
        us_per_point: us_per_call / n as f64,
        calls,
    }
}

fn main() {
    adc_bench::banner(
        "DSP kernels -- conversion loop and real-input FFT hot paths",
        "single-thread kernel throughput (BENCH_dsp.json)",
    );

    let conversions: Vec<ConversionFigure> = conversion_configs()
        .into_iter()
        .map(|(name, config)| bench_conversion(name, config))
        .collect();
    for c in &conversions {
        println!(
            "conversion {:<18} {:>10.0} samples/sec  (best of {} records of {})",
            c.name, c.samples_per_sec, c.records, RECORD_LEN
        );
    }

    let scalar_nominal = conversions
        .iter()
        .find(|c| c.name == "nominal")
        .map(|c| c.samples_per_sec)
        .expect("nominal row is always measured");
    let lane_figures: Vec<LaneFigure> = [1usize, 4, 8]
        .iter()
        .map(|&n| bench_lanes(n, scalar_nominal))
        .collect();
    for l in &lane_figures {
        println!(
            "lanes      {:<14} {:>10.0} samples/sec  {:>5.2}x vs scalar  (best of {} batch records)",
            l.lanes, l.samples_per_sec, l.speedup_vs_scalar, l.records
        );
    }

    let ffts: Vec<FftFigure> = [1024usize, 4096, 8192, 16384]
        .iter()
        .map(|&n| bench_fft(n))
        .collect();
    for f in &ffts {
        println!(
            "fft_real n={:<6} {:>9.1} us/call  {:>8.4} us/point  (best window of {} calls)",
            f.n, f.us_per_call, f.us_per_point, f.calls
        );
    }

    let conv_json: Vec<String> = conversions
        .iter()
        .map(|c| {
            format!(
                "    {{ \"name\": \"{}\", \"samples_per_sec\": {:.0}, \"records\": {} }}",
                c.name, c.samples_per_sec, c.records
            )
        })
        .collect();
    let lanes_json: Vec<String> = lane_figures
        .iter()
        .map(|l| {
            format!(
                "    {{ \"lanes\": {}, \"samples_per_sec\": {:.0}, \"speedup_vs_scalar\": {:.3}, \"records\": {} }}",
                l.lanes, l.samples_per_sec, l.speedup_vs_scalar, l.records
            )
        })
        .collect();
    let fft_json: Vec<String> = ffts
        .iter()
        .map(|f| {
            format!(
                "    {{ \"n\": {}, \"us_per_call\": {:.3}, \"us_per_point\": {:.6}, \"calls\": {} }}",
                f.n, f.us_per_call, f.us_per_point, f.calls
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"dsp hot-path kernels\",\n  {},\n  \"record_len\": {},\n  \"conversion\": [\n{}\n  ],\n  \"lanes\": [\n{}\n  ],\n  \"fft\": [\n{}\n  ]\n}}\n",
        adc_bench::Provenance::capture().json_entry(),
        RECORD_LEN,
        conv_json.join(",\n"),
        lanes_json.join(",\n"),
        fft_json.join(",\n"),
    );
    std::fs::write("BENCH_dsp.json", &json).expect("write BENCH_dsp.json");
    println!("\nwrote BENCH_dsp.json");
}
