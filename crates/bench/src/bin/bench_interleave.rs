//! Interleaved-array hot-path benchmark, written to `BENCH_interleave.json`.
//!
//! Two figure families (DESIGN.md §13):
//!
//! * **convert** — single-thread interleaved `convert_waveform`
//!   samples/sec through an M-way array, one row per path the ganged
//!   server can exercise: the matched array (zero-sigma fast paths),
//!   the mismatched raw array (per-channel bandwidth filtering active),
//!   and the corrected array (fractional-delay resampler active) — so a
//!   regression in any specialized lane is visible on its own row;
//! * **calib** — background-calibration microseconds per epoch
//!   (convert + observe + apply), the recurring cost a ganged service
//!   pays while the loop is in Adapt.
//!
//! Each figure is the best window out of many short measurement windows
//! covering at least [`MIN_WALL_S`] of wall time (minimum-time
//! estimator, same rationale as `bench_dsp`). The report carries the
//! standard provenance stamp so `bench_compare` refuses cross-host
//! comparisons; the comparison is optional there, so baselines
//! predating this report skip rather than fail.

use std::time::Instant;

use adc_calib::{BackgroundCalibrator, CalibConfig};
use adc_pipeline::config::AdcConfig;
use adc_pipeline::interleave::{InterleaveMismatch, InterleavedAdc};
use adc_testbench::GOLDEN_SEED;

/// Minimum total wall time per measurement, seconds.
const MIN_WALL_S: f64 = 0.3;

/// Record length per conversion window.
const RECORD_LEN: usize = 4096;

/// One interleaved-conversion measurement.
struct ConvertFigure {
    name: &'static str,
    samples_per_sec: f64,
    records: usize,
}

/// One calibration-epoch measurement.
struct CalibFigure {
    name: &'static str,
    us_per_epoch: f64,
    epochs: usize,
}

/// Builds an M-way array on the nominal config at `M x` the core rate.
fn build_array(m: usize, mismatch: &InterleaveMismatch) -> InterleavedAdc {
    let config = AdcConfig::nominal_110ms();
    let rate = config.f_cr_hz * m as f64;
    InterleavedAdc::build_with_mismatch(&config, m, rate, GOLDEN_SEED, mismatch)
        .expect("benchmark array builds")
}

/// The coherent-ish benchmark stimulus for an array at `rate`.
fn tone(rate: f64, amplitude: f64) -> impl Fn(f64) -> f64 {
    let (f_in, _) = adc_spectral::window::coherent_frequency(rate, RECORD_LEN, 20e6);
    move |t: f64| amplitude * (2.0 * std::f64::consts::PI * f_in * t).sin()
}

/// Times the interleaved conversion path of one array configuration.
fn bench_convert(name: &'static str, mut ilv: InterleavedAdc) -> ConvertFigure {
    let wave = tone(ilv.sample_rate_hz(), 0.9);

    // Warm up code paths and per-channel settling memory.
    ilv.reset();
    let record = ilv.convert_waveform(&wave, RECORD_LEN);
    assert_eq!(record.len(), RECORD_LEN);

    let mut records = 0usize;
    let mut best_record_s = f64::INFINITY;
    let start = Instant::now();
    loop {
        ilv.reset();
        let window = Instant::now();
        let record = ilv.convert_waveform(&wave, RECORD_LEN);
        best_record_s = best_record_s.min(window.elapsed().as_secs_f64());
        assert_eq!(record.len(), RECORD_LEN);
        records += 1;
        if start.elapsed().as_secs_f64() >= MIN_WALL_S && records >= 4 {
            break;
        }
    }
    ConvertFigure {
        name,
        samples_per_sec: RECORD_LEN as f64 / best_record_s.max(1e-12),
        records,
    }
}

/// Times one full background-calibration epoch (convert + observe +
/// apply) on a mismatched M-way array.
fn bench_calib(name: &'static str, m: usize) -> CalibFigure {
    let mut ilv = build_array(m, &InterleaveMismatch::typical());
    let rate = ilv.sample_rate_hz();
    let wave = tone(rate, 0.9);
    let mut cal = BackgroundCalibrator::new(m, rate, CalibConfig::default());

    // Warm-up epoch.
    let record = ilv.convert_waveform(&wave, RECORD_LEN);
    cal.observe(&record).expect("epoch record is long enough");
    cal.apply_to(&mut ilv);

    let mut epochs = 0usize;
    let mut best_epoch_s = f64::INFINITY;
    let start = Instant::now();
    loop {
        let window = Instant::now();
        let record = ilv.convert_waveform(&wave, RECORD_LEN);
        cal.observe(&record).expect("epoch record is long enough");
        cal.apply_to(&mut ilv);
        best_epoch_s = best_epoch_s.min(window.elapsed().as_secs_f64());
        epochs += 1;
        if start.elapsed().as_secs_f64() >= MIN_WALL_S && epochs >= 4 {
            break;
        }
    }
    CalibFigure {
        name,
        us_per_epoch: best_epoch_s * 1e6,
        epochs,
    }
}

/// A mismatched array with the fractional-delay corrector engaged:
/// cancel the drawn skews exactly, so every output lane resamples.
fn corrected_array(m: usize) -> InterleavedAdc {
    let mut ilv = build_array(m, &InterleaveMismatch::typical());
    let delays: Vec<f64> = ilv.channel_skews_s().iter().map(|&s| -s).collect();
    let zeros = vec![0.0; m];
    let ones = vec![1.0; m];
    ilv.set_corrections(&zeros, &ones, &delays);
    ilv
}

fn main() {
    adc_bench::banner(
        "Interleaved array -- conversion and background-calibration hot paths",
        "single-thread ganged-array throughput (BENCH_interleave.json)",
    );

    let converts = vec![
        bench_convert("m2_matched", build_array(2, &InterleaveMismatch::none())),
        bench_convert(
            "m2_mismatch_raw",
            build_array(2, &InterleaveMismatch::typical()),
        ),
        bench_convert("m2_mismatch_corrected", corrected_array(2)),
        bench_convert("m4_mismatch_corrected", corrected_array(4)),
    ];
    for c in &converts {
        println!(
            "convert {:<22} {:>10.0} samples/sec  (best of {} records of {})",
            c.name, c.samples_per_sec, c.records, RECORD_LEN
        );
    }

    let calibs = vec![bench_calib("m2", 2), bench_calib("m4", 4)];
    for c in &calibs {
        println!(
            "calib   {:<22} {:>10.1} us/epoch     (best of {} epochs of {})",
            c.name, c.us_per_epoch, c.epochs, RECORD_LEN
        );
    }

    let convert_json: Vec<String> = converts
        .iter()
        .map(|c| {
            format!(
                "    {{ \"name\": \"{}\", \"samples_per_sec\": {:.0}, \"records\": {} }}",
                c.name, c.samples_per_sec, c.records
            )
        })
        .collect();
    let calib_json: Vec<String> = calibs
        .iter()
        .map(|c| {
            format!(
                "    {{ \"name\": \"{}\", \"us_per_epoch\": {:.3}, \"epochs\": {} }}",
                c.name, c.us_per_epoch, c.epochs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"interleaved array and background calibration\",\n  {},\n  \"record_len\": {},\n  \"convert\": [\n{}\n  ],\n  \"calib\": [\n{}\n  ]\n}}\n",
        adc_bench::Provenance::capture().json_entry(),
        RECORD_LEN,
        convert_json.join(",\n"),
        calib_json.join(",\n"),
    );
    std::fs::write("BENCH_interleave.json", &json).expect("write BENCH_interleave.json");
    println!("\nwrote BENCH_interleave.json");
}
