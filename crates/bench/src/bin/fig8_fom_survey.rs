//! Regenerates Fig. 8: the Eq. 2 figure of merit versus 1/area for the
//! fifteen-converter 12-bit survey, grouped by supply voltage.
//!
//! Paper claims: "this design has the highest FM and the 2nd lowest area
//! consumption", and is the 2nd published 12b ADC at 1.8 V.

use adc_testbench::report::TextTable;
use adc_testbench::survey::fig8_survey;

fn main() {
    adc_bench::banner(
        "Fig. 8 -- Figure of Merit (Eq. 2) vs 1/A for 12b ADCs",
        "FM = 2^ENOB * f_CR / (A * P_SUP); f_CR in MS/s, A in mm^2, P in mW",
    );

    let mut survey = fig8_survey();
    survey.sort_by(|a, b| b.figure_of_merit().total_cmp(&a.figure_of_merit()));

    let mut table = TextTable::new([
        "rank",
        "converter",
        "supply",
        "ENOB",
        "MS/s",
        "area mm^2",
        "mW",
        "1/A",
        "FM",
    ]);
    for (i, e) in survey.iter().enumerate() {
        table.push_row([
            format!("{}", i + 1),
            e.name.clone(),
            e.supply_group().to_string(),
            format!("{:.1}", e.enob),
            format!("{:.0}", e.f_cr_msps),
            format!("{:.2}", e.area_mm2),
            format!("{:.0}", e.power_mw),
            format!("{:.2}", e.inverse_area()),
            format!("{:.0}", e.figure_of_merit()),
        ]);
    }
    println!("\n{}", table.render());

    let this = survey
        .iter()
        .position(|e| e.name == "This design")
        .expect("present");
    println!(
        "'This design' FM rank: {} of {} (paper: highest)",
        this + 1,
        survey.len()
    );
    let smaller = survey.iter().filter(|e| e.area_mm2 < 0.86).count();
    println!("parts smaller than 0.86 mm^2: {smaller} (paper: 2nd lowest area)");
}
