//! Regenerates Fig. 4: power dissipation versus conversion rate.
//!
//! The paper's anchors: 97 mW at 110 MS/s and 110 mW at 130 MS/s, with
//! power linear in rate (the SC bias generator's Eq. 1 at work).

use adc_testbench::report::{mhz_cell, mw_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn main() {
    adc_bench::banner(
        "Fig. 4 -- power dissipation vs conversion rate",
        "fin = 10 MHz, 2 Vp-p; paper anchors 97 mW @ 110 MS/s, 110 mW @ 130 MS/s",
    );

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let runner = SweepRunner {
        policy,
        ..SweepRunner::nominal()
    };
    let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 10e6).collect();
    let readings = runner.power_sweep(&rates).expect("all rates build");

    let mut table = TextTable::new(["rate (MS/s)", "scaled (mW)", "fixed (mW)", "total (mW)"]);
    for r in &readings {
        table.push_row([
            mhz_cell(r.f_cr_hz),
            mw_cell(r.scaled_w),
            mw_cell(r.fixed_w),
            mw_cell(r.total_w),
        ]);
    }
    println!("\n{}", table.render());

    let p110 = readings
        .iter()
        // adc-lint: allow(float-eq) reason="sweep axis holds the exact literal 110e6 it was built from"
        .find(|r| r.f_cr_hz == 110e6)
        .expect("110 MS/s in sweep");
    let p130 = readings
        .iter()
        // adc-lint: allow(float-eq) reason="sweep axis holds the exact literal 130e6 it was built from"
        .find(|r| r.f_cr_hz == 130e6)
        .expect("130 MS/s in sweep");
    println!(
        "anchor check: {:.1} mW @ 110 MS/s (paper 97), {:.1} mW @ 130 MS/s (paper 110)",
        p110.total_w * 1e3,
        p130.total_w * 1e3
    );
    let slope = (p130.total_w - p110.total_w) / 20e6 * 1e9;
    println!("slope: {slope:.3} mW per MS/s (paper ~0.65)");
}
