//! Perf-regression gate: diffs freshly generated `BENCH_runtime.json`,
//! `BENCH_service.json`, `BENCH_dsp.json`, `BENCH_interleave.json`,
//! and `BENCH_cluster.json` against committed baselines.
//!
//! ```text
//! bench_compare [--baseline-dir DIR] [--fresh-dir DIR]
//!               [--tolerance PCT] [--deny-perf] [--lanes]
//! ```
//!
//! For every campaign in the runtime report the parallel `samples_per_sec`
//! is compared, and for the service report `samples_per_sec` plus the
//! client p99 latency. The DSP report compares single-thread conversion
//! `samples_per_sec` per configuration row and `fft_real` `us_per_call`
//! per record length; the interleave report compares ganged-array
//! conversion `samples_per_sec` and background-calibration
//! `us_per_epoch` per array row; the cluster report compares
//! distributed campaign `jobs_per_sec` per host-count row. These
//! reports are *optional* — when either side
//! lacks the file (a baseline predating the report) the comparison is
//! skipped rather than failed. `--lanes` adds the DSP report's
//! lane-parallel axis: laned conversion samples/sec *and* the
//! scalar-relative speedup per lane count, advisory (printed, not
//! diffed) when the baseline predates the `lanes` field. A figure regresses when it is worse than the baseline by
//! more than the tolerance (default 30%): throughput lower, latency
//! higher. Improvements always pass.
//!
//! Benchmarks are only comparable between like machines, so when the
//! `provenance.host_cpus` stamps differ the comparison is *exempt*: the
//! diff is still printed but regressions cannot fail the gate. Baselines
//! predating the provenance stamp fall back to the top-level
//! `host_cpus` field, else count as unknown (treated as a host mismatch).
//!
//! Exit status: `0` when clean, exempt, or regressions found without
//! `--deny-perf`; `1` on regressions under `--deny-perf`; `2` on
//! usage/parse errors. CI runs the gate non-fatally by default
//! (`./ci.sh perf`) and hardens it with `./ci.sh --deny-perf perf`.

use std::fmt::Write as _;
use std::process::ExitCode;

use adc_trace::json::{self, Json};

/// Default regression tolerance, percent.
const DEFAULT_TOLERANCE_PCT: f64 = 30.0;

struct Options {
    baseline_dir: String,
    fresh_dir: String,
    tolerance_pct: f64,
    deny_perf: bool,
    lanes: bool,
}

fn usage() -> String {
    "usage: bench_compare [--baseline-dir DIR] [--fresh-dir DIR] \
     [--tolerance PCT] [--deny-perf] [--lanes]"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baseline_dir: "baseline".to_string(),
        fresh_dir: ".".to_string(),
        tolerance_pct: DEFAULT_TOLERANCE_PCT,
        deny_perf: false,
        lanes: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--baseline-dir" => opts.baseline_dir = value("--baseline-dir")?,
            "--fresh-dir" => opts.fresh_dir = value("--fresh-dir")?,
            "--tolerance" => {
                let raw = value("--tolerance")?;
                opts.tolerance_pct = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| {
                        format!("--tolerance wants a non-negative percent, got {raw}")
                    })?;
            }
            "--deny-perf" => opts.deny_perf = true,
            "--lanes" => opts.lanes = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Walks `doc` down a `.`-separated path of object keys.
fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    path.split('.').try_fold(doc, |node, key| node.get(key))
}

fn lookup_f64(doc: &Json, path: &str) -> Option<f64> {
    lookup(doc, path).and_then(Json::as_f64)
}

/// The `host_cpus` stamp of a report: the provenance object when
/// present, else the legacy top-level field of pre-provenance baselines.
fn host_cpus(doc: &Json) -> Option<f64> {
    lookup_f64(doc, "provenance.host_cpus").or_else(|| lookup_f64(doc, "host_cpus"))
}

/// Which way "worse" points for a figure.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Bigger is better (throughput): a drop is a regression.
    HigherIsBetter,
    /// Smaller is better (latency): a rise is a regression.
    LowerIsBetter,
}

struct Comparison {
    label: String,
    baseline: f64,
    fresh: f64,
    delta_pct: f64,
    regressed: bool,
}

/// Compares one figure; `None` when either side lacks it (e.g. a
/// campaign renamed between baseline and fresh runs).
fn compare(
    label: &str,
    baseline: Option<f64>,
    fresh: Option<f64>,
    dir: Direction,
    tolerance_pct: f64,
) -> Option<Comparison> {
    let (baseline, fresh) = (baseline?, fresh?);
    if baseline <= 0.0 {
        return None;
    }
    let delta_pct = (fresh - baseline) / baseline * 100.0;
    let worse_pct = match dir {
        Direction::HigherIsBetter => -delta_pct,
        Direction::LowerIsBetter => delta_pct,
    };
    Some(Comparison {
        label: label.to_string(),
        baseline,
        fresh,
        delta_pct,
        regressed: worse_pct > tolerance_pct,
    })
}

/// Collects the runtime-report comparisons: parallel samples/sec per
/// campaign, matched by campaign name.
fn compare_runtime(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Comparison> {
    let campaigns = |doc: &Json| -> Vec<(String, f64)> {
        lookup(doc, "campaigns")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|c| {
                        let name = c.get("name")?.as_str()?.to_string();
                        let sps = lookup_f64(c, "parallel.samples_per_sec")?;
                        Some((name, sps))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base = campaigns(baseline);
    let new = campaigns(fresh);
    base.iter()
        .filter_map(|(name, b)| {
            let f = new.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            compare(
                &format!("runtime {name} samples/sec"),
                Some(*b),
                f,
                Direction::HigherIsBetter,
                tolerance_pct,
            )
        })
        .collect()
}

/// Collects the service-report comparisons: end-to-end throughput and
/// latency figures. The saturation / default-load rows only exist in
/// open-loop-generator reports; [`compare`] skips any row the baseline
/// predates, so the two schemas compare cleanly across the cutover.
fn compare_service(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Comparison> {
    [
        (
            "service samples/sec",
            "samples_per_sec",
            Direction::HigherIsBetter,
            1.0,
        ),
        (
            "service requests/sec",
            "requests_per_sec",
            Direction::HigherIsBetter,
            1.0,
        ),
        (
            "service saturation req/s",
            "saturation_rps",
            Direction::HigherIsBetter,
            1.0,
        ),
        // Client-observed open-loop tail latency counts generator-side
        // scheduling noise on a shared 1-CPU host (multi-ms ambient
        // stalls land right at the p99 rank), so it swings ~2x between
        // otherwise identical runs — gate it at double tolerance. The
        // server-side default-load p99 below is the stable tail gate.
        (
            "service client p99 latency (us)",
            "client_latency_us.p99",
            Direction::LowerIsBetter,
            2.0,
        ),
        (
            "service default-load server p99 (us)",
            "default_load.server_latency_us.p99",
            Direction::LowerIsBetter,
            1.0,
        ),
    ]
    .iter()
    .filter_map(|(label, path, dir, tol_mult)| {
        compare(
            label,
            lookup_f64(baseline, path),
            lookup_f64(fresh, path),
            *dir,
            tolerance_pct * tol_mult,
        )
    })
    .collect()
}

/// Collects the DSP-kernel comparisons: single-thread conversion
/// samples/sec per configuration row and `fft_real` microseconds per
/// call per record length.
fn compare_dsp(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Comparison> {
    let conversions = |doc: &Json| -> Vec<(String, f64)> {
        lookup(doc, "conversion")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|c| {
                        let name = c.get("name")?.as_str()?.to_string();
                        let sps = lookup_f64(c, "samples_per_sec")?;
                        Some((name, sps))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let ffts = |doc: &Json| -> Vec<(u64, f64)> {
        lookup(doc, "fft")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|f| {
                        let n = lookup_f64(f, "n")? as u64;
                        let us = lookup_f64(f, "us_per_call")?;
                        Some((n, us))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut rows = Vec::new();
    let new_conv = conversions(fresh);
    for (name, b) in conversions(baseline) {
        let f = new_conv.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        rows.extend(compare(
            &format!("dsp conversion {name} samples/sec"),
            Some(b),
            f,
            Direction::HigherIsBetter,
            tolerance_pct,
        ));
    }
    let new_fft = ffts(fresh);
    for (n, b) in ffts(baseline) {
        let f = new_fft.iter().find(|(m, _)| *m == n).map(|(_, v)| *v);
        rows.extend(compare(
            &format!("dsp fft_real n={n} us/call"),
            Some(b),
            f,
            Direction::LowerIsBetter,
            tolerance_pct,
        ));
    }
    rows
}

/// The DSP report's lane-axis rows: `(lane count, samples/sec,
/// speedup vs the scalar nominal row of the same run)`.
fn lanes_rows(doc: &Json) -> Vec<(u64, f64, f64)> {
    lookup(doc, "lanes")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|l| {
                    let lanes = lookup_f64(l, "lanes")? as u64;
                    let sps = lookup_f64(l, "samples_per_sec")?;
                    let speedup = lookup_f64(l, "speedup_vs_scalar")?;
                    Some((lanes, sps, speedup))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Collects the `--lanes` axis comparisons over the DSP report: laned
/// conversion samples/sec *and* the scalar-relative speedup, per lane
/// count. Diffing the speedup as well as the raw throughput catches the
/// failure mode a throughput-only diff misses — the laned kernel
/// quietly degrading toward the scalar path while both rows drift
/// within tolerance on an otherwise-slower run.
fn compare_dsp_lanes(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Comparison> {
    let new = lanes_rows(fresh);
    let mut rows = Vec::new();
    for (lanes, b_sps, b_speedup) in lanes_rows(baseline) {
        let fresh_row = new.iter().find(|(l, _, _)| *l == lanes);
        rows.extend(compare(
            &format!("dsp lanes={lanes} samples/sec"),
            Some(b_sps),
            fresh_row.map(|&(_, sps, _)| sps),
            Direction::HigherIsBetter,
            tolerance_pct,
        ));
        rows.extend(compare(
            &format!("dsp lanes={lanes} speedup vs scalar"),
            Some(b_speedup),
            fresh_row.map(|&(_, _, s)| s),
            Direction::HigherIsBetter,
            tolerance_pct,
        ));
    }
    rows
}

/// Collects the interleave-report comparisons: ganged-array conversion
/// samples/sec and background-calibration microseconds per epoch, each
/// matched by row name.
fn compare_interleave(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Comparison> {
    let named = |doc: &Json, key: &str, field: &str| -> Vec<(String, f64)> {
        lookup(doc, key)
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|c| {
                        let name = c.get("name")?.as_str()?.to_string();
                        let value = lookup_f64(c, field)?;
                        Some((name, value))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut rows = Vec::new();
    let new_conv = named(fresh, "convert", "samples_per_sec");
    for (name, b) in named(baseline, "convert", "samples_per_sec") {
        let f = new_conv.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        rows.extend(compare(
            &format!("interleave convert {name} samples/sec"),
            Some(b),
            f,
            Direction::HigherIsBetter,
            tolerance_pct,
        ));
    }
    let new_calib = named(fresh, "calib", "us_per_epoch");
    for (name, b) in named(baseline, "calib", "us_per_epoch") {
        let f = new_calib.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        rows.extend(compare(
            &format!("interleave calib {name} us/epoch"),
            Some(b),
            f,
            Direction::LowerIsBetter,
            tolerance_pct,
        ));
    }
    rows
}

/// Collects the cluster-report comparisons: distributed campaign
/// jobs/sec per host-count row, matched by row name.
fn compare_cluster(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Vec<Comparison> {
    let rows_of = |doc: &Json| -> Vec<(String, f64)> {
        lookup(doc, "cluster")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|c| {
                        let name = c.get("name")?.as_str()?.to_string();
                        let jps = lookup_f64(c, "jobs_per_sec")?;
                        Some((name, jps))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let new = rows_of(fresh);
    rows_of(baseline)
        .into_iter()
        .filter_map(|(name, b)| {
            let f = new.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
            compare(
                &format!("cluster {name} jobs/sec"),
                Some(b),
                f,
                Direction::HigherIsBetter,
                tolerance_pct,
            )
        })
        .collect()
}

fn load(dir: &str, file: &str) -> Result<Json, String> {
    let path = format!("{}/{file}", dir.trim_end_matches('/'));
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn render(rows: &[Comparison]) -> String {
    let mut out = String::new();
    let width = rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
    for r in rows {
        let verdict = if r.regressed { "REGRESSED" } else { "ok" };
        let _ = writeln!(
            out,
            "  {:<width$}  baseline {:>12.1}  fresh {:>12.1}  {:>+7.1}%  {verdict}",
            r.label, r.baseline, r.fresh, r.delta_pct,
        );
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // `optional` reports skip the comparison gracefully when the
    // baseline lacks the file (a report introduced after the committed
    // baseline was generated); required ones are parse errors.
    let pairs = [
        (
            "BENCH_runtime.json",
            compare_runtime as fn(&Json, &Json, f64) -> Vec<Comparison>,
            false,
        ),
        ("BENCH_service.json", compare_service, false),
        ("BENCH_dsp.json", compare_dsp, true),
        ("BENCH_interleave.json", compare_interleave, true),
        ("BENCH_cluster.json", compare_cluster, true),
    ];
    let mut rows = Vec::new();
    let mut host_mismatch = false;
    for (file, diff, optional) in pairs {
        let (baseline, fresh) = match (load(&opts.baseline_dir, file), load(&opts.fresh_dir, file))
        {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) if optional => {
                println!("{file}: {e} -- skipping comparison (report is optional)");
                continue;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_compare: {e}");
                return ExitCode::from(2);
            }
        };
        let (b_cpus, f_cpus) = (host_cpus(&baseline), host_cpus(&fresh));
        if b_cpus.is_none() || b_cpus != f_cpus {
            println!(
                "{file}: host_cpus differ (baseline {:?}, fresh {:?}) -- figures \
                 are not comparable, regressions exempt",
                b_cpus, f_cpus
            );
            host_mismatch = true;
        }
        rows.extend(diff(&baseline, &fresh, opts.tolerance_pct));
        if opts.lanes && file == "BENCH_dsp.json" {
            if lanes_rows(&baseline).is_empty() {
                // Baseline predates the lanes axis: nothing to diff, so
                // print the fresh figures and move on without a gate.
                println!(
                    "{file}: baseline predates the lanes axis -- advisory only; fresh figures:"
                );
                for (lanes, sps, speedup) in lanes_rows(&fresh) {
                    println!("  dsp lanes={lanes}  {sps:.0} samples/sec  {speedup:.2}x vs scalar");
                }
            } else {
                rows.extend(compare_dsp_lanes(&baseline, &fresh, opts.tolerance_pct));
            }
        }
    }

    println!(
        "perf diff vs baseline ({}% tolerance):\n{}",
        opts.tolerance_pct,
        render(&rows)
    );
    let regressions = rows.iter().filter(|r| r.regressed).count();
    if regressions == 0 {
        println!("no perf regressions");
        return ExitCode::SUCCESS;
    }
    if host_mismatch {
        println!("{regressions} regression(s) IGNORED: baseline from a different host");
        return ExitCode::SUCCESS;
    }
    if opts.deny_perf {
        println!("{regressions} perf regression(s) beyond tolerance (--deny-perf)");
        return ExitCode::FAILURE;
    }
    println!(
        "{regressions} perf regression(s) beyond tolerance (advisory; pass --deny-perf to fail)"
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        json::parse(text).expect("test json parses")
    }

    #[test]
    fn throughput_drop_beyond_tolerance_regresses() {
        let c = compare(
            "t",
            Some(1000.0),
            Some(600.0),
            Direction::HigherIsBetter,
            30.0,
        )
        .expect("comparable");
        assert!(c.regressed);
        let c = compare(
            "t",
            Some(1000.0),
            Some(800.0),
            Direction::HigherIsBetter,
            30.0,
        )
        .expect("comparable");
        assert!(!c.regressed);
    }

    #[test]
    fn latency_rise_beyond_tolerance_regresses() {
        let c = compare(
            "l",
            Some(100.0),
            Some(150.0),
            Direction::LowerIsBetter,
            30.0,
        )
        .expect("comparable");
        assert!(c.regressed);
        // A latency *improvement* of any size passes.
        let c = compare("l", Some(100.0), Some(20.0), Direction::LowerIsBetter, 30.0)
            .expect("comparable");
        assert!(!c.regressed);
    }

    #[test]
    fn runtime_campaigns_match_by_name() {
        let baseline = doc(r#"{"campaigns":[
                {"name":"a","parallel":{"samples_per_sec":1000}},
                {"name":"gone","parallel":{"samples_per_sec":1}}]}"#);
        let fresh = doc(r#"{"campaigns":[{"name":"a","parallel":{"samples_per_sec":500}}]}"#);
        let rows = compare_runtime(&baseline, &fresh, 30.0);
        assert_eq!(rows.len(), 1, "unmatched campaign is skipped");
        assert!(rows[0].regressed);
    }

    #[test]
    fn dsp_rows_match_by_name_and_record_length() {
        let baseline = doc(r#"{
            "conversion":[{"name":"nominal","samples_per_sec":1000000},
                          {"name":"gone","samples_per_sec":1}],
            "fft":[{"n":4096,"us_per_call":30.0},{"n":8192,"us_per_call":70.0}]}"#);
        let fresh = doc(r#"{
            "conversion":[{"name":"nominal","samples_per_sec":500000}],
            "fft":[{"n":4096,"us_per_call":29.0},{"n":8192,"us_per_call":200.0}]}"#);
        let rows = compare_dsp(&baseline, &fresh, 30.0);
        assert_eq!(rows.len(), 3, "unmatched conversion row is skipped");
        let conv = &rows[0];
        assert!(conv.label.contains("nominal") && conv.regressed);
        let fft_ok = &rows[1];
        assert!(fft_ok.label.contains("4096") && !fft_ok.regressed);
        let fft_bad = &rows[2];
        assert!(fft_bad.label.contains("8192") && fft_bad.regressed);
    }

    #[test]
    fn interleave_rows_match_by_name_in_both_directions() {
        let baseline = doc(r#"{
            "convert":[{"name":"m2_matched","samples_per_sec":2000000},
                       {"name":"gone","samples_per_sec":1}],
            "calib":[{"name":"m2","us_per_epoch":900.0}]}"#);
        let fresh = doc(r#"{
            "convert":[{"name":"m2_matched","samples_per_sec":1000000}],
            "calib":[{"name":"m2","us_per_epoch":2000.0}]}"#);
        let rows = compare_interleave(&baseline, &fresh, 30.0);
        assert_eq!(rows.len(), 2, "unmatched convert row is skipped");
        assert!(rows[0].label.contains("m2_matched") && rows[0].regressed);
        // Calibration epoch time is lower-is-better: the rise regresses.
        assert!(rows[1].label.contains("us/epoch") && rows[1].regressed);
    }

    #[test]
    fn cluster_rows_match_by_host_count_name() {
        let baseline = doc(r#"{
            "cluster":[{"name":"hosts1","jobs_per_sec":1000.0},
                       {"name":"hosts2","jobs_per_sec":1700.0},
                       {"name":"gone","jobs_per_sec":1.0}]}"#);
        let fresh = doc(r#"{
            "cluster":[{"name":"hosts1","jobs_per_sec":950.0},
                       {"name":"hosts2","jobs_per_sec":400.0}]}"#);
        let rows = compare_cluster(&baseline, &fresh, 30.0);
        assert_eq!(rows.len(), 2, "unmatched cluster row is skipped");
        assert!(rows[0].label.contains("hosts1") && !rows[0].regressed);
        assert!(rows[1].label.contains("hosts2") && rows[1].regressed);
    }

    #[test]
    fn lanes_axis_diffs_throughput_and_speedup_per_lane_count() {
        let baseline = doc(r#"{
            "lanes":[{"lanes":1,"samples_per_sec":900000,"speedup_vs_scalar":1.1},
                     {"lanes":8,"samples_per_sec":14000000,"speedup_vs_scalar":2.3},
                     {"lanes":16,"samples_per_sec":1,"speedup_vs_scalar":1.0}]}"#);
        let fresh = doc(r#"{
            "lanes":[{"lanes":1,"samples_per_sec":880000,"speedup_vs_scalar":1.05},
                     {"lanes":8,"samples_per_sec":13500000,"speedup_vs_scalar":1.2}]}"#);
        let rows = compare_dsp_lanes(&baseline, &fresh, 30.0);
        assert_eq!(rows.len(), 4, "unmatched lane count is skipped");
        assert!(rows.iter().all(|r| r.label.starts_with("dsp lanes=")));
        // Raw throughput held on both matched lane counts...
        assert!(!rows[0].regressed && !rows[2].regressed);
        // ...but the 8-lane speedup collapsed toward scalar: that is
        // exactly what the speedup row exists to catch.
        assert!(rows[3].label.contains("speedup") && rows[3].regressed);
    }

    #[test]
    fn lanes_axis_is_empty_when_baseline_predates_the_field() {
        assert!(lanes_rows(&doc(r#"{"conversion":[]}"#)).is_empty());
    }

    #[test]
    fn host_cpus_prefers_provenance_and_falls_back() {
        let stamped = doc(r#"{"provenance":{"host_cpus":8},"host_cpus":2}"#);
        assert_eq!(host_cpus(&stamped), Some(8.0));
        let legacy = doc(r#"{"host_cpus":2}"#);
        assert_eq!(host_cpus(&legacy), Some(2.0));
        assert_eq!(host_cpus(&doc("{}")), None);
    }

    #[test]
    fn options_parse_and_reject_bad_tolerance() {
        let opts = parse_options(&[
            "--baseline-dir".into(),
            "b".into(),
            "--tolerance".into(),
            "12.5".into(),
            "--deny-perf".into(),
        ])
        .expect("parses");
        assert_eq!(opts.baseline_dir, "b");
        assert_eq!(opts.tolerance_pct, 12.5);
        assert!(opts.deny_perf);
        assert!(parse_options(&["--tolerance".into(), "-3".into()]).is_err());
        assert!(parse_options(&["--bogus".into()]).is_err());
    }
}
