//! Extension experiment: two-tone intermodulation of the nominal die.
//!
//! Not a paper figure — the natural companion measurement to Fig. 6: the
//! odd-order input-switch nonlinearity that limits single-tone SFDR at
//! high frequency appears here as IMD3 growing with tone frequency.
//!
//! The centre frequencies run as one campaign under
//! [`adc_bench::campaign_setup`]. Each point fabricates its own
//! golden-seed session (points must be independent to parallelize), so
//! every capture sees the noise stream from a fresh die rather than the
//! continuation of the previous capture's — same die, same statistics,
//! slightly different per-sample noise than the old serial loop.

use adc_spectral::twotone::analyze_two_tone;
use adc_spectral::window::coherent_frequency_clear;
use adc_testbench::report::{db_cell, mhz_cell, TextTable};
use adc_testbench::{MeasurementSession, MultiTone, SineSource, GOLDEN_SEED};

fn main() {
    adc_bench::banner(
        "Extension -- two-tone IMD vs tone frequency",
        "companion to Fig. 6: input-switch nonlinearity as IMD3",
    );

    let reference = MeasurementSession::nominal().expect("nominal builds");
    let n = reference.record_len;
    let f_cr = reference.adc().config().f_cr_hz;
    let base = reference.adc().config().clone();
    drop(reference);

    let centres_mhz = [10.0, 30.0, 50.0, 80.0];

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let points = policy
        .measure_campaign(
            "twotone-imd",
            &(GOLDEN_SEED, &base, n),
            GOLDEN_SEED,
            centres_mhz.to_vec(),
            |_ctx, &centre_mhz| {
                let (f1, m1) = coherent_frequency_clear(f_cr, n, centre_mhz * 1e6 * 0.97, 8);
                let (f2, m2) = coherent_frequency_clear(f_cr, n, centre_mhz * 1e6 * 1.03, 8);
                let stimulus = MultiTone {
                    tones: vec![SineSource::clean(0.49, f1), SineSource::clean(0.49, f2)],
                };
                let mut session = MeasurementSession::new(base.clone(), GOLDEN_SEED)?;
                let codes = session.adc_mut().convert_waveform(&stimulus, n);
                let record = session.reconstruct(&codes);
                let b1 = adc_spectral::window::alias_bin(m1, n);
                let b2 = adc_spectral::window::alias_bin(m2, n);
                let a = analyze_two_tone(&record, b1, b2).expect("valid record");
                Ok((a.imd2_dbc, a.imd3_dbc))
            },
        )
        .expect("all centre frequencies build");

    let mut table = TextTable::new(["centre (MHz)", "IMD2 (dBc)", "IMD3 (dBc)"]);
    for (&centre_mhz, &(imd2, imd3)) in centres_mhz.iter().zip(&points) {
        table.push_row([mhz_cell(centre_mhz * 1e6), db_cell(imd2), db_cell(imd3)]);
    }
    println!("\n{}", table.render());
    println!("expected: IMD3 worsens toward high centre frequencies, mirroring");
    println!("the Fig. 6 SFDR roll-off; IMD2 stays low (differential circuit).");
}
