//! The Fig. 7 substitution: the die photograph cannot be simulated, so
//! this binary renders the block-level area budget it documents — the
//! published 0.86 mm² decomposed per the paper's floorplan labels, with
//! the stage-scaling profile visible in the per-stage areas.

use adc_pipeline::config::ScalingProfile;
use adc_testbench::floorplan::Floorplan;

fn main() {
    adc_bench::banner(
        "Fig. 7 (substitution) -- die area budget / floorplan",
        "paper Fig. 7 die photograph; published area 0.86 mm^2",
    );

    let fp = Floorplan::paper(&ScalingProfile::Paper);
    println!("\n{}", fp.render_ascii());
    println!(
        "pipeline chain share: {:.0}% of the die",
        fp.chain_mm2() / fp.total_mm2() * 100.0
    );
    println!("\nfor comparison, the same budget without stage scaling:");
    let uniform = Floorplan::paper(&ScalingProfile::Uniform);
    println!("{}", uniform.render_ascii());
    println!("(both normalise to the published envelope; the scaled profile");
    println!("frees stage area that the paper spends nowhere — i.e. a smaller die.)");
}
