//! Ablation C: the paper's stage scaling (1, 2/3, 1/3 ×8) versus an
//! unscaled pipeline (§2, refs \[1\]\[2\]).
//!
//! Claim: scaling the back-end stages' capacitors and bias currents saves
//! area and power "with only small degradation in converter performance",
//! because later-stage noise and settling errors are divided by the
//! cumulative interstage gain when referred to the input.

use adc_pipeline::config::{AdcConfig, ScalingProfile};
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::{MeasurementSession, GOLDEN_SEED};

fn measure(scaling: ScalingProfile) -> (f64, f64, f64, f64) {
    let config = AdcConfig {
        scaling,
        ..AdcConfig::nominal_110ms()
    };
    let mut s = MeasurementSession::new(config, GOLDEN_SEED).expect("config builds");
    let power_mw = s.adc().power_w() * 1e3;
    let m = s.measure_tone(10e6);
    (
        m.analysis.snr_db,
        m.analysis.sndr_db,
        m.analysis.enob,
        power_mw,
    )
}

fn main() {
    adc_bench::banner(
        "Ablation C -- stage scaling (1, 2/3, 1/3) vs unscaled pipeline",
        "paper section 2: lower area/power, small performance cost",
    );

    let mut table = TextTable::new(["profile", "SNR (dB)", "SNDR (dB)", "ENOB", "power (mW)"]);
    let profiles = [
        ("paper scaled", ScalingProfile::Paper),
        ("unscaled", ScalingProfile::Uniform),
        (
            "aggressive (1, 1/2, 1/4)",
            ScalingProfile::Custom(vec![
                1.0, 0.5, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25,
            ]),
        ),
    ];
    for (label, p) in profiles {
        let (snr, sndr, enob, power) = measure(p);
        table.push_row([
            label.to_string(),
            db_cell(snr),
            db_cell(sndr),
            format!("{enob:.2}"),
            format!("{power:.1}"),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: unscaled burns ~2x the scaled pipeline power for");
    println!("well under 1 dB of SNDR; aggressive scaling trades a little more.");
}
