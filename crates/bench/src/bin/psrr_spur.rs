//! Extension experiment: supply-ripple sensitivity (PSRR).
//!
//! An IP block shares its SoC's supply with switching digital logic; the
//! datasheet question is how much of that ripple reaches the output. The
//! experiment injects a coherent supply tone at several amplitudes and
//! PSRR values and reads the resulting spur — which tracks the
//! `ripple − PSRR` prediction.

use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_spectral::fft::power_spectrum_one_sided;
use adc_spectral::window::coherent_frequency;
use adc_testbench::report::TextTable;

fn main() {
    adc_bench::banner(
        "Extension -- supply ripple spur vs PSRR",
        "SoC integration: digital supply noise reaching the converter output",
    );

    let n = 8192;
    let ripple_bin = 373;
    let ripple_hz = 110e6 * ripple_bin as f64 / n as f64;
    let (f_in, _) = coherent_frequency(110e6, n, 10e6);
    let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();

    let mut table = TextTable::new([
        "ripple (mVp)",
        "PSRR (dB)",
        "spur (dBFS) measured",
        "spur (dBFS) predicted",
    ]);
    for (ripple_v, psrr_db) in [(10e-3, 60.0), (50e-3, 60.0), (50e-3, 40.0), (100e-3, 40.0)] {
        let cfg = AdcConfig {
            supply_ripple_v: ripple_v,
            supply_ripple_hz: ripple_hz,
            psrr_db,
            ..AdcConfig::nominal_110ms()
        };
        let mut adc = PipelineAdc::build(cfg, adc_testbench::GOLDEN_SEED).expect("config builds");
        let codes = adc.convert_waveform(&tone, n);
        let rec: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
        let ps = power_spectrum_one_sided(&rec).expect("power-of-two record");
        let measured_dbfs = 10.0 * (ps[ripple_bin] / 0.5).log10();
        // Both spur and full scale are sines, so dBFS = 20·log10(r/FS).
        let predicted_dbfs = 20.0 * (ripple_v / 1.0).log10() - psrr_db;
        table.push_row([
            format!("{:.0}", ripple_v * 1e3),
            format!("{psrr_db:.0}"),
            format!("{measured_dbfs:.1}"),
            format!("{predicted_dbfs:.1}"),
        ]);
    }
    println!("\n{}", table.render());
    println!("spurs below the ~-105 dBFS/bin noise floor disappear into it;");
    println!("above it they track the ripple − PSRR prediction.");
}
