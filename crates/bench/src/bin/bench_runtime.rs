//! Benchmarks the `adc-runtime` campaign engine: serial versus parallel
//! versus warm-cache wall time on the workloads the engine was built
//! for, written to `BENCH_runtime.json`.
//!
//! Two campaigns, each timed three ways:
//!
//! * `serial` — 1 worker thread, no cache (the pre-runtime baseline);
//! * `parallel` — all cores (`ADC_THREADS` overrides), no cache;
//! * `warm_cache` — all cores with a pre-populated content-hash point
//!   cache (the figure-regeneration path when points are unchanged).
//!
//! The campaigns: a 16-die Monte-Carlo yield run (4096-point records)
//! and the Fig. 5 rate sweep (9 points, 8192-point records). All runs
//! are asserted bit-identical before timings are reported — the speedup
//! is free of any result drift. The parallel speedup scales with host
//! cores (a 1-core container pins it at ~1x); the warm-cache speedup
//! does not depend on core count.

use std::sync::Arc;
use std::time::Instant;

use adc_pipeline::config::AdcConfig;
use adc_runtime::{default_threads, CollectingObserver, ResultCache};
use adc_testbench::montecarlo::{run_monte_carlo_with, MonteCarloResult};
use adc_testbench::sweep::{DynamicPoint, SweepRunner};
use adc_testbench::RunPolicy;

struct Timing {
    wall_s: f64,
    samples_per_sec: f64,
    threads: usize,
}

fn timed<T>(policy: RunPolicy, run: &impl Fn(RunPolicy) -> T) -> (T, Timing) {
    let observer = Arc::new(CollectingObserver::default());
    let threads = if policy.threads == 0 {
        default_threads()
    } else {
        policy.threads
    };
    let policy = policy.observe(observer.clone());
    let start = Instant::now();
    let value = run(policy);
    let wall_s = start.elapsed().as_secs_f64();
    let summaries = observer.summaries.lock().expect("observer lock");
    let samples: u64 = summaries.iter().map(|s| s.samples).sum();
    (
        value,
        Timing {
            wall_s,
            samples_per_sec: samples as f64 / wall_s.max(1e-12),
            threads,
        },
    )
}

struct CampaignBench {
    name: &'static str,
    jobs: usize,
    serial: Timing,
    parallel: Timing,
    warm_cache: Timing,
}

impl CampaignBench {
    /// Times one campaign serial / parallel / warm-cache and asserts all
    /// three produce identical results.
    fn measure<T: PartialEq + std::fmt::Debug>(
        name: &'static str,
        jobs: usize,
        threads: usize,
        run: impl Fn(RunPolicy) -> T,
    ) -> Self {
        let (serial_result, serial) = timed(RunPolicy::serial(), &run);
        let (parallel_result, parallel) = timed(RunPolicy::parallel(threads), &run);
        assert_eq!(
            serial_result, parallel_result,
            "thread determinism violated"
        );
        let cache = Arc::new(ResultCache::in_memory());
        let (_, _) = timed(
            RunPolicy::parallel(threads).cached(Arc::clone(&cache)),
            &run,
        );
        let (warm_result, warm_cache) = timed(RunPolicy::parallel(threads).cached(cache), &run);
        assert_eq!(serial_result, warm_result, "cache determinism violated");
        Self {
            name,
            jobs,
            serial,
            parallel,
            warm_cache,
        }
    }

    fn parallel_speedup(&self) -> f64 {
        self.serial.wall_s / self.parallel.wall_s.max(1e-12)
    }

    fn cache_speedup(&self) -> f64 {
        self.serial.wall_s / self.warm_cache.wall_s.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"jobs\": {},\n",
                "      \"serial\": {{ \"wall_s\": {:.4}, \"samples_per_sec\": {:.0} }},\n",
                "      \"parallel\": {{ \"wall_s\": {:.4}, \"samples_per_sec\": {:.0}, \"threads\": {} }},\n",
                "      \"warm_cache\": {{ \"wall_s\": {:.4}, \"threads\": {} }},\n",
                "      \"parallel_speedup\": {:.2},\n",
                "      \"cache_speedup\": {:.2}\n",
                "    }}"
            ),
            self.name,
            self.jobs,
            self.serial.wall_s,
            self.serial.samples_per_sec,
            self.parallel.wall_s,
            self.parallel.samples_per_sec,
            self.parallel.threads,
            self.warm_cache.wall_s,
            self.warm_cache.threads,
            self.parallel_speedup(),
            self.cache_speedup(),
        )
    }
}

fn bench_montecarlo(threads: usize) -> CampaignBench {
    const DIES: usize = 16;
    let config = AdcConfig::nominal_110ms();
    CampaignBench::measure(
        "montecarlo_yield_16die",
        DIES,
        threads,
        move |policy: RunPolicy| -> MonteCarloResult {
            run_monte_carlo_with(&config, DIES, 10e6, 4096, &policy).expect("campaign runs")
        },
    )
}

fn bench_fig5_sweep(threads: usize) -> CampaignBench {
    let rates: Vec<f64> = [20.0, 40.0, 60.0, 80.0, 100.0, 110.0, 120.0, 140.0, 200.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();
    let jobs = rates.len();
    CampaignBench::measure(
        "fig5_rate_sweep",
        jobs,
        threads,
        move |policy: RunPolicy| -> Vec<DynamicPoint> {
            let runner = SweepRunner {
                policy,
                ..SweepRunner::nominal()
            };
            runner.rate_sweep(&rates, 10e6).expect("all rates build")
        },
    )
}

fn main() {
    let args = adc_bench::CampaignArgs::parse();
    let threads = if args.threads == 0 {
        default_threads()
    } else {
        args.threads
    };
    adc_bench::banner(
        "Runtime -- serial vs parallel vs warm-cache campaign execution",
        "adc-runtime engine benchmark (results asserted bit-identical)",
    );
    println!(
        "host cores: {}, parallel worker threads: {threads}\n",
        default_threads()
    );

    let benches = [bench_montecarlo(threads), bench_fig5_sweep(threads)];
    for b in &benches {
        println!(
            "{:<24} {:2} jobs: serial {:.2}s | parallel {:.2}s ({:.2}x on {} threads) | warm cache {:.3}s ({:.0}x)",
            b.name,
            b.jobs,
            b.serial.wall_s,
            b.parallel.wall_s,
            b.parallel_speedup(),
            b.parallel.threads,
            b.warm_cache.wall_s,
            b.cache_speedup(),
        );
    }

    let body: Vec<String> = benches.iter().map(CampaignBench::to_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"adc-runtime campaign engine\",\n  {},\n  \"host_cpus\": {},\n  \"threads_parallel\": {},\n  \"campaigns\": [\n{}\n  ]\n}}\n",
        adc_bench::Provenance::capture().json_entry(),
        default_threads(),
        threads,
        body.join(",\n"),
    );
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("\nwrote BENCH_runtime.json");
}
