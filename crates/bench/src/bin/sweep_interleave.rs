//! Extension experiment: time-interleaved array SNDR and spur families
//! across channel count, timing-skew sigma, and background calibration.
//!
//! The paper's converter is a single 110 MS/s core; ganging M of them
//! (DESIGN.md §13) buys `M x` the rate but exposes the classic
//! interleave spur families — per-channel offsets at `k·fs/M`, gain and
//! timing-skew images at `k·fs/M ± fin`. This sweep quantifies both the
//! damage and the repair: every grid point captures the same coherent
//! tone through an array with Monte-Carlo mismatch, once raw and once
//! behind the background calibration loop, and reports SNDR plus the
//! worst spur of each family from the forensics attributor.
//!
//! The grid runs as one campaign under [`adc_bench::campaign_setup`]
//! (`ADC_THREADS` workers, `ADC_CACHE_DIR` point cache; cache keys fold
//! in the `NUMERICS_EPOCH`, so numerics changes recompute every point).

use adc_calib::{Alignment, GangedError, GangedScenario};
use adc_pipeline::config::AdcConfig;
use adc_pipeline::interleave::InterleaveMismatch;
use adc_spectral::interleave::attribute_record;
use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::GOLDEN_SEED;

/// Capture record length per grid point.
const RECORD_LEN: u32 = 4096;

/// Target stimulus frequency (snapped to coherent per aggregate rate).
const F_TARGET: f64 = 20e6;

/// Background-calibration budget per point.
const CAL_EPOCHS: u32 = 24;
const CAL_EPOCH_LEN: u32 = 4096;

/// One grid point: channel count, skew sigma (s), background cal on/off.
type GridPoint = (u64, f64, bool);

fn main() {
    adc_bench::banner(
        "Extension -- interleaved array SNDR vs channels, skew, calibration",
        "ganged paper cores: mismatch spur families and their background repair",
    );

    let base = AdcConfig::nominal_110ms();
    let channels = [2u64, 4];
    let skew_sigmas = [0.0f64, 2e-12, 5e-12];
    let mut grid: Vec<GridPoint> = Vec::new();
    for &m in &channels {
        for &sigma in &skew_sigmas {
            for cal in [false, true] {
                grid.push((m, sigma, cal));
            }
        }
    }

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let points = policy
        .measure_campaign(
            "sweep-interleave",
            &(GOLDEN_SEED, &base, RECORD_LEN, CAL_EPOCHS, CAL_EPOCH_LEN),
            GOLDEN_SEED,
            grid.clone(),
            |_ctx, &(m, sigma, cal)| {
                let scenario = GangedScenario {
                    config: base.clone(),
                    channels: m as u32,
                    seed: GOLDEN_SEED,
                    mismatch: InterleaveMismatch {
                        skew_sigma_s: sigma,
                        ..InterleaveMismatch::typical()
                    },
                    f_target_hz: F_TARGET,
                    n_samples: RECORD_LEN,
                    alignment: if cal {
                        Alignment::Background {
                            epochs: CAL_EPOCHS,
                            epoch_len: CAL_EPOCH_LEN,
                        }
                    } else {
                        Alignment::Raw
                    },
                };
                let capture = match scenario.capture_tone() {
                    Ok(c) => c,
                    Err(GangedError::Build(e)) => return Err(e),
                    Err(other) => panic!("sweep scenario must be well-formed: {other}"),
                };
                let analysis = analyze_tone(&capture.values, &ToneAnalysisConfig::coherent())
                    .expect("power-of-two coherent record analyzes");
                let spurs = attribute_record(&capture.values, m as usize)
                    .expect("record length divides the channel count");
                Ok((
                    analysis.sndr_db,
                    spurs.offset_worst_dbc,
                    spurs.image_worst_dbc,
                    f64::from(capture.epochs_run),
                    f64::from(u8::from(capture.converged)),
                ))
            },
        )
        .expect("all grid points build");

    let mut table = TextTable::new([
        "M",
        "skew sigma (ps)",
        "background cal",
        "SNDR (dB)",
        "offset spur (dBc)",
        "image spur (dBc)",
        "epochs",
    ]);
    for (&(m, sigma, cal), &(sndr, offset_dbc, image_dbc, epochs, converged)) in
        grid.iter().zip(&points)
    {
        let cal_cell = if cal {
            if converged > 0.5 {
                "converged".to_string()
            } else {
                "epoch budget spent".to_string()
            }
        } else {
            "off".to_string()
        };
        table.push_row([
            format!("{m}"),
            format!("{:.1}", sigma * 1e12),
            cal_cell,
            db_cell(sndr),
            format!("{offset_dbc:.1}"),
            format!("{image_dbc:.1}"),
            format!("{epochs:.0}"),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: raw SNDR collapses as skew grows (image family at");
    println!("k*fs/M +/- fin) while offsets set the k*fs/M tones; background");
    println!("calibration pulls both families down and restores SNDR to");
    println!("within ~1 dB of the matched array at every grid point.");
}
