//! Extension: the architecture family — the paper's 110 MS/s 12b design
//! next to a representative configuration of its sibling (ref \[1\], the
//! same group's 1.2 V 220 MS/s 10b part in 0.13 µm).
//!
//! Same library, same physics; only the configuration changes — the
//! "IP block" claim made concrete.

use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::{MeasurementSession, GOLDEN_SEED};

fn main() {
    adc_bench::banner(
        "Extension -- architecture family: this paper vs ref [1] sibling",
        "12b/110MS/s/1.8V (reproduced) vs 10b/220MS/s/1.2V (representative)",
    );

    let designs = [
        ("12b 110MS/s 1.8V (paper)", AdcConfig::nominal_110ms(), 10e6),
        (
            "10b 220MS/s 1.2V (ref [1])",
            AdcConfig::sibling_220ms_10b(),
            20e6,
        ),
    ];

    let mut table = TextTable::new([
        "design",
        "bits",
        "rate (MS/s)",
        "supply",
        "SNR",
        "SNDR",
        "ENOB",
        "power (mW)",
    ]);
    for (label, cfg, fin) in designs {
        let bits = cfg.resolution_bits();
        let rate = cfg.f_cr_hz / 1e6;
        let vdd = cfg.conditions.vdd_v;
        let mut s = MeasurementSession::new(cfg, GOLDEN_SEED).expect("config builds");
        let power_mw = s.adc().power_w() * 1e3;
        let m = s.measure_tone(fin);
        table.push_row([
            label.to_string(),
            format!("{bits}"),
            format!("{rate:.0}"),
            format!("{vdd:.1} V"),
            db_cell(m.analysis.snr_db),
            db_cell(m.analysis.sndr_db),
            format!("{:.2}", m.analysis.enob),
            format!("{power_mw:.1}"),
        ]);
    }
    println!("\n{}", table.render());
    println!("the sibling rows are representative (that paper's tables are out");
    println!("of scope); the point is one library covering the design family.");
}
