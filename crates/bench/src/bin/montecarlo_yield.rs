//! Extension experiment: Monte-Carlo yield of the design across process
//! spread — the analysis behind shipping the paper's converter as an IP
//! block.

use adc_pipeline::config::AdcConfig;
use adc_testbench::montecarlo::{run_monte_carlo_with, YieldSpec};
use adc_testbench::report::TextTable;

fn main() {
    adc_bench::banner(
        "Extension -- Monte-Carlo yield across 32 dies",
        "process spread of Table I metrics; spec: SNDR>=62dB, SFDR>=65dB, P<=115mW",
    );

    let (policy, _trace) = adc_bench::campaign_setup();
    let mc = run_monte_carlo_with(&AdcConfig::nominal_110ms(), 32, 10e6, 4096, &policy)
        .expect("campaign runs");

    let mut table = TextTable::new(["metric", "min", "mean", "max", "sigma"]);
    let fmt = |v: f64| format!("{v:.2}");
    for (name, s) in [
        ("SNR (dB)", mc.snr),
        ("SNDR (dB)", mc.sndr),
        ("SFDR (dB)", mc.sfdr),
        ("ENOB (bit)", mc.enob),
    ] {
        table.push_row([
            name.to_string(),
            fmt(s.min),
            fmt(s.mean),
            fmt(s.max),
            fmt(s.sigma),
        ]);
    }
    table.push_row([
        "power (mW)".to_string(),
        fmt(mc.power.min * 1e3),
        fmt(mc.power.mean * 1e3),
        fmt(mc.power.max * 1e3),
        fmt(mc.power.sigma * 1e3),
    ]);
    println!("\n{}", table.render());

    let spec = YieldSpec::paper_with_margin();
    println!(
        "yield vs margin spec: {:.0}%",
        mc.yield_against(&spec) * 100.0
    );
    for die in mc.failures(&spec) {
        println!(
            "  fail: seed {} (SNDR {:.1}, SFDR {:.1}, {:.1} mW)",
            die.seed,
            die.sndr_db,
            die.sfdr_db,
            die.power_w * 1e3
        );
    }
    println!("\nnote the power spread: it follows the absolute metal-capacitor");
    println!("spread through Eq. 1 — the price of the corner-tracking bias.");
}
