//! Extension experiment: Monte-Carlo yield of the design across process
//! spread — the analysis behind shipping the paper's converter as an IP
//! block.
//!
//! This campaign distributes: pass `--peers HOST:PORT,...` (or
//! `ADC_PEERS`) to farm the per-die jobs to remote `adc-server` hosts
//! through `adc-cluster`. The assembled result is bit-identical to the
//! in-process run — same per-die seeds, same cache namespace — and a
//! distributed run warms the same `--cache-dir` point cache a later
//! local run reads.

use adc_cluster::{assemble_monte_carlo, monte_carlo_campaign, standard_registry, ClusterExecutor};
use adc_pipeline::config::AdcConfig;
use adc_server::Preset;
use adc_testbench::montecarlo::{monte_carlo_plan, run_monte_carlo_with, YieldSpec};
use adc_testbench::report::TextTable;

fn main() {
    adc_bench::banner(
        "Extension -- Monte-Carlo yield across 32 dies",
        "process spread of Table I metrics; spec: SNDR>=62dB, SFDR>=65dB, P<=115mW",
    );

    let (args, policy, _trace) = adc_bench::campaign_setup();
    let config = AdcConfig::nominal_110ms();
    let mc = if args.peers.is_empty() {
        run_monte_carlo_with(&config, 32, 10e6, 4096, &policy).expect("campaign runs")
    } else {
        eprintln!("distributing 32 dies to peers: {}", args.peers.join(", "));
        let plan = monte_carlo_plan(&config, 32, 10e6, 4096);
        let campaign = monte_carlo_campaign(Preset::Nominal110, &plan);
        let mut executor = ClusterExecutor::new(args.peers.clone(), standard_registry());
        if let Some(cache) = &policy.cache {
            executor = executor.cached(std::sync::Arc::clone(cache));
        }
        let report = executor.execute(&campaign).expect("distributed campaign");
        eprintln!(
            "cluster: {} remote, {} remote-cached, {} prefetched, {} local, {} host(s) lost",
            report.stats.remote_computed,
            report.stats.remote_cached,
            report.stats.prefetch_hits + report.stats.local_cache_hits,
            report.stats.local_computed,
            report.stats.hosts_lost,
        );
        assemble_monte_carlo(&report.lines).expect("assemble distributed result")
    };

    let mut table = TextTable::new(["metric", "min", "mean", "max", "sigma"]);
    let fmt = |v: f64| format!("{v:.2}");
    for (name, s) in [
        ("SNR (dB)", mc.snr),
        ("SNDR (dB)", mc.sndr),
        ("SFDR (dB)", mc.sfdr),
        ("ENOB (bit)", mc.enob),
    ] {
        table.push_row([
            name.to_string(),
            fmt(s.min),
            fmt(s.mean),
            fmt(s.max),
            fmt(s.sigma),
        ]);
    }
    table.push_row([
        "power (mW)".to_string(),
        fmt(mc.power.min * 1e3),
        fmt(mc.power.mean * 1e3),
        fmt(mc.power.max * 1e3),
        fmt(mc.power.sigma * 1e3),
    ]);
    println!("\n{}", table.render());

    let spec = YieldSpec::paper_with_margin();
    println!(
        "yield vs margin spec: {:.0}%",
        mc.yield_against(&spec) * 100.0
    );
    for die in mc.failures(&spec) {
        println!(
            "  fail: seed {} (SNDR {:.1}, SFDR {:.1}, {:.1} mW)",
            die.seed,
            die.sndr_db,
            die.sfdr_db,
            die.power_w * 1e3
        );
    }
    println!("\nnote the power spread: it follows the absolute metal-capacitor");
    println!("spread through Eq. 1 — the price of the corner-tracking bias.");
}
