//! Extension experiment: small-signal design margins of the residue
//! amplifier across the operating band.
//!
//! The behavioral converter settles with a single closed-loop pole; this
//! experiment runs the designer-level two-pole AC analysis to show that
//! assumption holds: with the SC bias scaling gm1 and gm2 together
//! (Eq. 1) against fixed capacitors, the phase margin — and therefore the
//! non-ringing settling the behavioral model assumes — is *identical* at
//! every conversion rate. A fixed-bias design, by contrast, carries its
//! phase margin fixed too, but wastes the bandwidth at low rates.

use adc_analog::twopole::TwoPoleAmp;
use adc_testbench::report::TextTable;

fn main() {
    adc_bench::banner(
        "Extension -- residue amplifier AC margins vs conversion rate",
        "two-pole Miller analysis behind the behavioral settling model",
    );

    // Stage-1 design point at 110 MS/s: gm1 = 40 mS, gm2 = 80 mS,
    // Cc = 3 pF, CL = 4 pF, 80 dB, beta = 0.435.
    let beta = 0.435;
    let mut table = TextTable::new([
        "rate (MS/s)",
        "GBW (MHz)",
        "p2 (MHz)",
        "phase margin (deg)",
        "overshoot (%)",
        "settle to 0.01% (ns)",
    ]);
    for rate_msps in [20.0, 60.0, 110.0, 140.0] {
        let scale = rate_msps / 110.0;
        let amp = TwoPoleAmp::new(40e-3 * scale, 80e-3 * scale, 3e-12, 4e-12, 10_000.0);
        // Time to settle within 1e-4 of final value.
        let tau = 1.0 / (2.0 * std::f64::consts::PI * beta * amp.unity_gain_hz());
        let mut t_settle = 0.0;
        for k in 1..10_000 {
            let t = k as f64 * tau / 10.0;
            if (amp.step_response(beta, t) - 1.0).abs() < 1e-4 {
                t_settle = t;
                break;
            }
        }
        table.push_row([
            format!("{rate_msps:.0}"),
            format!("{:.0}", amp.unity_gain_hz() / 1e6),
            format!("{:.0}", amp.nondominant_pole_hz() / 1e6),
            format!("{:.1}", amp.phase_margin_deg(beta)),
            format!("{:.2}", amp.overshoot(beta) * 100.0),
            format!("{:.2}", t_settle * 1e9),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: phase margin and overshoot columns constant — gm1 and");
    println!("gm2 scale together under Eq. 1 against fixed Cc/CL, so only the");
    println!("absolute settle time changes, in exact proportion to the period.");
}
