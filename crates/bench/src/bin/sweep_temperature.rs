//! Extension experiment: performance and power across temperature.
//!
//! The paper's §3 argument for deriving V_BIAS from the band-gap: the
//! bias current (Eq. 1) stays "near independent of variations in process
//! parameters, temperature and supply voltage". Mobility still degrades
//! ~T^1.5 (slower switches, lower gm at fixed current), so some SNDR
//! droop at hot is physical — but the bias point itself barely moves.

use adc_analog::process::OperatingConditions;
use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::{MeasurementSession, GOLDEN_SEED};

fn main() {
    adc_bench::banner(
        "Extension -- Table I metrics vs temperature",
        "band-gap-referred SC bias holds the operating point over temperature",
    );

    let mut table = TextTable::new([
        "temp (degC)",
        "SNR (dB)",
        "SNDR (dB)",
        "SFDR (dB)",
        "ENOB",
        "power (mW)",
    ]);
    for temp_c in [-40.0, 0.0, 27.0, 85.0, 125.0] {
        let config = AdcConfig {
            conditions: OperatingConditions {
                temp_c,
                ..OperatingConditions::nominal()
            },
            ..AdcConfig::nominal_110ms()
        };
        let mut s = MeasurementSession::new(config, GOLDEN_SEED).expect("config builds");
        let power_mw = s.adc().power_w() * 1e3;
        let m = s.measure_tone(10e6);
        table.push_row([
            format!("{temp_c:.0}"),
            db_cell(m.analysis.snr_db),
            db_cell(m.analysis.sndr_db),
            db_cell(m.analysis.sfdr_db),
            format!("{:.2}", m.analysis.enob),
            format!("{power_mw:.1}"),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: power nearly flat (band-gap-referred Eq. 1); SNDR");
    println!("degrades mildly at 125 degC as mobility loss slows settling.");
}
