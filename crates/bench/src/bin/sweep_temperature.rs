//! Extension experiment: performance and power across temperature.
//!
//! The paper's §3 argument for deriving V_BIAS from the band-gap: the
//! bias current (Eq. 1) stays "near independent of variations in process
//! parameters, temperature and supply voltage". Mobility still degrades
//! ~T^1.5 (slower switches, lower gm at fixed current), so some SNDR
//! droop at hot is physical — but the bias point itself barely moves.
//!
//! The temperature points run as one campaign under
//! [`adc_bench::campaign_setup`] (`ADC_THREADS` workers,
//! `ADC_CACHE_DIR` point cache).

use adc_analog::process::OperatingConditions;
use adc_pipeline::config::AdcConfig;
use adc_testbench::report::{db_cell, TextTable};
use adc_testbench::session::{MeasurementSession, GOLDEN_SEED};

fn main() {
    adc_bench::banner(
        "Extension -- Table I metrics vs temperature",
        "band-gap-referred SC bias holds the operating point over temperature",
    );

    let temps = [-40.0, 0.0, 27.0, 85.0, 125.0];
    let base = AdcConfig::nominal_110ms();

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let points = policy
        .measure_campaign(
            "sweep-temperature",
            &(GOLDEN_SEED, &base),
            GOLDEN_SEED,
            temps.to_vec(),
            |_ctx, &temp_c| {
                let config = AdcConfig {
                    conditions: OperatingConditions {
                        temp_c,
                        ..OperatingConditions::nominal()
                    },
                    ..base.clone()
                };
                let mut s = MeasurementSession::new(config, GOLDEN_SEED)?;
                let power_mw = s.adc().power_w() * 1e3;
                let m = s.measure_tone(10e6);
                Ok((
                    m.analysis.snr_db,
                    m.analysis.sndr_db,
                    m.analysis.sfdr_db,
                    m.analysis.enob,
                    power_mw,
                ))
            },
        )
        .expect("all temperatures build");

    let mut table = TextTable::new([
        "temp (degC)",
        "SNR (dB)",
        "SNDR (dB)",
        "SFDR (dB)",
        "ENOB",
        "power (mW)",
    ]);
    for (&temp_c, &(snr, sndr, sfdr, enob, power_mw)) in temps.iter().zip(&points) {
        table.push_row([
            format!("{temp_c:.0}"),
            db_cell(snr),
            db_cell(sndr),
            db_cell(sfdr),
            format!("{enob:.2}"),
            format!("{power_mw:.1}"),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected: power nearly flat (band-gap-referred Eq. 1); SNDR");
    println!("degrades mildly at 125 degC as mobility loss slows settling.");
}
