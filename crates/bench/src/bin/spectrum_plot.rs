//! Extension: the output spectrum of the nominal die, rendered as a
//! bench spectrum analyzer would show it. Makes the Table I numbers
//! visually concrete: the 10 MHz fundamental, the −69 dBc HD3, and the
//! thermal noise floor.

use adc_spectral::fft::power_spectrum_one_sided;
use adc_testbench::report::render_spectrum_ascii;
use adc_testbench::MeasurementSession;

fn main() {
    adc_bench::banner(
        "Extension -- output spectrum at fin = 10 MHz, 110 MS/s",
        "the record behind Table I's SNR/SNDR/SFDR rows",
    );

    let mut session = MeasurementSession::nominal().expect("nominal builds");
    let (codes, f_in) = session.capture_tone(10e6);
    let record = session.reconstruct(&codes);
    let ps = power_spectrum_one_sided(&record).expect("power-of-two record");

    println!(
        "\n8192-point coherent capture, fin = {:.4} MHz:",
        f_in / 1e6
    );
    println!("{}", render_spectrum_ascii(&ps, 96, 16, -110.0));
    println!("visible: the fundamental near 10/55 of Nyquist, harmonic spurs");
    println!("(worst ≈ −69 dBc, the paper's SFDR), and the ≈ −105 dBFS/bin");
    println!("noise floor that integrates to the 67.9 dB SNR.");
}
