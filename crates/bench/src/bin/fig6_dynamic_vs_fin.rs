//! Regenerates Fig. 6: SFDR, SNR and SNDR versus input frequency at
//! 110 MS/s, 2 V_P-P (inputs beyond Nyquist are deliberately
//! undersampled, as on the paper's bench).
//!
//! Paper claims: SNR > 66 dB to 100 MHz then jitter-limited; SNDR > 60 dB
//! to 40 MHz, then falling with SFDR because of the unbootstrapped input
//! transmission gates.

use adc_testbench::report::{db_cell, mhz_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn main() {
    adc_bench::banner(
        "Fig. 6 -- SFDR, SNR, SNDR vs input frequency",
        "f_CR = 110 MS/s, 2 Vp-p, 8192-pt coherent FFT",
    );

    let (args, policy, _trace) = adc_bench::campaign_setup();
    adc_bench::warn_ignored_peers(&args);
    let runner = SweepRunner {
        policy,
        ..SweepRunner::nominal()
    };
    let fins: Vec<f64> = [
        1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0, 100.0, 120.0, 140.0, 150.0,
    ]
    .iter()
    .map(|m| m * 1e6)
    .collect();
    let points = runner.frequency_sweep(&fins).expect("nominal rate builds");

    let mut table = TextTable::new(["fin (MHz)", "SFDR (dB)", "SNR (dB)", "SNDR (dB)", "ENOB"]);
    for p in &points {
        table.push_row([
            mhz_cell(p.x_hz),
            db_cell(p.sfdr_db),
            db_cell(p.snr_db),
            db_cell(p.sndr_db),
            format!("{:.2}", p.enob),
        ]);
    }
    println!("\n{}", table.render());

    let snr_100 = points
        .iter()
        // adc-lint: allow(float-eq) reason="sweep axis holds the exact literal 100e6 it was built from"
        .find(|p| p.x_hz == 100e6)
        .expect("100 MHz point");
    println!(
        "SNR @ 100 MHz: {:.1} dB (paper: > 66, jitter-limited above)",
        snr_100.snr_db
    );
    let sndr_40 = points
        .iter()
        // adc-lint: allow(float-eq) reason="sweep axis holds the exact literal 40e6 it was built from"
        .find(|p| p.x_hz == 40e6)
        .expect("40 MHz point");
    println!(
        "SNDR @ 40 MHz: {:.1} dB (paper: > 60, SFDR-limited above)",
        sndr_40.sndr_db
    );
}
