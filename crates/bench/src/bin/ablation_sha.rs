//! Ablation E: the paper's SHA-less front end versus a dedicated
//! sample-and-hold (§2's "input signal is applied directly to the 1st
//! stage").
//!
//! The SHA-less cost is an aperture skew between the ADSC's sampling path
//! and the main C1/C2 path — an error `skew·dV/dt` on the stage-1
//! *decision* only, which the 1.5-bit redundancy absorbs completely until
//! it approaches ±V_REF/4. A dedicated SHA removes the skew but buys
//! nothing (the redundancy was already absorbing it) while burning extra
//! power and adding noise — the architectural bet the paper made.

use adc_pipeline::config::{AdcConfig, FrontEndKind};
use adc_testbench::report::{db_cell, mhz_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn runner(front_end: FrontEndKind) -> SweepRunner {
    SweepRunner {
        config: AdcConfig {
            front_end,
            ..AdcConfig::nominal_110ms()
        },
        ..SweepRunner::nominal()
    }
}

fn main() {
    adc_bench::banner(
        "Ablation E -- SHA-less front end vs dedicated SHA",
        "paper section 2: direct input sampling into stage 1",
    );

    let fins: Vec<f64> = [10.0, 50.0, 100.0, 150.0].iter().map(|m| m * 1e6).collect();
    let variants = [
        (
            "SHA-less, 3 ps skew (paper)",
            FrontEndKind::paper_sha_less(),
        ),
        (
            "SHA-less, 30 ps skew (sloppy layout)",
            FrontEndKind::ShaLess {
                adsc_aperture_skew_s: 30e-12,
            },
        ),
        ("dedicated SHA", FrontEndKind::conventional_sha()),
    ];

    let mut table = TextTable::new(["fin (MHz)", "3ps skew", "30ps skew", "dedicated SHA"]);
    let mut sweeps = Vec::new();
    let mut powers = Vec::new();
    for (_, fe) in variants {
        let r = runner(fe);
        powers.push(r.power_sweep(&[110e6]).expect("nominal rate builds")[0].total_w);
        sweeps.push(r.frequency_sweep(&fins).expect("sweep runs"));
    }
    for (i, &fin) in fins.iter().enumerate() {
        table.push_row([
            mhz_cell(fin),
            db_cell(sweeps[0][i].sndr_db),
            db_cell(sweeps[1][i].sndr_db),
            db_cell(sweeps[2][i].sndr_db),
        ]);
    }
    println!("\nSNDR (dB):\n{}", table.render());
    println!(
        "power: SHA-less {:.1} mW vs dedicated SHA {:.1} mW",
        powers[0] * 1e3,
        powers[2] * 1e3
    );
    println!("\nexpected: all three columns nearly identical at every fin (the");
    println!("redundancy absorbs even 30 ps of skew), so the SHA's extra");
    println!(
        "{:.0} mW buys nothing — the paper's architectural bet.",
        (powers[2] - powers[0]) * 1e3
    );
}
