//! Regenerates the paper's Table I: the full datasheet of the nominal
//! 110 MS/s design, measured on the golden die.

use adc_testbench::datasheet::Datasheet;
use adc_testbench::session::MeasurementSession;

fn main() {
    adc_bench::banner(
        "Table I -- key data for the 12b pipeline ADC",
        "Andersen et al., DATE 2004, Table I",
    );

    let mut session = MeasurementSession::nominal().expect("nominal config builds");
    let sheet =
        Datasheet::measure(&mut session, 10e6, 1 << 20).expect("datasheet measurement runs");

    println!("\n--- measured (this reproduction) ---");
    println!("{sheet}");
    println!("\nFigure of Merit (Eq. 2)   {:.0}", sheet.figure_of_merit());

    println!("\n--- published (paper Table I) ---");
    println!("Technology                0.18 um digital CMOS");
    println!("Nominal supply voltage    1.8 V");
    println!("Resolution                12 bit");
    println!("Full Scale analog input   2 Vp-p");
    println!("Area                      0.86 mm^2");
    println!("Conversion rate           110 MS/s");
    println!("Analog Power Consumption  97 mW");
    println!("DNL                       -1.2/+1.2 LSB");
    println!("INL                       -1.5/+1.0 LSB");
    println!("SNR  (fin=10MHz)          67.1 dB");
    println!("SNDR (fin=10MHz)          64.2 dB");
    println!("SFDR (fin=10MHz)          69.4 dB");
    println!("ENOB (fin=10MHz)          10.4 bit");
}
