//! Ablation A: the paper's SC bias generator versus a conventional fixed
//! bias generator (§3's central claim).
//!
//! Two effects should appear:
//!
//! 1. **Power** — the fixed design burns its worst-case current at every
//!    rate; the SC design scales linearly (Fig. 4).
//! 2. **Performance range** — the fixed design is over-biased below its
//!    design point (wasted power, fine settling) but its settling budget
//!    is sized once; the SC design holds full performance across 20–140
//!    MS/s *and* tracks the capacitor corner automatically, where a fixed
//!    die at the slow-capacitor corner loses margin.

use adc_analog::process::{OperatingConditions, ProcessCorner};
use adc_pipeline::config::{AdcConfig, BiasKind};
use adc_testbench::report::{db_cell, mhz_cell, mw_cell, TextTable};
use adc_testbench::sweep::SweepRunner;

fn runner(bias_kind: BiasKind, corner: ProcessCorner) -> SweepRunner {
    SweepRunner {
        config: AdcConfig {
            bias_kind,
            conditions: OperatingConditions::at_corner(corner),
            ..AdcConfig::nominal_110ms()
        },
        ..SweepRunner::nominal()
    }
}

fn main() {
    adc_bench::banner(
        "Ablation A -- SC bias generator vs conventional fixed bias",
        "paper section 3, Eq. 1 and Fig. 3",
    );

    let fixed = BiasKind::Fixed {
        design_rate_hz: 140e6,
        margin: 1.3,
    };
    let rates: Vec<f64> = [20.0, 60.0, 110.0, 140.0].iter().map(|m| m * 1e6).collect();

    for corner in [ProcessCorner::Typical, ProcessCorner::Slow] {
        println!("\n=== corner {} ===", corner.label());
        let sc = runner(BiasKind::Switched, corner);
        let fx = runner(fixed, corner);
        let sc_dyn = sc.rate_sweep(&rates, 10e6).expect("sc sweep");
        let fx_dyn = fx.rate_sweep(&rates, 10e6).expect("fixed sweep");
        let sc_pow = sc.power_sweep(&rates).expect("sc power");
        let fx_pow = fx.power_sweep(&rates).expect("fixed power");

        let mut table = TextTable::new([
            "rate (MS/s)",
            "SC SNDR",
            "fixed SNDR",
            "SC power (mW)",
            "fixed power (mW)",
        ]);
        for i in 0..rates.len() {
            table.push_row([
                mhz_cell(rates[i]),
                db_cell(sc_dyn[i].sndr_db),
                db_cell(fx_dyn[i].sndr_db),
                mw_cell(sc_pow[i].total_w),
                mw_cell(fx_pow[i].total_w),
            ]);
        }
        println!("{}", table.render());
    }

    println!("expected: fixed bias wastes power at low rates (flat column);");
    println!("the SC column scales with rate at equal or better SNDR.");
}
