//! Open-loop load generator for `adc-server`: spins up a loopback
//! service, probes its saturation throughput with pipelined clients,
//! then replays deterministic uniform arrival schedules at fractions
//! of that saturation and reports latency where the queueing theory
//! says it matters — at a fixed *offered* rate, not a closed loop
//! that politely waits for the server.
//!
//! Phases:
//!
//! 1. **Default load point** — the committed baseline's closed-loop
//!    throughput ([`BASELINE_RPS`]) is replayed as a uniform arrival
//!    schedule: requests are submitted *at their scheduled instants*
//!    regardless of how the server is doing, and latency is measured
//!    from the scheduled arrival to completion, so generator lag and
//!    queue delay both count against the server. This is the traffic
//!    the service was provisioned for, so its quantiles are the
//!    headline `client_latency_us` figures. It runs first, against
//!    the still-clean server, so the metrics snapshot after it is the
//!    serving core's own latency distribution at exactly that load
//!    (reported as `default_load.server_latency_us`).
//! 2. **Saturation probe** — `ADC_SERVICE_CLIENTS` (2) pipelined
//!    connections each keep a deep window of digitize requests in
//!    flight until `ADC_SERVICE_PROBE_REQUESTS` (150) per client have
//!    completed; completed/wall is the saturation rate.
//! 3. **Arrival sweep** — the same open-loop schedule at 50%, 80%,
//!    and 95% of measured saturation, reported under `load_points`.
//!
//! The legacy `requests_per_sec` / `samples_per_sec` keys carry the
//! saturation-probe throughput (the successor of the old closed-loop
//! flood figure); the probe detail lives under `saturation`.
//!
//! Every response is verified by the client library (batch ordering,
//! sample count, stream CRC), and one record is replayed in-process
//! to prove the service boundary is bit-identical. All requests share
//! one tone shape at distinct seeds — exactly the concurrent-arrival
//! workload the reactor coalesces into lane-parallel batches.

use std::time::{Duration, Instant};

use adc_bench::cli::env_usize;
use adc_pipeline::config::AdcConfig;
use adc_server::{
    Client, DigitizeRequest, PipelinedClient, PipelinedOutcome, Server, ServerConfig,
};
use adc_testbench::MeasurementSession;

/// One tone shape for the whole run: identical stimulus, distinct
/// seeds, which is what makes concurrent arrivals coalescible.
const F_TARGET: f64 = 5e6;

/// Pipelining depth per connection during the saturation probe.
const PROBE_WINDOW: usize = 16;

/// Load fractions swept, percent of measured saturation.
const LOAD_PCTS: &[u64] = &[50, 80, 95];

/// The committed baseline's closed-loop throughput (req/s) — the load
/// the pre-reactor server saturated at. The *default load point*
/// replays that rate against the new core: it is the traffic level
/// the service was actually provisioned for, so its latency quantiles
/// are the headline `client_latency_us` figures.
const BASELINE_RPS: f64 = 96.23;

/// Latency at quantile `q` from a sorted sample set, microseconds.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Outcome of one measured load point.
struct LoadPoint {
    label: String,
    /// Percent of saturation (0 for the absolute-rate default point).
    pct: u64,
    target_rps: f64,
    offered: usize,
    completed: u64,
    shed: u64,
    achieved_rps: f64,
    p50: u64,
    p90: u64,
    p99: u64,
}

/// Floods the server from `clients` pipelined connections and returns
/// (completed requests, wall seconds).
fn saturation_probe(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    n_samples: u32,
) -> (u64, f64) {
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || -> u64 {
                let mut client = PipelinedClient::connect(addr).expect("connect");
                let mut submitted = 0usize;
                let mut done = 0u64;
                while submitted < per_client.min(PROBE_WINDOW) {
                    let seed = 1000 + (c * per_client + submitted) as u64;
                    client
                        .submit(&DigitizeRequest::tone(seed, F_TARGET, n_samples))
                        .expect("probe submit");
                    submitted += 1;
                }
                while done < per_client as u64 {
                    let (_, outcome) = client.next_completion().expect("probe completion");
                    match outcome {
                        PipelinedOutcome::Digitize(result) => {
                            assert_eq!(result.samples.len(), n_samples as usize);
                        }
                        other => panic!("probe: unexpected outcome {other:?}"),
                    }
                    done += 1;
                    if submitted < per_client {
                        let seed = 1000 + (c * per_client + submitted) as u64;
                        client
                            .submit(&DigitizeRequest::tone(seed, F_TARGET, n_samples))
                            .expect("probe submit");
                        submitted += 1;
                    }
                }
                done
            })
        })
        .collect();
    let completed: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("probe thread"))
        .sum();
    (completed, start.elapsed().as_secs_f64())
}

/// Drives one open-loop load point: uniform arrivals at `target_rps`
/// split round-robin over `clients` connections. `pct` labels the
/// saturation fraction (0 = absolute-rate default point) and also
/// salts the seed block so every point fabricates distinct dies.
fn run_load_point(
    addr: std::net::SocketAddr,
    clients: usize,
    label: &str,
    pct: u64,
    target_rps: f64,
    duration_ms: usize,
    n_samples: u32,
) -> LoadPoint {
    let offered = ((target_rps * duration_ms as f64 / 1000.0) as usize).max(clients);
    let interval = Duration::from_secs_f64(1.0 / target_rps);
    // Threads connect first, then agree on t0 behind a barrier so the
    // schedule starts with every generator ready — connection setup
    // must not read as server queueing delay.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients));
    let t0_cell = std::sync::Arc::new(std::sync::OnceLock::new());

    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let barrier = std::sync::Arc::clone(&barrier);
            let t0_cell = std::sync::Arc::clone(&t0_cell);
            std::thread::spawn(move || -> (Vec<u64>, u64, f64) {
                let mut client = PipelinedClient::connect(addr).expect("connect");
                // A non-blocking socket, not a short read timeout:
                // kernels round `SO_RCVTIMEO` up to scheduler ticks, so
                // a "1 ms" timed read can block ~8 ms and push submits
                // past their scheduled arrivals. `thread::sleep` is
                // hrtimer-precise, so pacing uses it exclusively.
                client.set_nonblocking(true).expect("nonblocking");
                if barrier.wait().is_leader() {
                    let _ = t0_cell.set(Instant::now() + Duration::from_millis(10));
                }
                barrier.wait();
                let t0: Instant = *t0_cell.get().expect("leader sets t0");
                let mut sched_of = std::collections::BTreeMap::new();
                let mut latencies_us = Vec::new();
                let mut shed = 0u64;
                let record = |corr: u64,
                              outcome: PipelinedOutcome,
                              sched_of: &mut std::collections::BTreeMap<u64, Instant>,
                              shed: &mut u64,
                              latencies_us: &mut Vec<u64>| {
                    let sched = sched_of.remove(&corr).expect("known corr id");
                    match outcome {
                        PipelinedOutcome::Digitize(result) => {
                            assert_eq!(result.samples.len(), n_samples as usize);
                            latencies_us.push(sched.elapsed().as_micros() as u64);
                        }
                        PipelinedOutcome::ServerError { code, .. } => {
                            assert_eq!(code, adc_server::ErrorCode::Overloaded);
                            *shed += 1;
                        }
                        other => panic!("load point: unexpected outcome {other:?}"),
                    }
                };

                // This client owns arrivals c, c+clients, c+2*clients, ...
                let mut i = c;
                while i < offered {
                    let sched = t0 + interval.mul_f64(i as f64);
                    // Drain everything already buffered (returns
                    // immediately on a non-blocking socket), then wait
                    // out the arrival instant: with nothing in flight
                    // one precise sleep covers the whole gap; with
                    // responses due and plenty of margin, an untimed
                    // blocking read picks the completion up the moment
                    // it lands (event-driven, no polling cadence in the
                    // measured latency); near the arrival instant,
                    // short precise slices keep the submit on schedule.
                    loop {
                        while let Some((corr, outcome)) =
                            client.try_next_completion().expect("drain while waiting")
                        {
                            record(corr, outcome, &mut sched_of, &mut shed, &mut latencies_us);
                        }
                        let now = Instant::now();
                        if now >= sched {
                            break;
                        }
                        let remain = sched - now;
                        if client.in_flight() == 0 {
                            std::thread::sleep(remain);
                        } else if remain > Duration::from_millis(8) {
                            client.set_nonblocking(false).expect("blocking pickup");
                            let (corr, outcome) =
                                client.next_completion().expect("blocking completion");
                            client.set_nonblocking(true).expect("nonblocking restore");
                            record(corr, outcome, &mut sched_of, &mut shed, &mut latencies_us);
                        } else {
                            std::thread::sleep(remain.min(Duration::from_micros(250)));
                        }
                    }
                    let seed = 10_000 + (pct + 1) * 1_000_000 + i as u64;
                    let corr = client
                        .submit(&DigitizeRequest::tone(seed, F_TARGET, n_samples))
                        .expect("open-loop submit");
                    sched_of.insert(corr, sched);
                    i += clients;
                }
                client.set_nonblocking(false).expect("blocking restore");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("drain timeout");
                while client.in_flight() > 0 {
                    let (corr, outcome) = client.next_completion().expect("drain completion");
                    record(corr, outcome, &mut sched_of, &mut shed, &mut latencies_us);
                }
                let wall_s = t0.elapsed().as_secs_f64();
                (latencies_us, shed, wall_s)
            })
        })
        .collect();

    let mut latencies_us = Vec::new();
    let mut shed = 0u64;
    let mut wall_s = 0f64;
    for w in workers {
        let (lat, s, wall) = w.join().expect("load-point thread");
        latencies_us.extend(lat);
        shed += s;
        wall_s = wall_s.max(wall);
    }
    latencies_us.sort_unstable();
    let completed = latencies_us.len() as u64;
    LoadPoint {
        label: label.to_string(),
        pct,
        target_rps,
        offered,
        completed,
        shed,
        achieved_rps: completed as f64 / wall_s.max(1e-12),
        p50: quantile_us(&latencies_us, 0.50),
        p90: quantile_us(&latencies_us, 0.90),
        p99: quantile_us(&latencies_us, 0.99),
    }
}

fn main() {
    let args = adc_bench::CampaignArgs::parse();
    let clients = env_usize("ADC_SERVICE_CLIENTS", 2);
    let probe_requests = env_usize("ADC_SERVICE_PROBE_REQUESTS", 150);
    let duration_ms = env_usize("ADC_SERVICE_DURATION_MS", 2000);
    let baseline_ms = env_usize("ADC_SERVICE_BASELINE_MS", 4000);
    let n_samples = env_usize("ADC_SERVICE_SAMPLES", 2048).next_power_of_two() as u32;

    adc_bench::banner(
        "Service -- open-loop digitize load over the TCP server",
        "adc-server loopback benchmark (streams verified sample-exact)",
    );
    println!(
        "{clients} pipelined clients, {n_samples} samples/request, \
         probe {probe_requests} req/client, {duration_ms} ms per load point\n"
    );

    let (handle, join) = Server::spawn(
        "127.0.0.1:0",
        ServerConfig {
            threads: args.threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.addr();

    // Warm the path (fabrication tables, allocator) and prove the
    // service boundary adds transport, not nondeterminism: the served
    // record must match a direct in-process run bit for bit.
    let check_seed = 424_242u64;
    let mut check = Client::connect(addr).expect("connect for check");
    let served = check
        .digitize(&DigitizeRequest::tone(check_seed, F_TARGET, n_samples))
        .expect("check digitize");
    let mut direct =
        MeasurementSession::new(AdcConfig::nominal_110ms(), check_seed).expect("nominal builds");
    direct.record_len = n_samples as usize;
    let (expected, _) = direct.capture_tone(F_TARGET);
    assert_eq!(served.samples, expected, "service must be bit-identical");
    println!("determinism spot check: served record == in-process record");

    let print_point = |point: &LoadPoint| {
        println!(
            "{:>18}: target {:.1} req/s, achieved {:.1} req/s ({} ok, {} shed), \
             p50/p90/p99 {}/{}/{} us",
            point.label,
            point.target_rps,
            point.achieved_rps,
            point.completed,
            point.shed,
            point.p50,
            point.p90,
            point.p99,
        );
    };

    // The default load point runs FIRST, against the still-clean
    // server, so the metrics snapshot taken right after it is exactly
    // the serving core's latency distribution at that load — the
    // log-linear histogram is cumulative and would otherwise mix in
    // the flood phases. It offers a light absolute rate, so it runs on
    // a single connection (less generator churn on a 1-CPU host) and a
    // longer window for a stable p99.
    let mut points = Vec::new();
    std::thread::sleep(Duration::from_millis(200));
    let default = run_load_point(
        addr,
        1,
        "baseline-replay",
        0,
        BASELINE_RPS,
        baseline_ms,
        n_samples,
    );
    print_point(&default);
    let default_server = check.metrics().expect("default-point metrics");
    println!(
        "    server-side at default load: p50/p90/p99 {}/{}/{} us",
        default_server.p50_us, default_server.p90_us, default_server.p99_us
    );
    points.push(default);

    let (probe_done, probe_wall) = saturation_probe(addr, clients, probe_requests, n_samples);
    let saturation_rps = probe_done as f64 / probe_wall.max(1e-12);
    println!(
        "saturation probe: {probe_done} requests in {probe_wall:.2}s = {saturation_rps:.1} req/s"
    );

    for &pct in LOAD_PCTS {
        // Let the machine settle between phases: the previous point's
        // drain leaves allocator and kernel housekeeping behind that
        // would otherwise stall the next point's first arrivals.
        std::thread::sleep(Duration::from_millis(200));
        let label = format!("{pct}% of saturation");
        let target_rps = saturation_rps * pct as f64 / 100.0;
        let point = run_load_point(
            addr,
            clients,
            &label,
            pct,
            target_rps,
            duration_ms,
            n_samples,
        );
        print_point(&point);
        points.push(point);
    }

    // The in-flight gauge decrements when the pool observer runs, a
    // hair after the final frame reaches the client — poll it down.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    let snapshot = loop {
        let snap = check.metrics().expect("metrics");
        if snap.in_flight == 0 || Instant::now() > drain_deadline {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    check.shutdown().expect("shutdown");
    join.join().expect("server thread").expect("server exits");
    assert_eq!(snapshot.in_flight, 0, "pool drained");

    let default_point = &points[0];
    let total_ok: u64 = points.iter().map(|p| p.completed).sum();
    let total_shed: u64 = points.iter().map(|p| p.shed).sum();
    println!(
        "\nheadline: saturation {:.1} req/s ({:.0} samples/s); at the default \
         load point ({:.1} req/s) client p99 {} us, server p99 {} us",
        saturation_rps,
        saturation_rps * f64::from(n_samples),
        default_point.target_rps,
        default_point.p99,
        default_server.p99_us,
    );
    println!(
        "server: {} digitizes, {} completed, {} coalesced, {} overloaded, server p50/p99 {}/{} us",
        snapshot.digitizes,
        snapshot.completed,
        snapshot.coalesced,
        snapshot.overloaded,
        snapshot.p50_us,
        snapshot.p99_us,
    );

    let point_json = |p: &LoadPoint, indent: &str| {
        format!(
            concat!(
                "{{ \"label\": \"{}\", \"frac_pct\": {}, \"target_rps\": {:.2}, ",
                "\"offered\": {}, \"completed\": {}, \"shed\": {}, ",
                "\"achieved_rps\": {:.2},\n{}  ",
                "\"latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }} }}"
            ),
            p.label,
            p.pct,
            p.target_rps,
            p.offered,
            p.completed,
            p.shed,
            p.achieved_rps,
            indent,
            p.p50,
            p.p90,
            p.p99,
        )
    };
    let load_points_json: Vec<String> = points
        .iter()
        .map(|p| format!("    {}", point_json(p, "    ")))
        .collect();
    // The default-load entry additionally carries the serving core's
    // own latency quantiles, snapshotted while the histogram held only
    // that point's requests: the client-side figures include generator
    // scheduling noise on a shared 1-CPU host; the server-side figures
    // are what the serving core itself delivers at that load.
    let default_load_json = {
        let body = point_json(default_point, "  ");
        let server = format!(
            ",\n    \"server_latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }} }}",
            default_server.p50_us, default_server.p90_us, default_server.p99_us
        );
        // Strip exactly the object's closing brace (trim_end_matches
        // would also eat the inner latency_us close and corrupt the
        // JSON).
        let trimmed = body.strip_suffix(" }").expect("point object close");
        format!("{trimmed}{server}")
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"adc-server loopback service\",\n",
            "  {},\n",
            "  \"clients\": {},\n",
            "  \"samples_per_request\": {},\n",
            "  \"server_threads\": {},\n",
            "  \"saturation\": {{ \"requests\": {}, \"wall_s\": {:.4}, \"requests_per_sec\": {:.2} }},\n",
            "  \"saturation_rps\": {:.2},\n",
            "  \"default_load\": {},\n",
            "  \"load_points\": [\n{}\n  ],\n",
            "  \"requests_ok\": {},\n",
            "  \"requests_shed\": {},\n",
            "  \"client_errors\": 0,\n",
            "  \"requests_per_sec\": {:.2},\n",
            "  \"samples_per_sec\": {:.0},\n",
            "  \"client_latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }},\n",
            "  \"server_metrics\": {{\n",
            "    \"connections\": {},\n",
            "    \"digitizes\": {},\n",
            "    \"completed\": {},\n",
            "    \"errors\": {},\n",
            "    \"coalesced\": {},\n",
            "    \"overloaded\": {},\n",
            "    \"samples_streamed\": {},\n",
            "    \"latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }}\n",
            "  }}\n",
            "}}\n",
        ),
        adc_bench::Provenance::capture().json_entry(),
        clients,
        n_samples,
        args.threads,
        probe_done,
        probe_wall,
        saturation_rps,
        saturation_rps,
        default_load_json,
        load_points_json.join(",\n"),
        total_ok,
        total_shed,
        saturation_rps,
        saturation_rps * f64::from(n_samples),
        default_point.p50,
        default_point.p90,
        default_point.p99,
        snapshot.connections,
        snapshot.digitizes,
        snapshot.completed,
        snapshot.errors,
        snapshot.coalesced,
        snapshot.overloaded,
        snapshot.samples_streamed,
        snapshot.p50_us,
        snapshot.p90_us,
        snapshot.p99_us,
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");
}
