//! Load generator for `adc-server`: spins up a loopback service, drives
//! it with concurrent clients, and writes throughput and latency
//! figures to `BENCH_service.json`.
//!
//! The workload is CI-sized by default — `ADC_SERVICE_CLIENTS` (4)
//! concurrent connections each issuing `ADC_SERVICE_REQUESTS` (6)
//! digitize requests of `ADC_SERVICE_SAMPLES` (2048) samples at
//! distinct seeds and tone frequencies. Every response is verified:
//! batch ordering, sample count, and the server's stream CRC (the
//! client library checks all three), plus a spot check that one
//! request's samples are bit-identical to a direct in-process
//! `MeasurementSession` run at the same seed.
//!
//! Reported figures: end-to-end requests/s and samples/s, client-side
//! p50/p90/p99 request latency, and the server's own metrics snapshot
//! (in-flight gauge drained to zero, error count, server-side latency
//! histogram quantiles).

use std::time::Instant;

use adc_bench::cli::env_usize;
use adc_pipeline::config::AdcConfig;
use adc_server::{Client, DigitizeRequest, Server, ServerConfig};
use adc_testbench::MeasurementSession;

/// Latency at quantile `q` from a sorted sample set, microseconds.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args = adc_bench::CampaignArgs::parse();
    let clients = env_usize("ADC_SERVICE_CLIENTS", 4);
    let requests = env_usize("ADC_SERVICE_REQUESTS", 6);
    let n_samples = env_usize("ADC_SERVICE_SAMPLES", 2048).next_power_of_two() as u32;

    adc_bench::banner(
        "Service -- concurrent digitize load over the TCP server",
        "adc-server loopback benchmark (streams verified sample-exact)",
    );
    println!("{clients} clients x {requests} requests x {n_samples} samples\n");

    let (handle, join) = Server::spawn(
        "127.0.0.1:0",
        ServerConfig {
            threads: args.threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.addr();

    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || -> (Vec<u64>, u64, u64) {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_us = Vec::with_capacity(requests);
                let mut samples = 0u64;
                let mut errors = 0u64;
                for r in 0..requests {
                    let seed = 1000 + (c * requests + r) as u64;
                    let f_target = 5e6 + c as f64 * 1e6;
                    let req = DigitizeRequest::tone(seed, f_target, n_samples);
                    let sent = Instant::now();
                    match client.digitize(&req) {
                        Ok(result) => {
                            latencies_us.push(sent.elapsed().as_micros() as u64);
                            assert_eq!(result.samples.len(), n_samples as usize);
                            samples += result.samples.len() as u64;
                        }
                        Err(e) => {
                            eprintln!("client {c} request {r}: {e}");
                            errors += 1;
                        }
                    }
                }
                (latencies_us, samples, errors)
            })
        })
        .collect();

    let mut latencies_us = Vec::new();
    let mut total_samples = 0u64;
    let mut client_errors = 0u64;
    for w in workers {
        let (lat, samples, errors) = w.join().expect("client thread");
        latencies_us.extend(lat);
        total_samples += samples;
        client_errors += errors;
    }
    let wall_s = start.elapsed().as_secs_f64();

    // Spot-check determinism across the service boundary: one request
    // replayed in-process must agree bit for bit.
    let check_seed = 1000u64;
    let mut client = Client::connect(addr).expect("connect for check");
    let served = client
        .digitize(&DigitizeRequest::tone(check_seed, 5e6, n_samples))
        .expect("check digitize");
    let mut direct =
        MeasurementSession::new(AdcConfig::nominal_110ms(), check_seed).expect("nominal builds");
    direct.record_len = n_samples as usize;
    let (expected, _) = direct.capture_tone(5e6);
    assert_eq!(served.samples, expected, "service must be bit-identical");
    println!("determinism spot check: served record == in-process record");

    let snapshot = client.metrics().expect("metrics");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread").expect("server exits");

    latencies_us.sort_unstable();
    let ok_requests = latencies_us.len() as u64;
    let p50 = quantile_us(&latencies_us, 0.50);
    let p90 = quantile_us(&latencies_us, 0.90);
    let p99 = quantile_us(&latencies_us, 0.99);
    let req_per_s = ok_requests as f64 / wall_s.max(1e-12);
    let samples_per_s = total_samples as f64 / wall_s.max(1e-12);

    println!(
        "\n{ok_requests} requests in {wall_s:.2}s: {req_per_s:.1} req/s, {samples_per_s:.0} samples/s"
    );
    println!("client latency: p50 {p50} us | p90 {p90} us | p99 {p99} us");
    println!(
        "server: {} digitizes, {} completed, {} errors, in-flight {}, server p50/p99 {}/{} us",
        snapshot.digitizes,
        snapshot.completed,
        snapshot.errors,
        snapshot.in_flight,
        snapshot.p50_us,
        snapshot.p99_us,
    );
    assert_eq!(snapshot.in_flight, 0, "pool drained");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"adc-server loopback service\",\n",
            "  {},\n",
            "  \"clients\": {},\n",
            "  \"requests_per_client\": {},\n",
            "  \"samples_per_request\": {},\n",
            "  \"server_threads\": {},\n",
            "  \"wall_s\": {:.4},\n",
            "  \"requests_ok\": {},\n",
            "  \"client_errors\": {},\n",
            "  \"requests_per_sec\": {:.2},\n",
            "  \"samples_per_sec\": {:.0},\n",
            "  \"client_latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }},\n",
            "  \"server_metrics\": {{\n",
            "    \"connections\": {},\n",
            "    \"digitizes\": {},\n",
            "    \"completed\": {},\n",
            "    \"errors\": {},\n",
            "    \"samples_streamed\": {},\n",
            "    \"latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {} }}\n",
            "  }}\n",
            "}}\n",
        ),
        adc_bench::Provenance::capture().json_entry(),
        clients,
        requests,
        n_samples,
        args.threads,
        wall_s,
        ok_requests,
        client_errors,
        req_per_s,
        samples_per_s,
        p50,
        p90,
        p99,
        snapshot.connections,
        snapshot.digitizes,
        snapshot.completed,
        snapshot.errors,
        snapshot.samples_streamed,
        snapshot.p50_us,
        snapshot.p90_us,
        snapshot.p99_us,
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");
}
