//! # adc-bench
//!
//! Benchmark harness of the reproduction: one binary per table/figure of
//! the paper plus one per ablation, and Criterion benches for the
//! simulator itself.
//!
//! Regeneration targets (all print the paper's series next to the
//! measured ones):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_datasheet` | Table I |
//! | `fig4_power` | Fig. 4 (power vs conversion rate) |
//! | `fig5_dynamic_vs_rate` | Fig. 5 (SNR/SNDR/SFDR vs conversion rate) |
//! | `fig6_dynamic_vs_fin` | Fig. 6 (SNR/SNDR/SFDR vs input frequency) |
//! | `fig8_fom_survey` | Fig. 8 (Eq. 2 FoM vs 1/area survey) |
//! | `ablation_bias` | §3 claim: SC bias vs conventional fixed bias |
//! | `ablation_clocking` | §3 claim: local clocks vs non-overlap |
//! | `ablation_scaling` | §2 claim: stage scaling vs unscaled |
//! | `ablation_switches` | §4 discussion: switch topology vs SFDR(f_in) |
//!
//! Run one with `cargo run -p adc-bench --release --bin <target>`.
//!
//! The campaign binaries execute through the `adc-runtime` engine:
//! `ADC_THREADS=n` pins the worker count (default: all cores, results
//! are bit-identical either way) and `ADC_CACHE_DIR=path` persists a
//! content-hash point cache so re-running a figure recomputes only
//! changed points (`ADC_CACHE_DIR=` empty disables; default
//! `target/campaign-cache`).

use std::sync::Arc;

use adc_runtime::ResultCache;
use adc_testbench::{CampaignReporter, RunPolicy};

/// Prints the standard banner for a regeneration binary.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{experiment}");
    println!("reproduces: {paper_ref}");
    println!("die: golden seed {}", adc_testbench::GOLDEN_SEED);
    println!("================================================================");
}

/// The campaign policy the figure binaries run under: `ADC_THREADS`
/// worker threads (0/unset = all cores), progress narration on stderr,
/// and a disk point-cache at `ADC_CACHE_DIR` (default
/// `target/campaign-cache`; set empty to disable).
pub fn campaign_policy() -> RunPolicy {
    let threads = std::env::var("ADC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut policy = RunPolicy::parallel(threads).observe(Arc::new(CampaignReporter::stderr()));
    let dir = std::env::var("ADC_CACHE_DIR").unwrap_or_else(|_| "target/campaign-cache".into());
    if !dir.is_empty() {
        match ResultCache::on_disk(&dir) {
            Ok(cache) => policy = policy.cached(Arc::new(cache)),
            Err(e) => eprintln!("point cache disabled ({dir}: {e})"),
        }
    }
    policy
}
