//! # adc-bench
//!
//! Benchmark harness of the reproduction: one binary per table/figure of
//! the paper plus one per ablation, and Criterion benches for the
//! simulator itself.
//!
//! Regeneration targets (all print the paper's series next to the
//! measured ones):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_datasheet` | Table I |
//! | `fig4_power` | Fig. 4 (power vs conversion rate) |
//! | `fig5_rate_sweep` | Fig. 5 (SNR/SNDR/SFDR vs conversion rate) |
//! | `fig6_dynamic_vs_fin` | Fig. 6 (SNR/SNDR/SFDR vs input frequency) |
//! | `fig8_fom_survey` | Fig. 8 (Eq. 2 FoM vs 1/area survey) |
//! | `ablation_bias` | §3 claim: SC bias vs conventional fixed bias |
//! | `ablation_clocking` | §3 claim: local clocks vs non-overlap |
//! | `ablation_scaling` | §2 claim: stage scaling vs unscaled |
//! | `ablation_switches` | §4 discussion: switch topology vs SFDR(f_in) |
//!
//! Run one with `cargo run -p adc-bench --release --bin <target>`.
//!
//! The campaign binaries execute through the `adc-runtime` engine and
//! share one command line (see [`cli::CampaignArgs`]): `--threads N` /
//! `ADC_THREADS=n` pins the worker count (default: all cores, results
//! are bit-identical either way) and `--cache-dir PATH` /
//! `ADC_CACHE_DIR=path` persists a content-hash point cache so
//! re-running a figure recomputes only changed points (empty disables;
//! default `target/campaign-cache`).

pub mod cli;
pub mod provenance;

use adc_testbench::RunPolicy;

pub use cli::{CampaignArgs, TraceSession};
pub use provenance::Provenance;

/// Prints the standard banner for a regeneration binary.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{experiment}");
    println!("reproduces: {paper_ref}");
    println!("die: golden seed {}", adc_testbench::GOLDEN_SEED);
    println!("================================================================");
}

/// The standard setup of a campaign binary: parses the shared command
/// line and environment ([`CampaignArgs::parse`]) and returns the
/// parsed knobs, the execution policy (worker threads, progress
/// narration on stderr, disk point cache), and the tracing session
/// (`--trace-out`). Keep the [`TraceSession`] alive until the campaign
/// finishes — dropping it writes the trace file and prints the profile
/// summary. Binaries that support distribution read `args.peers`;
/// the rest call [`warn_ignored_peers`].
pub fn campaign_setup() -> (CampaignArgs, RunPolicy, TraceSession) {
    let args = CampaignArgs::parse();
    let trace = args.trace_session();
    let policy = args.policy();
    (args, policy, trace)
}

/// Tells the user their `--peers` will not be used: this binary's
/// campaign runs in-process only.
pub fn warn_ignored_peers(args: &CampaignArgs) {
    if !args.peers.is_empty() {
        eprintln!(
            "note: this campaign does not distribute; ignoring --peers {}",
            args.peers.join(",")
        );
    }
}
