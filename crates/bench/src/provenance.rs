//! Provenance stamp for benchmark artifacts.
//!
//! Every `BENCH_*.json` carries a `provenance` object identifying the
//! commit and host that produced the numbers, so a perf diff
//! ([`bench_compare`]) can refuse to compare figures from incomparable
//! machines and a reviewer can see at a glance where a baseline came
//! from.
//!
//! [`bench_compare`]: ../bench_compare/index.html

use std::process::Command;

/// Where and on what a benchmark artifact was produced.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// `git rev-parse HEAD` of the working tree, `"unknown"` when the
    /// binary runs outside a checkout (or git itself is absent).
    pub git_commit: String,
    /// Logical CPUs visible to the process — the figure perf diffs key
    /// their comparability check on.
    pub host_cpus: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
}

impl Provenance {
    /// Captures the provenance of the current process: commit from
    /// `git`, CPU count from the scheduler, OS from the target triple.
    pub fn capture() -> Self {
        let git_commit = Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
        Self {
            git_commit,
            host_cpus,
            os: std::env::consts::OS,
        }
    }

    /// The stamp as a JSON object line, e.g.
    /// `"provenance": { "git_commit": "abc...", "host_cpus": 8, "os": "linux" }`
    /// — ready to splice into a hand-formatted benchmark report.
    pub fn json_entry(&self) -> String {
        format!(
            "\"provenance\": {{ \"git_commit\": \"{}\", \"host_cpus\": {}, \"os\": \"{}\" }}",
            self.git_commit, self.host_cpus, self.os
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_well_formed() {
        let p = Provenance::capture();
        assert!(p.host_cpus >= 1);
        assert!(!p.git_commit.is_empty());
        assert!(!p.os.is_empty());
        // Commit is either a 40-hex SHA or the explicit fallback.
        assert!(p.git_commit == "unknown" || p.git_commit.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn json_entry_parses_as_object_member() {
        let p = Provenance {
            git_commit: "deadbeef".into(),
            host_cpus: 4,
            os: "linux",
        };
        let doc = format!("{{ {} }}", p.json_entry());
        let parsed = adc_trace::json::parse(&doc).expect("valid json");
        let prov = parsed.get("provenance").expect("provenance key");
        assert_eq!(
            prov.get("git_commit").and_then(|v| v.as_str()),
            Some("deadbeef")
        );
        assert_eq!(prov.get("host_cpus").and_then(|v| v.as_f64()), Some(4.0));
    }
}
