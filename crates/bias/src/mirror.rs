//! Current mirror distribution from the master bias to the pipeline
//! stages.
//!
//! The SC generator's output device current is "mirrored to I_BIAS¹ to
//! I_BIAS¹⁰, which are applied to stage 1 to 10" (paper §3). The mirror
//! ratios encode the paper's stage-scaling profile: stage 1 at full ratio,
//! stage 2 at 2/3, stages 3–10 at 1/3. Each output carries a small random
//! ratio mismatch.

use crate::generator::BiasScheme;
use adc_analog::noise::NoiseSource;

/// Design of the mirror bank (pre-fabrication).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MirrorBankSpec {
    /// Nominal ratio of each output relative to the master current.
    pub ratios: Vec<f64>,
    /// One-sigma relative ratio mismatch per output.
    pub mismatch_sigma_rel: f64,
}

impl MirrorBankSpec {
    /// Creates a spec from nominal ratios.
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is empty or contains a non-positive ratio.
    pub fn new(ratios: Vec<f64>, mismatch_sigma_rel: f64) -> Self {
        assert!(!ratios.is_empty(), "mirror bank needs at least one output");
        assert!(
            ratios.iter().all(|&r| r > 0.0),
            "mirror ratios must be positive"
        );
        assert!(mismatch_sigma_rel >= 0.0);
        Self {
            ratios,
            mismatch_sigma_rel,
        }
    }

    /// The paper's scaling profile: `base_ratio` × [1, 2/3, 1/3 × 8].
    pub fn paper_scaled(base_ratio: f64, mismatch_sigma_rel: f64) -> Self {
        let mut ratios = Vec::with_capacity(10);
        ratios.push(base_ratio);
        ratios.push(base_ratio * 2.0 / 3.0);
        ratios.extend(std::iter::repeat_n(base_ratio / 3.0, 8));
        Self::new(ratios, mismatch_sigma_rel)
    }

    /// An unscaled profile: every stage at `base_ratio` (the ablation
    /// baseline for the paper's scaling claim).
    pub fn unscaled(base_ratio: f64, stages: usize, mismatch_sigma_rel: f64) -> Self {
        Self::new(vec![base_ratio; stages], mismatch_sigma_rel)
    }

    /// Fabricates a mirror bank, drawing each output's ratio error.
    pub fn fabricate(&self, noise: &mut NoiseSource) -> MirrorBank {
        MirrorBank {
            ratios: self
                .ratios
                .iter()
                .map(|&r| r * noise.mismatch_factor(self.mismatch_sigma_rel))
                .collect(),
        }
    }
}

/// A fabricated mirror bank.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MirrorBank {
    /// Fabricated ratios (nominal × mismatch).
    ratios: Vec<f64>,
}

impl MirrorBank {
    /// An ideal bank with exact ratios.
    pub fn ideal(ratios: Vec<f64>) -> Self {
        assert!(!ratios.is_empty() && ratios.iter().all(|&r| r > 0.0));
        Self { ratios }
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// `true` if the bank has no outputs (never constructible, but part of
    /// the conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// The fabricated ratio of output `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn ratio(&self, i: usize) -> f64 {
        self.ratios[i]
    }

    /// All output currents for a given master current.
    pub fn output_currents_a(&self, master_a: f64) -> Vec<f64> {
        self.ratios.iter().map(|r| r * master_a).collect()
    }

    /// Sum of all output currents for a given master current.
    pub fn total_current_a(&self, master_a: f64) -> f64 {
        master_a * self.ratios.iter().sum::<f64>()
    }
}

/// Complete bias network: generator + mirror bank.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BiasNetwork {
    /// The master current generator.
    pub scheme: BiasScheme,
    /// The distribution mirror bank.
    pub mirrors: MirrorBank,
}

impl BiasNetwork {
    /// Creates a network.
    pub fn new(scheme: BiasScheme, mirrors: MirrorBank) -> Self {
        Self { scheme, mirrors }
    }

    /// Per-stage bias currents at a conversion rate.
    pub fn stage_currents_a(&self, f_cr_hz: f64) -> Vec<f64> {
        self.mirrors
            .output_currents_a(self.scheme.master_current_a(f_cr_hz))
    }

    /// Total distributed analog bias current at a conversion rate.
    pub fn total_current_a(&self, f_cr_hz: f64) -> f64 {
        self.mirrors
            .total_current_a(self.scheme.master_current_a(f_cr_hz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ScBiasGenerator;
    use adc_analog::capacitor::Capacitor;

    #[test]
    fn paper_profile_has_expected_shape() {
        let spec = MirrorBankSpec::paper_scaled(18.0, 0.0);
        assert_eq!(spec.ratios.len(), 10);
        assert_eq!(spec.ratios[0], 18.0);
        assert!((spec.ratios[1] - 12.0).abs() < 1e-12);
        for &r in &spec.ratios[2..] {
            assert!((r - 6.0).abs() < 1e-12);
        }
        // Σ = 18·(1 + 2/3 + 8/3) = 18·13/3 = 78
        let sum: f64 = spec.ratios.iter().sum();
        assert!((sum - 78.0).abs() < 1e-9);
    }

    #[test]
    fn unscaled_profile_is_flat() {
        let spec = MirrorBankSpec::unscaled(18.0, 10, 0.0);
        assert!(spec.ratios.iter().all(|&r| r == 18.0));
    }

    #[test]
    fn ideal_bank_mirrors_exactly() {
        let bank = MirrorBank::ideal(vec![2.0, 1.0, 0.5]);
        let outs = bank.output_currents_a(10e-6);
        assert_eq!(outs, vec![20e-6, 10e-6, 5e-6]);
        assert!((bank.total_current_a(10e-6) - 35e-6).abs() < 1e-18);
    }

    #[test]
    fn mismatch_statistics() {
        let spec = MirrorBankSpec::new(vec![1.0], 0.01);
        let mut n = NoiseSource::from_seed(8);
        let count = 20_000;
        let var: f64 = (0..count)
            .map(|_| (spec.fabricate(&mut n).ratio(0) - 1.0).powi(2))
            .sum::<f64>()
            / count as f64;
        assert!((var.sqrt() - 0.01).abs() < 5e-4);
    }

    #[test]
    fn network_combines_generator_and_mirrors() {
        let gen = ScBiasGenerator::new(Capacitor::ideal(1e-12), 0.9);
        let net = BiasNetwork::new(
            BiasScheme::Switched(gen),
            MirrorBank::ideal(MirrorBankSpec::paper_scaled(18.5, 0.0).ratios),
        );
        let stage = net.stage_currents_a(110e6);
        assert_eq!(stage.len(), 10);
        // Stage 1: 99 µA × 18.5 ≈ 1.83 mA
        assert!((stage[0] - 99e-6 * 18.5).abs() < 1e-9);
        // Scaling: stage 3 is 1/3 of stage 1.
        assert!((stage[2] / stage[0] - 1.0 / 3.0).abs() < 1e-12);
        // Total follows the 13/3 sum.
        let total = net.total_current_a(110e6);
        assert!((total - 99e-6 * 18.5 * 13.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn rejects_empty_bank() {
        let _ = MirrorBankSpec::new(vec![], 0.0);
    }
}
