//! Bias current generators: the paper's switched-capacitor generator and
//! the conventional fixed generator it replaces.
//!
//! The SC generator (paper §3, Fig. 3) is the core idea of the paper. An
//! OTA in unity gain forces the node `BIAS` to `V_BIAS`; the load on that
//! node is the equivalent resistance of a switched-capacitor branch,
//! `R_eq = 1/(C_B·f_CR)`, so the current through the OTA's output device is
//!
//! ```text
//! I_BIAS = C_B · f_CR · V_BIAS            (paper Eq. 1)
//! ```
//!
//! Two system-level consequences follow, both reproduced by this model:
//!
//! 1. **Power scales with conversion rate** — `I ∝ f_CR` (the paper's
//!    Fig. 4), and performance holds from 20 to 140 MS/s because the opamp
//!    settling-time budget `t_s/τ` becomes rate-independent.
//! 2. **The bias tracks the capacitor corner** — `GBW = gm/(2πC_L)` with
//!    `gm ∝ I ∝ C_B` and `C_L` made of the *same* metal capacitance, so the
//!    large absolute spread of a digital process cancels. A conventional
//!    fixed bias must instead be over-designed for the worst-case load.

use adc_analog::capacitor::Capacitor;
use adc_analog::noise::NoiseSource;

/// A source of the master bias current as a function of conversion rate.
///
/// Object-safe so converters can hold `Box<dyn BiasGenerator>` when mixing
/// generator types in ablation sweeps.
pub trait BiasGenerator: std::fmt::Debug {
    /// Master bias current at conversion rate `f_cr_hz`, amperes.
    fn master_current_a(&self, f_cr_hz: f64) -> f64;

    /// Short label for reports.
    fn label(&self) -> &'static str;
}

/// The paper's switched-capacitor bias generator (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScBiasGenerator {
    /// The on-chip bias capacitor `C_B` (fabricated instance: its value
    /// carries the die's absolute spread).
    pub c_b: Capacitor,
    /// The band-gap-derived reference `V_BIAS`, volts.
    pub v_bias_v: f64,
    /// Residual relative error of the unity-gain OTA loop (finite loop
    /// gain, charge injection); multiplies Eq. 1.
    pub loop_error_rel: f64,
    /// Leakage / startup floor: the generator never outputs less than
    /// this, amperes. Matters only at very low conversion rates.
    pub floor_current_a: f64,
}

impl ScBiasGenerator {
    /// Creates an ideal-loop generator from a fabricated `C_B` and
    /// `V_BIAS`.
    ///
    /// # Panics
    ///
    /// Panics if `v_bias_v` is not positive.
    pub fn new(c_b: Capacitor, v_bias_v: f64) -> Self {
        assert!(v_bias_v > 0.0, "V_BIAS must be positive");
        Self {
            c_b,
            v_bias_v,
            loop_error_rel: 0.0,
            floor_current_a: 0.0,
        }
    }

    /// Adds a realistic OTA loop error drawn from `noise` (≈0.3 % one
    /// sigma) and a 50 nA floor.
    pub fn with_realistic_loop(mut self, noise: &mut NoiseSource) -> Self {
        self.loop_error_rel = noise.gaussian(0.0, 3e-3);
        self.floor_current_a = 50e-9;
        self
    }
}

impl BiasGenerator for ScBiasGenerator {
    fn master_current_a(&self, f_cr_hz: f64) -> f64 {
        assert!(f_cr_hz >= 0.0, "conversion rate must be non-negative");
        let eq1 = self.c_b.value_f * f_cr_hz * self.v_bias_v * (1.0 + self.loop_error_rel);
        eq1.max(self.floor_current_a)
    }

    fn label(&self) -> &'static str {
        "SC bias (I = C_B·f_CR·V_BIAS)"
    }
}

/// A conventional fixed bias generator: a band-gap-referenced current that
/// does **not** track conversion rate or capacitor spread.
///
/// Because the load capacitance in a digital process spreads ±15 % and the
/// converter must still settle at its maximum specified rate, a fixed
/// design carries a `design_margin` (typically 1.2–1.4×) on top of the
/// current the typical die would need — power burned at every rate, which
/// is exactly the waste the paper's generator eliminates.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FixedBiasGenerator {
    /// The fixed master current, amperes.
    pub current_a: f64,
}

impl FixedBiasGenerator {
    /// Creates a fixed generator with the given master current.
    ///
    /// # Panics
    ///
    /// Panics if the current is not positive.
    pub fn new(current_a: f64) -> Self {
        assert!(current_a > 0.0, "bias current must be positive");
        Self { current_a }
    }

    /// Sizes a fixed generator for a target maximum conversion rate: the
    /// current a nominal SC generator would produce at `f_design_hz`,
    /// multiplied by `design_margin` to cover the worst-case capacitor
    /// corner.
    pub fn sized_for(
        c_b_nominal_f: f64,
        v_bias_v: f64,
        f_design_hz: f64,
        design_margin: f64,
    ) -> Self {
        assert!(design_margin >= 1.0, "margin below 1 makes no sense");
        Self::new(c_b_nominal_f * f_design_hz * v_bias_v * design_margin)
    }
}

impl BiasGenerator for FixedBiasGenerator {
    fn master_current_a(&self, _f_cr_hz: f64) -> f64 {
        self.current_a
    }

    fn label(&self) -> &'static str {
        "fixed bias (conventional)"
    }
}

/// Either generator, as a value type (for configs that must be `Clone +
/// Serialize` without trait objects).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BiasScheme {
    /// The paper's SC generator.
    Switched(ScBiasGenerator),
    /// The conventional fixed generator.
    Fixed(FixedBiasGenerator),
}

impl BiasScheme {
    /// Master current at a conversion rate (dispatches on the variant).
    pub fn master_current_a(&self, f_cr_hz: f64) -> f64 {
        match self {
            BiasScheme::Switched(g) => g.master_current_a(f_cr_hz),
            BiasScheme::Fixed(g) => g.master_current_a(f_cr_hz),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BiasScheme::Switched(g) => g.label(),
            BiasScheme::Fixed(g) => g.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(value: f64) -> Capacitor {
        Capacitor::ideal(value)
    }

    #[test]
    fn eq1_is_exact_for_ideal_parts() {
        let g = ScBiasGenerator::new(cap(1e-12), 0.9);
        // I = 1 pF · 110 MHz · 0.9 V = 99 µA
        let i = g.master_current_a(110e6);
        assert!((i - 99e-6).abs() < 1e-12, "i {i}");
    }

    #[test]
    fn current_is_linear_in_rate() {
        let g = ScBiasGenerator::new(cap(1e-12), 0.9);
        let i55 = g.master_current_a(55e6);
        let i110 = g.master_current_a(110e6);
        assert!((i110 / i55 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn current_tracks_capacitor_spread() {
        // A +15 % capacitor die produces +15 % current — the tracking that
        // makes GBW spread-free.
        let nominal = ScBiasGenerator::new(cap(1e-12), 0.9);
        let high = ScBiasGenerator::new(
            Capacitor {
                value_f: 1.15e-12,
                nominal_f: 1e-12,
            },
            0.9,
        );
        let r = high.master_current_a(110e6) / nominal.master_current_a(110e6);
        assert!((r - 1.15).abs() < 1e-12);
    }

    #[test]
    fn floor_applies_at_low_rate() {
        let g = ScBiasGenerator {
            floor_current_a: 1e-6,
            ..ScBiasGenerator::new(cap(1e-12), 0.9)
        };
        assert_eq!(g.master_current_a(0.0), 1e-6);
        // 1 pF·1 kHz·0.9 V = 0.9 nA < floor
        assert_eq!(g.master_current_a(1e3), 1e-6);
        // Well above the floor the Eq. 1 value wins.
        assert!(g.master_current_a(110e6) > 90e-6);
    }

    #[test]
    fn loop_error_scales_current() {
        let g = ScBiasGenerator {
            loop_error_rel: 0.01,
            ..ScBiasGenerator::new(cap(1e-12), 0.9)
        };
        let i = g.master_current_a(110e6);
        assert!((i / 99e-6 - 1.01).abs() < 1e-9);
    }

    #[test]
    fn fixed_generator_ignores_rate() {
        let g = FixedBiasGenerator::new(100e-6);
        assert_eq!(g.master_current_a(1e6), g.master_current_a(200e6));
    }

    #[test]
    fn sized_for_includes_margin() {
        let g = FixedBiasGenerator::sized_for(1e-12, 0.9, 140e6, 1.3);
        let unmargined = 1e-12 * 140e6 * 0.9;
        assert!((g.current_a / unmargined - 1.3).abs() < 1e-12);
    }

    #[test]
    fn scheme_dispatch_matches_inner() {
        let sc = ScBiasGenerator::new(cap(1e-12), 0.9);
        let fx = FixedBiasGenerator::new(50e-6);
        assert_eq!(
            BiasScheme::Switched(sc).master_current_a(70e6),
            sc.master_current_a(70e6)
        );
        assert_eq!(BiasScheme::Fixed(fx).master_current_a(70e6), 50e-6);
        assert_ne!(
            BiasScheme::Switched(sc).label(),
            BiasScheme::Fixed(fx).label()
        );
    }

    #[test]
    fn generators_are_object_safe() {
        let boxed: Vec<Box<dyn BiasGenerator>> = vec![
            Box::new(ScBiasGenerator::new(cap(1e-12), 0.9)),
            Box::new(FixedBiasGenerator::new(1e-6)),
        ];
        assert!(boxed[0].master_current_a(110e6) > boxed[1].master_current_a(110e6));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rate() {
        let _ = ScBiasGenerator::new(cap(1e-12), 0.9).master_current_a(-1.0);
    }
}
