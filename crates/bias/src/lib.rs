//! # adc-bias
//!
//! The conversion-rate-tracking bias subsystem of the DATE 2004 pipeline
//! ADC reproduction — the paper's central contribution.
//!
//! * [`generator`] — the switched-capacitor bias generator implementing
//!   paper Eq. 1, `I_BIAS = C_B·f_CR·V_BIAS`, plus the conventional fixed
//!   generator used as the ablation baseline;
//! * [`mirror`] — the current-mirror bank distributing the master current
//!   to the ten pipeline stages with the paper's 1 / 2⁄3 / 1⁄3 scaling
//!   profile;
//! * [`power`] — the power model reproducing Fig. 4 (97 mW at 110 MS/s,
//!   linear in conversion rate) and the fixed-overhead breakdown.
//!
//! ```
//! use adc_analog::capacitor::Capacitor;
//! use adc_bias::generator::{BiasGenerator, ScBiasGenerator};
//!
//! // Eq. 1: 1 pF · 110 MS/s · 0.9 V = 99 µA.
//! let gen = ScBiasGenerator::new(Capacitor::ideal(1e-12), 0.9);
//! let i = gen.master_current_a(110e6);
//! assert!((i - 99e-6).abs() < 1e-12);
//! ```

pub mod generator;
pub mod mirror;
pub mod power;

pub use generator::{BiasGenerator, BiasScheme, FixedBiasGenerator, ScBiasGenerator};
pub use mirror::{BiasNetwork, MirrorBank, MirrorBankSpec};
pub use power::{FixedPowerBreakdown, PowerModel, PowerReading};
