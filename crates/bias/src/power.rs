//! Power dissipation model (paper Fig. 4 and Table I).
//!
//! The measured power splits into two parts:
//!
//! * **rate-scaled analog power** — the pipeline opamps and ADSCs, whose
//!   bias currents come from the SC generator and therefore scale linearly
//!   with `f_CR` (Eq. 1). Each stage's total current is a fixed multiple
//!   (`opamp_current_factor`) of its mirrored bias current;
//! * **fixed overhead** — band-gap, reference buffer, common-mode
//!   generator, and clock distribution, which run at constant current.
//!
//! The paper reports 97 mW at 110 MS/s and 110 mW at 130 MS/s (both
//! excluding output drivers), i.e. a slope of 0.65 mW per MS/s and a fixed
//! intercept of ≈ 25.5 mW; [`FixedPowerBreakdown::paper_nominal`] and the
//! nominal bias network reproduce those anchors.

use crate::mirror::BiasNetwork;

/// Constant-power blocks (paper Fig. 7 floorplan).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FixedPowerBreakdown {
    /// Band-gap voltage generator, watts.
    pub bandgap_w: f64,
    /// Reference voltage buffer, watts.
    pub reference_buffer_w: f64,
    /// Common-mode voltage generator, watts.
    pub cm_generator_w: f64,
    /// Clock receiver/distribution, watts.
    pub clocking_w: f64,
    /// Dedicated front-end sample-and-hold, watts (0 for the paper's
    /// SHA-less architecture).
    pub front_end_sha_w: f64,
}

impl FixedPowerBreakdown {
    /// The breakdown calibrated to the paper's Fig. 4 intercept
    /// (≈ 25.5 mW).
    pub fn paper_nominal() -> Self {
        Self {
            bandgap_w: 1.5e-3,
            reference_buffer_w: 14.0e-3,
            cm_generator_w: 4.0e-3,
            clocking_w: 6.0e-3,
            front_end_sha_w: 0.0,
        }
    }

    /// Adds a dedicated front-end SHA's power.
    pub fn with_front_end_sha(mut self, sha_w: f64) -> Self {
        assert!(sha_w >= 0.0, "power must be non-negative");
        self.front_end_sha_w = sha_w;
        self
    }

    /// No fixed overhead (for isolating the scaled part in tests).
    pub fn zero() -> Self {
        Self {
            bandgap_w: 0.0,
            reference_buffer_w: 0.0,
            cm_generator_w: 0.0,
            clocking_w: 0.0,
            front_end_sha_w: 0.0,
        }
    }

    /// Total fixed power, watts.
    pub fn total_w(&self) -> f64 {
        self.bandgap_w
            + self.reference_buffer_w
            + self.cm_generator_w
            + self.clocking_w
            + self.front_end_sha_w
    }
}

/// The complete analog power model.
///
/// ```
/// use adc_analog::capacitor::Capacitor;
/// use adc_bias::generator::{BiasScheme, ScBiasGenerator};
/// use adc_bias::mirror::{BiasNetwork, MirrorBank, MirrorBankSpec};
/// use adc_bias::power::{FixedPowerBreakdown, PowerModel};
///
/// // The paper's calibrated power model: 97 mW at 110 MS/s.
/// let gen = ScBiasGenerator::new(Capacitor::ideal(1e-12), 0.9);
/// let net = BiasNetwork::new(
///     BiasScheme::Switched(gen),
///     MirrorBank::ideal(MirrorBankSpec::paper_scaled(18.5, 0.0).ratios),
/// );
/// let model = PowerModel::new(1.8, net, 5.0, FixedPowerBreakdown::paper_nominal());
/// assert!((model.total_power_w(110e6) - 97e-3).abs() < 3e-3);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerModel {
    /// Supply voltage, volts.
    pub vdd_v: f64,
    /// The bias network feeding the stages.
    pub bias: BiasNetwork,
    /// Ratio of a stage's *total* current draw to its mirrored bias
    /// current (both opamp stages, ADSC, local clocking).
    pub opamp_current_factor: f64,
    /// Constant-power blocks.
    pub fixed: FixedPowerBreakdown,
}

/// Power at one conversion rate, decomposed.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerReading {
    /// Conversion rate, hertz.
    pub f_cr_hz: f64,
    /// Rate-scaled pipeline power, watts.
    pub scaled_w: f64,
    /// Fixed overhead power, watts.
    pub fixed_w: f64,
    /// Total, watts.
    pub total_w: f64,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics if `vdd_v` or `opamp_current_factor` is not positive.
    pub fn new(
        vdd_v: f64,
        bias: BiasNetwork,
        opamp_current_factor: f64,
        fixed: FixedPowerBreakdown,
    ) -> Self {
        assert!(vdd_v > 0.0, "supply voltage must be positive");
        assert!(
            opamp_current_factor > 0.0,
            "current factor must be positive"
        );
        Self {
            vdd_v,
            bias,
            opamp_current_factor,
            fixed,
        }
    }

    /// Rate-scaled pipeline power at `f_cr_hz`, watts.
    pub fn scaled_power_w(&self, f_cr_hz: f64) -> f64 {
        self.vdd_v * self.opamp_current_factor * self.bias.total_current_a(f_cr_hz)
    }

    /// Total power at `f_cr_hz`, watts.
    pub fn total_power_w(&self, f_cr_hz: f64) -> f64 {
        self.scaled_power_w(f_cr_hz) + self.fixed.total_w()
    }

    /// Full decomposition at one rate.
    pub fn reading(&self, f_cr_hz: f64) -> PowerReading {
        let scaled_w = self.scaled_power_w(f_cr_hz);
        let fixed_w = self.fixed.total_w();
        PowerReading {
            f_cr_hz,
            scaled_w,
            fixed_w,
            total_w: scaled_w + fixed_w,
        }
    }

    /// Sweeps power across conversion rates (the Fig. 4 experiment).
    pub fn sweep(&self, rates_hz: &[f64]) -> Vec<PowerReading> {
        rates_hz.iter().map(|&f| self.reading(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{BiasScheme, FixedBiasGenerator, ScBiasGenerator};
    use crate::mirror::{MirrorBank, MirrorBankSpec};
    use adc_analog::capacitor::Capacitor;

    /// The calibrated nominal network: C_B = 1 pF, V_BIAS = 0.9 V,
    /// base mirror ratio 18.5, current factor 5.0.
    fn nominal_model() -> PowerModel {
        let gen = ScBiasGenerator::new(Capacitor::ideal(1e-12), 0.9);
        let net = BiasNetwork::new(
            BiasScheme::Switched(gen),
            MirrorBank::ideal(MirrorBankSpec::paper_scaled(18.5, 0.0).ratios),
        );
        PowerModel::new(1.8, net, 5.0, FixedPowerBreakdown::paper_nominal())
    }

    #[test]
    fn hits_paper_anchor_at_110ms() {
        // Paper: 97 mW at 110 MS/s.
        let p = nominal_model().total_power_w(110e6);
        assert!((p - 97e-3).abs() < 3e-3, "p {} mW", p * 1e3);
    }

    #[test]
    fn hits_paper_anchor_at_130ms() {
        // Paper: 110 mW at 130 MS/s.
        let p = nominal_model().total_power_w(130e6);
        assert!((p - 110e-3).abs() < 3e-3, "p {} mW", p * 1e3);
    }

    #[test]
    fn scaled_part_is_linear_through_origin() {
        let m = nominal_model();
        let s40 = m.scaled_power_w(40e6);
        let s80 = m.scaled_power_w(80e6);
        assert!((s80 / s40 - 2.0).abs() < 1e-9);
        assert_eq!(m.scaled_power_w(0.0), 0.0);
    }

    #[test]
    fn reading_decomposes_consistently() {
        let m = nominal_model();
        let r = m.reading(110e6);
        assert!((r.total_w - (r.scaled_w + r.fixed_w)).abs() < 1e-15);
        assert!((r.fixed_w - 25.5e-3).abs() < 1e-6);
    }

    #[test]
    fn fixed_bias_design_burns_full_power_at_low_rate() {
        // The ablation the paper's generator wins: a fixed-bias design at
        // 20 MS/s burns nearly the same scaled power as at 140 MS/s.
        let fixed = FixedBiasGenerator::sized_for(1e-12, 0.9, 140e6, 1.3);
        let net = BiasNetwork::new(
            BiasScheme::Fixed(fixed),
            MirrorBank::ideal(MirrorBankSpec::paper_scaled(18.5, 0.0).ratios),
        );
        let m = PowerModel::new(1.8, net, 5.0, FixedPowerBreakdown::paper_nominal());
        let p20 = m.total_power_w(20e6);
        let p140 = m.total_power_w(140e6);
        assert_eq!(p20, p140);
        // And it exceeds the SC design's 110 MS/s power even at 20 MS/s.
        assert!(p20 > nominal_model().total_power_w(110e6));
    }

    #[test]
    fn sweep_covers_requested_rates() {
        let m = nominal_model();
        let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 10e6).collect();
        let sweep = m.sweep(&rates);
        assert_eq!(sweep.len(), 13);
        // Monotone increasing in rate.
        for w in sweep.windows(2) {
            assert!(w[1].total_w > w[0].total_w);
        }
    }

    #[test]
    fn slope_matches_paper_between_anchors() {
        let m = nominal_model();
        let slope_w_per_hz = (m.total_power_w(130e6) - m.total_power_w(110e6)) / 20e6;
        // 0.65 mW per MS/s = 6.5e-10 W/Hz
        assert!(
            (slope_w_per_hz - 6.5e-10).abs() < 0.3e-10,
            "slope {slope_w_per_hz}"
        );
    }
}
